//! Fixture tests for the vortex-lint rule engines: each rule must fire
//! on a minimal positive snippet and stay silent in comment, string,
//! `#[cfg(test)]`, and suppressed contexts — plus end-to-end ratchet
//! behaviour against a synthetic on-disk workspace.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use vortex_devtools::lexer::mask_source;
use vortex_devtools::rules::{check_crash_points_global, registry_names, CrashPointSite};
use vortex_devtools::{baseline, enforce_ratchet, scan_str};

/// Shorthand: rule ids reported for a snippet scanned as the given
/// crate/path.
fn rules_for(text: &str, path: &str, krate: &str) -> Vec<&'static str> {
    scan_str(text, path, krate, false)
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

// ---------------------------------------------------------------- L001

#[test]
fn l001_fires_on_instant_now() {
    let src = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(
        rules_for(src, "crates/wos/src/x.rs", "vortex-wos"),
        ["L001"]
    );
}

#[test]
fn l001_fires_on_system_time_now() {
    let src = "fn f() { let _ = std::time::SystemTime::now(); }\n";
    assert_eq!(rules_for(src, "crates/core/src/x.rs", "vortex"), ["L001"]);
}

#[test]
fn l001_exempts_the_truetime_substrate() {
    let src = "fn f() { let _ = std::time::Instant::now(); }\n";
    assert!(rules_for(src, "crates/common/src/truetime.rs", "vortex-common").is_empty());
    assert!(rules_for(src, "crates/common/src/latency.rs", "vortex-common").is_empty());
}

#[test]
fn l001_silent_in_comment_and_string() {
    let src = "// Instant::now() is banned\nfn f() { let s = \"Instant::now()\"; let _ = s; }\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

#[test]
fn l001_silent_inside_cfg_test() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

#[test]
fn l001_silent_in_test_file() {
    let src = "fn t() { let _ = std::time::Instant::now(); }\n";
    assert!(scan_str(src, "tests/chaos.rs", "vortex", true).is_empty());
}

// ---------------------------------------------------------------- L002

#[test]
fn l002_fires_on_unwrap_expect_panic_in_storage_crates() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
               fn g(x: Option<u8>) -> u8 { x.expect(\"set\") }\n\
               fn h() { panic!(\"boom\"); }\n";
    assert_eq!(
        rules_for(src, "crates/colossus/src/x.rs", "vortex-colossus"),
        ["L002", "L002", "L002"]
    );
}

#[test]
fn l002_does_not_apply_outside_storage_path_crates() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(rules_for(src, "crates/bench/src/x.rs", "vortex-bench").is_empty());
    assert!(rules_for(src, "crates/query/src/x.rs", "vortex-query").is_empty());
}

#[test]
fn l002_does_not_match_unwrap_or_family() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
               fn g(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n\
               fn h(r: Result<u8, u8>) -> u8 { r.unwrap_or_else(|_| 0) }\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

#[test]
fn l002_silent_inside_cfg_test_module() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(rules_for(src, "crates/sms/src/x.rs", "vortex-sms").is_empty());
}

// -------------------------------------------------------- suppressions

#[test]
fn trailing_suppression_silences_its_line() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(L002, provably Some here)\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

#[test]
fn standalone_suppression_silences_next_line() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(L002, checked by caller)\n    x.unwrap()\n}\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

#[test]
fn suppression_is_rule_specific() {
    // An L003 allow must not silence an L002 violation.
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(L003, wrong rule)\n";
    assert_eq!(
        rules_for(src, "crates/wos/src/x.rs", "vortex-wos"),
        ["L002"]
    );
}

#[test]
fn suppression_without_reason_reports_l000() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(L002)\n";
    let got = rules_for(src, "crates/wos/src/x.rs", "vortex-wos");
    assert!(
        got.contains(&"L000"),
        "missing reason must be flagged: {got:?}"
    );
    assert!(
        got.contains(&"L002"),
        "malformed suppression must not suppress"
    );
}

#[test]
fn suppression_with_unknown_rule_reports_l000() {
    let src = "fn f() {} // lint:allow(L999, no such rule)\n";
    assert_eq!(
        rules_for(src, "crates/wos/src/x.rs", "vortex-wos"),
        ["L000"]
    );
}

#[test]
fn doc_comments_mentioning_the_syntax_are_not_suppressions() {
    let src = "/// Use `// lint:allow(L002, reason)` to suppress.\nfn f() {}\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

// ---------------------------------------------------------------- L003

#[test]
fn l003_fires_on_thread_sleep_anywhere_in_prod_code() {
    let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(5)); }\n";
    assert_eq!(
        rules_for(src, "crates/core/src/daemon.rs", "vortex"),
        ["L003"]
    );
    assert_eq!(
        rules_for(src, "crates/query/src/x.rs", "vortex-query"),
        ["L003"]
    );
}

#[test]
fn l003_exempts_latency_substrate_and_tests() {
    let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(5)); }\n";
    assert!(rules_for(src, "crates/common/src/latency.rs", "vortex-common").is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::sleep(std::time::Duration::ZERO); }\n}\n";
    assert!(rules_for(in_test, "crates/core/src/x.rs", "vortex").is_empty());
}

// ---------------------------------------------------------------- L004

#[test]
fn l004_fires_on_non_vortex_result_in_public_storage_api() {
    let src = "pub fn open(p: &str) -> Result<u8, String> { let _ = p; Ok(0) }\n";
    assert_eq!(
        rules_for(src, "crates/wos/src/x.rs", "vortex-wos"),
        ["L004"]
    );
    let io = "pub fn read_all(p: &str) -> std::io::Result<Vec<u8>> { std::fs::read(p) }\n";
    assert_eq!(rules_for(io, "crates/ros/src/x.rs", "vortex-ros"), ["L004"]);
}

#[test]
fn l004_accepts_vortex_result_and_vortex_error() {
    let src = "pub fn open(p: &str) -> VortexResult<u8> { let _ = p; Ok(0) }\n\
               pub fn raw(p: &str) -> Result<u8, VortexError> { let _ = p; Ok(0) }\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

#[test]
fn l004_ignores_private_fns_and_non_storage_crates() {
    let private = "fn helper() -> Result<u8, String> { Ok(0) }\n";
    assert!(rules_for(private, "crates/wos/src/x.rs", "vortex-wos").is_empty());
    let other = "pub fn open() -> Result<u8, String> { Ok(0) }\n";
    assert!(rules_for(other, "crates/optimizer/src/x.rs", "vortex-optimizer").is_empty());
}

#[test]
fn l004_ignores_fns_without_result_or_with_fmt_result() {
    let src = "pub fn name(&self) -> &str { \"x\" }\n\
               pub fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

// ---------------------------------------------------------------- L005

#[test]
fn l005_fires_when_guard_spans_an_append() {
    let src = "fn f(&self) {\n    let mut files = self.files.lock();\n    files.push(1);\n    self.colossus.append(\"p\", &[], ts);\n}\n";
    assert_eq!(
        rules_for(src, "crates/wos/src/x.rs", "vortex-wos"),
        ["L005"]
    );
}

#[test]
fn l005_silent_when_guard_dropped_first() {
    let src = "fn f(&self) {\n    let mut files = self.files.lock();\n    files.push(1);\n    drop(files);\n    self.colossus.append(\"p\", &[], ts);\n}\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

#[test]
fn l005_silent_when_scope_closes_before_append() {
    let src = "fn f(&self) {\n    {\n        let mut files = self.files.lock();\n        files.push(1);\n    }\n    self.colossus.append(\"p\", &[], ts);\n}\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

#[test]
fn l005_ignores_temporary_guards() {
    // A lock in a larger expression is released at the semicolon.
    let src = "fn f(&self) {\n    let n: Vec<u64> = self.tables.lock().iter().copied().collect();\n    self.colossus.append(\"p\", &[], ts);\n    let _ = n;\n}\n";
    assert!(rules_for(src, "crates/wos/src/x.rs", "vortex-wos").is_empty());
}

// ---------------------------------------------------------------- L006

#[test]
fn l006_fires_on_direct_service_types_in_consumer_crates() {
    let src = "pub fn f(sms: &Arc<SmsTask>) { let _ = sms; }\n\
               pub fn g(srv: &StreamServer) { let _ = srv; }\n";
    assert_eq!(
        rules_for(src, "crates/client/src/x.rs", "vortex-client"),
        ["L006", "L006"]
    );
    assert_eq!(
        rules_for(src, "crates/core/src/daemon.rs", "vortex"),
        ["L006", "L006"]
    );
}

#[test]
fn l006_matches_identifier_boundaries_only() {
    // `SmsTaskId` and `StreamServerApi` are different, allowed
    // identifiers; so is a prefixed name.
    let src = "pub fn f(id: SmsTaskId, api: &dyn StreamServerApi) { let _ = (id, api); }\n\
               pub fn g(x: MockStreamServer) { let _ = x; }\n";
    assert!(rules_for(src, "crates/client/src/x.rs", "vortex-client").is_empty());
}

#[test]
fn l006_exempts_region_wiring_service_crates_and_tests() {
    let src = "pub fn f(t: &SmsTask, s: &StreamServer) { let _ = (t, s); }\n";
    // The wiring file constructs and wraps the services.
    assert!(rules_for(src, "crates/core/src/region.rs", "vortex").is_empty());
    // The service crates themselves are not consumers.
    assert!(rules_for(src, "crates/sms/src/api.rs", "vortex-sms").is_empty());
    assert!(rules_for(src, "crates/server/src/server.rs", "vortex-server").is_empty());
    // Test context is free to grab the concrete types.
    assert!(scan_str(src, "tests/rpc_faults.rs", "vortex", true).is_empty());
    let in_mod = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use vortex_sms::sms::SmsTask;\n}\n";
    assert!(rules_for(in_mod, "crates/verify/src/lib.rs", "vortex-verify").is_empty());
}

// ---------------------------------------------------------------- L007

#[test]
fn l007_fires_on_malformed_names() {
    // Two segments, an uppercase segment, and four segments all break
    // the `component.operation.moment` convention.
    let src = "fn f() -> vortex_common::error::VortexResult<()> {\n\
               vortex_common::crash_point!(\"server.append\");\n\
               vortex_common::crash_point!(\"Server.append.pre_ack\");\n\
               vortex_common::crash_point!(\"a.b.c.d\");\n\
               Ok(()) }\n";
    assert_eq!(
        rules_for(src, "crates/server/src/x.rs", "vortex-server"),
        ["L007", "L007", "L007"]
    );
}

#[test]
fn l007_fires_on_within_file_duplicate() {
    let src = "fn f() -> vortex_common::error::VortexResult<()> {\n\
               vortex_common::crash_point!(\"server.append.pre_ack\");\n\
               vortex_common::crash_point!(\"server.append.pre_ack\");\n\
               Ok(()) }\n";
    assert_eq!(
        rules_for(src, "crates/server/src/x.rs", "vortex-server"),
        ["L007"]
    );
}

#[test]
fn l007_silent_on_valid_unique_names_and_test_context() {
    let src = "fn f() -> vortex_common::error::VortexResult<()> {\n\
               vortex_common::crash_point!(\"server.append.pre_ack\");\n\
               vortex_common::crash_point!(\"server.gc.mid\");\n\
               Ok(()) }\n";
    assert!(rules_for(src, "crates/server/src/x.rs", "vortex-server").is_empty());
    // Bad names in test files and `#[cfg(test)]` modules are exempt —
    // tests may exercise the macro with throwaway names.
    let bad = "vortex_common::crash_point!(\"whatever\");\n";
    assert!(scan_str(bad, "tests/chaos.rs", "vortex", true).is_empty());
    let in_mod =
        format!("fn prod() {{}}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ {bad} }}\n}}\n");
    assert!(rules_for(&in_mod, "crates/server/src/x.rs", "vortex-server").is_empty());
}

/// Shorthand for a [`CrashPointSite`] in the global-pass tests.
fn site(name: &str, path: &str, line: usize) -> CrashPointSite {
    CrashPointSite {
        name: name.to_string(),
        crate_name: "vortex-server".to_string(),
        path: path.to_string(),
        line,
    }
}

#[test]
fn l007_global_cross_file_duplicate_fires() {
    let sites = [
        site("server.gc.mid", "crates/server/src/a.rs", 10),
        site("server.gc.mid", "crates/server/src/b.rs", 20),
    ];
    let out = check_crash_points_global(&sites, None);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, "L007");
    assert_eq!(out[0].path, "crates/server/src/b.rs");
    assert!(out[0].message.contains("crates/server/src/a.rs:10"));
    // Same-file duplicates are the per-file rule's job: silent here.
    let same = [
        site("server.gc.mid", "crates/server/src/a.rs", 10),
        site("server.gc.mid", "crates/server/src/a.rs", 20),
    ];
    assert!(check_crash_points_global(&same, None).is_empty());
}

#[test]
fn l007_global_registration_checked_only_with_registry() {
    let sites = [site("server.gc.mid", "crates/server/src/a.rs", 10)];
    let registry = ["server.append.pre_ack".to_string()];
    let out = check_crash_points_global(&sites, Some(&registry));
    assert_eq!(out.len(), 1);
    assert!(out[0].message.contains("REGISTRY"));
    // Registered name: silent.
    let ok_registry = ["server.gc.mid".to_string()];
    assert!(check_crash_points_global(&sites, Some(&ok_registry)).is_empty());
    // No registry in the scan (partial tree): the check is skipped.
    assert!(check_crash_points_global(&sites, None).is_empty());
}

#[test]
fn l007_registry_names_parse_the_const_array() {
    let src = "/// Catalogue.\n\
               pub const REGISTRY: &[&str] = &[\n\
               \"server.append.pre_ack\",\n\
               \"sms.open_streamlet.post_txn\",\n\
               ];\n\
               fn other() { let _ = \"not.a.registration\"; }\n";
    let masked = mask_source(src);
    assert_eq!(
        registry_names(&masked).unwrap(),
        ["server.append.pre_ack", "sms.open_streamlet.post_txn"]
    );
    assert_eq!(registry_names(&mask_source("fn f() {}")), None);
}

// ---------------------------------------------------------------- L008

#[test]
fn l008_fires_on_module_scope_atomic_static() {
    let src = "use std::sync::atomic::AtomicU64;\n\
               static APPENDS: AtomicU64 = AtomicU64::new(0);\n\
               pub static PUB_HITS: AtomicUsize = AtomicUsize::new(0);\n";
    assert_eq!(
        rules_for(src, "crates/server/src/x.rs", "vortex-server"),
        ["L008", "L008"]
    );
}

#[test]
fn l008_fires_on_function_local_atomic_static() {
    let src = "fn f() {\n    static CALLS: AtomicU32 = AtomicU32::new(0);\n}\n";
    assert_eq!(
        rules_for(src, "crates/query/src/x.rs", "vortex-query"),
        ["L008"]
    );
}

#[test]
fn l008_silent_on_lifetimes_fields_and_non_atomic_statics() {
    // `&'static` lifetimes, struct-field atomics (per-instance state),
    // and non-atomic statics (lookup tables) are all fine.
    let src = "pub struct C { hits: std::sync::atomic::AtomicU64 }\n\
               static TABLES: [u32; 4] = [0, 1, 2, 3];\n\
               fn f(s: &'static str) -> &'static str { s }\n";
    assert!(rules_for(src, "crates/client/src/x.rs", "vortex-client").is_empty());
}

#[test]
fn l008_exempts_the_obs_layer() {
    let src = "static TOTAL_FIRES: AtomicU64 = AtomicU64::new(0);\n";
    assert!(rules_for(src, "crates/common/src/obs.rs", "vortex-common").is_empty());
    assert!(rules_for(src, "crates/common/src/crashpoints.rs", "vortex-common").is_empty());
}

#[test]
fn l008_silent_in_test_context_and_suppressible() {
    let src = "static N: AtomicU64 = AtomicU64::new(0);\n";
    assert!(scan_str(src, "tests/chaos.rs", "vortex", true).is_empty());
    let in_mod = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    \
                  static N: AtomicU64 = AtomicU64::new(0);\n}\n";
    assert!(rules_for(in_mod, "crates/server/src/x.rs", "vortex-server").is_empty());
    let suppressed = "// lint:allow(L008, fixture-local scratch counter)\n\
                      static N: AtomicU64 = AtomicU64::new(0);\n";
    assert!(rules_for(suppressed, "crates/server/src/x.rs", "vortex-server").is_empty());
}

// ---------------------------------------------------------------- L009

#[test]
fn l009_fires_on_zero_retry_after_hint() {
    let src = "fn f() -> VortexError {\n    VortexError::ResourceExhausted {\n        \
               scope: \"tenant\".into(),\n        retry_after_us: 0,\n    }\n}\n";
    assert_eq!(
        rules_for(src, "crates/server/src/x.rs", "vortex-server"),
        ["L009"]
    );
    let spaced =
        "fn f() { let e = VortexError::ResourceExhausted { scope: s, retry_after_us : 0 }; }\n";
    assert_eq!(
        rules_for(spaced, "crates/sms/src/x.rs", "vortex-sms"),
        ["L009"]
    );
}

#[test]
fn l009_silent_on_nonzero_hints_bindings_and_patterns() {
    let src = "fn f(w: u64) {\n    \
               let _a = VortexError::ResourceExhausted { scope: s(), retry_after_us: w.max(1) };\n    \
               let _b = VortexError::ResourceExhausted { scope: s(), retry_after_us: 5_000 };\n    \
               if let VortexError::ResourceExhausted { retry_after_us, .. } = _b { let _ = retry_after_us; }\n}\n";
    assert!(rules_for(src, "crates/client/src/x.rs", "vortex-client").is_empty());
}

#[test]
fn l009_fires_on_throttling_sleep_outside_admission() {
    let src = "fn f(throttle_us: u64) {\n    \
               std::thread::sleep(std::time::Duration::from_micros(throttle_us));\n}\n";
    assert_eq!(
        rules_for(src, "crates/client/src/x.rs", "vortex-client"),
        // L003 (sleep outside the latency substrate) stacks with the
        // throttle-specific charge.
        ["L003", "L009"]
    );
    // The latency substrate is L003-exempt, but a throttling sleep
    // there still violates throttle-discipline.
    let in_substrate =
        "fn f(backoff_us: u64) { thread::sleep(Duration::from_micros(backoff_us)); }\n";
    assert_eq!(
        rules_for(
            in_substrate,
            "crates/common/src/latency.rs",
            "vortex-common"
        ),
        ["L009"]
    );
}

#[test]
fn l009_exempts_admission_and_non_throttle_sleeps() {
    // Inside the admission crate the throttle-specific charge is
    // waived (L003's general sleep ban still applies — admission runs
    // on virtual time).
    let src = "fn f(throttle_us: u64) { thread::sleep(Duration::from_micros(throttle_us)); }\n";
    assert_eq!(
        rules_for(src, "crates/admission/src/lib.rs", "vortex-admission"),
        ["L003"]
    );
    // A sleep with no throttling context is L003's business alone.
    let plain = "fn f() { std::thread::sleep(POLL_INTERVAL); }\n";
    assert_eq!(rules_for(plain, "crates/core/src/x.rs", "vortex"), ["L003"]);
}

#[test]
fn l009_silent_in_test_context_and_suppressible() {
    let src =
        "fn f() { let _ = VortexError::ResourceExhausted { scope: s(), retry_after_us: 0 }; }\n";
    assert!(scan_str(src, "tests/chaos.rs", "vortex", true).is_empty());
    let suppressed = "// lint:allow(L009, fixture exercises the zero-hint path)\n\
                      fn f() { let _ = VortexError::ResourceExhausted { scope: s(), retry_after_us: 0 }; }\n";
    assert!(rules_for(suppressed, "crates/server/src/x.rs", "vortex-server").is_empty());
}

// ------------------------------------------------------------- ratchet

/// Builds a miniature workspace on disk so `enforce_ratchet` can be
/// exercised end to end.
struct MiniRepo {
    root: PathBuf,
}

impl MiniRepo {
    fn new(tag: &str, lib_rs: &str, baseline: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("vortex-lint-fixture-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/wos/src")).unwrap();
        fs::create_dir_all(root.join("crates/devtools")).unwrap();
        fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        fs::write(
            root.join("crates/wos/Cargo.toml"),
            "[package]\nname = \"vortex-wos\"\n",
        )
        .unwrap();
        fs::write(root.join("crates/wos/src/lib.rs"), lib_rs).unwrap();
        fs::write(root.join("crates/devtools/baseline.toml"), baseline).unwrap();
        MiniRepo { root }
    }
}

impl Drop for MiniRepo {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const ONE_UNWRAP: &str = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";

#[test]
fn ratchet_fails_when_count_exceeds_baseline() {
    let repo = MiniRepo::new("exceed", ONE_UNWRAP, "");
    let err = enforce_ratchet(&repo.root).unwrap_err();
    assert!(err.contains("L002"), "diagnostic names the rule: {err}");
    assert!(
        err.contains("crates/wos/src/lib.rs:1"),
        "diagnostic carries file:line: {err}"
    );
}

#[test]
fn ratchet_passes_at_baseline() {
    let repo = MiniRepo::new("at", ONE_UNWRAP, "[L002]\nvortex-wos = 1\n");
    let report = enforce_ratchet(&repo.root).unwrap();
    assert_eq!(report.violations.len(), 1);
}

#[test]
fn ratchet_passes_below_baseline_and_update_locks_it_in() {
    // Baseline says 3, tree has 1: passes, and the improvement is
    // visible to `compare` for --update-baseline to lock in.
    let repo = MiniRepo::new("below", ONE_UNWRAP, "[L002]\nvortex-wos = 3\n");
    let report = enforce_ratchet(&repo.root).unwrap();
    let base = vortex_devtools::load_baseline(&repo.root).unwrap();
    let (regressions, improvements) = baseline::compare(&report.counts(), &base);
    assert!(regressions.is_empty());
    assert_eq!(improvements.len(), 1);
    assert_eq!(improvements[0].actual, 1);

    let rewritten = baseline::serialize(&report.counts());
    let reparsed = baseline::parse(&rewritten).unwrap();
    let mut expect = BTreeMap::new();
    expect.insert(("L002".to_string(), "vortex-wos".to_string()), 1);
    assert_eq!(reparsed, expect);
}

#[test]
fn ratchet_rejects_a_malformed_baseline() {
    let repo = MiniRepo::new("badbase", ONE_UNWRAP, "[L002]\nvortex-wos = lots\n");
    assert!(enforce_ratchet(&repo.root).is_err());
}
