//! Fixture tests for the hot-path discipline analyzer (L010/L011/L012):
//! call-graph construction edge cases, conservative over-approximation
//! guarantees, and lock-order cycle detection on seeded deadlocks.
//!
//! The analyzer's contract is *conservative over-approximation*: a call
//! that cannot be resolved precisely is resolved to every in-workspace
//! candidate (never silently dropped), and calls with zero candidates
//! are counted in `analyzer.unresolved` instead of being hidden.

use std::time::{Duration, Instant};

use vortex_devtools::baseline::Counts;
use vortex_devtools::callgraph::{analyze_texts, AnalyzerStats};
use vortex_devtools::rules::Violation;
use vortex_devtools::{scan_workspace, workspace_root_from_manifest, ScanReport};

/// One non-test production file in crate `vortex-wos`.
fn one(src: &str) -> (Vec<Violation>, AnalyzerStats) {
    analyze_texts(&[("crates/wos/src/x.rs", "vortex-wos", false, src)])
}

fn rules_of(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}

// ------------------------------------------------- L010 reachability

#[test]
fn l010_direct_alloc_in_root() {
    let src = "\
// lint:hotpath(append)
fn root() { let _v = Vec::new(); }
";
    let (vs, stats) = one(src);
    assert_eq!(rules_of(&vs), ["L010"]);
    assert!(vs[0].message.contains("Vec::new("), "{}", vs[0].message);
    assert!(vs[0].message.contains("`append`"), "{}", vs[0].message);
    assert_eq!(stats.roots, 1);
}

#[test]
fn l010_reaches_through_helper_with_chain() {
    let src = "\
// lint:hotpath(append)
fn root() { helper(); }
fn helper() { deep(); }
fn deep() { let _s = String::new(); }
";
    let (vs, _) = one(src);
    assert_eq!(rules_of(&vs), ["L010"]);
    assert!(
        vs[0].message.contains("root → helper → deep"),
        "chain missing: {}",
        vs[0].message
    );
}

#[test]
fn l010_cross_crate_call_resolves() {
    let caller = "\
// lint:hotpath(append)
pub fn root() { vortex_wos::encode(); }
";
    let callee = "pub fn encode() { let _b = vec![0u8; 16]; }\n";
    let (vs, _) = analyze_texts(&[
        ("crates/server/src/a.rs", "vortex-server", false, caller),
        ("crates/wos/src/b.rs", "vortex-wos", false, callee),
    ]);
    assert_eq!(rules_of(&vs), ["L010"]);
    assert_eq!(vs[0].crate_name, "vortex-wos");
    assert!(vs[0].message.contains("root → encode"), "{}", vs[0].message);
}

#[test]
fn unreachable_alloc_is_silent() {
    let src = "\
// lint:hotpath(append)
fn root() {}
fn cold() { let _v = Vec::new(); }
";
    let (vs, stats) = one(src);
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(stats.reachable, 1);
    assert_eq!(stats.functions, 2);
}

// ------------------------------- resolution: methods vs functions

#[test]
fn method_call_over_approximates_to_all_same_name_fns() {
    // A method call `x.encode()` cannot be typed by a lexer-level
    // analyzer: it must resolve to EVERY fn named `encode`, so the
    // alloc inside either candidate is flagged (never dropped).
    let src = "\
// lint:hotpath(append)
fn root(x: Foo) { x.encode(); }
struct Foo;
impl Foo { fn encode(&self) {} }
struct Bar;
impl Bar { fn encode(&self) { let _v = Vec::new(); } }
";
    let (vs, _) = one(src);
    assert_eq!(rules_of(&vs), ["L010"]);
    assert!(
        vs[0].message.contains("Bar::encode"),
        "conservative edge dropped: {}",
        vs[0].message
    );
}

#[test]
fn qualified_call_prefers_owner_match() {
    // `Foo::encode()` resolves to the Foo impl specifically — the Bar
    // impl's alloc must NOT fire.
    let src = "\
// lint:hotpath(append)
fn root() { Foo::encode(); }
struct Foo;
impl Foo { fn encode() {} }
struct Bar;
impl Bar { fn encode() { let _v = Vec::new(); } }
";
    let (vs, _) = one(src);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn trait_method_reaches_every_impl() {
    let src = "\
// lint:hotpath(scan)
fn root(c: &dyn Codec) { c.decode(); }
trait Codec { fn decode(&self); }
struct A;
impl Codec for A { fn decode(&self) {} }
struct B;
impl Codec for B { fn decode(&self) { let _s = format!(\"x\"); } }
";
    let (vs, _) = one(src);
    assert_eq!(rules_of(&vs), ["L010"]);
    assert!(vs[0].message.contains("B::decode"), "{}", vs[0].message);
}

#[test]
fn closure_body_is_scanned_as_part_of_enclosing_fn() {
    // Closures are not separate graph nodes; their bodies belong to the
    // enclosing fn, so an alloc inside a closure passed to a helper
    // still fires at the enclosing (reachable) fn.
    let src = "\
// lint:hotpath(append)
fn root() { run(|| { let _v = Vec::new(); }); }
fn run(f: impl Fn()) { f(); }
";
    let (vs, _) = one(src);
    assert_eq!(rules_of(&vs), ["L010"]);
}

#[test]
fn recursion_terminates_and_still_flags() {
    let src = "\
// lint:hotpath(append)
fn root(n: u32) { if n > 0 { root(n - 1); } leaf(); }
fn leaf() { let _v = Vec::new(); }
";
    let (vs, _) = one(src);
    assert_eq!(rules_of(&vs), ["L010"]);
}

#[test]
fn unresolved_external_calls_are_counted_not_hidden() {
    let src = "\
// lint:hotpath(append)
fn root() { std::process::abort(); }
";
    let (vs, stats) = one(src);
    assert!(vs.is_empty(), "{vs:?}");
    assert!(
        stats.unresolved > 0,
        "external call must count as unresolved"
    );
}

#[test]
fn test_fns_are_excluded_from_the_graph() {
    let src = "\
// lint:hotpath(append)
fn root() { helper(); }
fn helper() {}
#[cfg(test)]
mod tests {
    fn helper() { let _v = Vec::new(); }
}
";
    let (vs, stats) = one(src);
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(stats.functions, 2);
}

// ----------------------------------------------------------- L011

#[test]
fn l011_lock_through_helper() {
    let src = "\
// lint:hotpath(scan)
fn root(s: &S) { s.snapshot(); }
struct S { m: std::sync::Mutex<u32> }
impl S { fn snapshot(&self) -> u32 { *self.m.lock().unwrap() } }
";
    let (vs, _) = one(src);
    assert!(rules_of(&vs).contains(&"L011"), "{vs:?}");
    let l011 = vs.iter().find(|v| v.rule == "L011").unwrap();
    assert!(
        l011.message.contains("root → S::snapshot"),
        "{}",
        l011.message
    );
}

#[test]
fn l011_suppression_is_honored() {
    let src = "\
// lint:hotpath(scan)
fn root(s: &S) { s.snapshot(); }
struct S { m: std::sync::Mutex<u32> }
impl S {
    fn snapshot(&self) -> u32 {
        // lint:allow(L011, coarse per-streamlet lock is the design)
        *self.m.lock().unwrap()
    }
}
";
    let (vs, _) = one(src);
    assert!(!rules_of(&vs).contains(&"L011"), "{vs:?}");
}

// ---------------------------------------------- hotpath annotations

#[test]
fn dangling_hotpath_annotation_is_l000() {
    let src = "// lint:hotpath(append)\n\nstruct NotAFn;\n";
    let (vs, stats) = one(src);
    assert_eq!(rules_of(&vs), ["L000"]);
    assert_eq!(stats.roots, 0);
}

#[test]
fn malformed_hotpath_name_is_l000() {
    let src = "// lint:hotpath(Fast Path!)\nfn root() {}\n";
    let (vs, _) = one(src);
    assert_eq!(rules_of(&vs), ["L000"]);
}

// ----------------------------------------------------------- L012

#[test]
fn l012_flags_seeded_ab_ba_deadlock() {
    let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
fn fwd(s: &S) {
    let ga = s.a.lock().unwrap();
    let _gb = s.b.lock().unwrap();
    drop(ga);
}
fn rev(s: &S) {
    let gb = s.b.lock().unwrap();
    let _ga = s.a.lock().unwrap();
    drop(gb);
}
";
    let (vs, stats) = one(src);
    assert_eq!(rules_of(&vs), ["L012"], "{vs:?}");
    assert!(
        vs[0].message.contains("lock-order cycle"),
        "{}",
        vs[0].message
    );
    assert!(stats.lock_edges >= 2, "stats: {stats:?}");
}

#[test]
fn l012_silent_on_consistent_global_order() {
    let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
fn one(s: &S) {
    let ga = s.a.lock().unwrap();
    let _gb = s.b.lock().unwrap();
    drop(ga);
}
fn two(s: &S) {
    let ga = s.a.lock().unwrap();
    let _gb = s.b.lock().unwrap();
    drop(ga);
}
";
    let (vs, _) = one(src);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l012_drop_ends_the_guard_scope() {
    // `drop(ga)` before the second acquisition: no nesting, no edge.
    let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
fn fwd(s: &S) {
    let ga = s.a.lock().unwrap();
    drop(ga);
    let _gb = s.b.lock().unwrap();
}
fn rev(s: &S) {
    let gb = s.b.lock().unwrap();
    drop(gb);
    let _ga = s.a.lock().unwrap();
}
";
    let (vs, stats) = one(src);
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(stats.lock_edges, 0, "stats: {stats:?}");
}

#[test]
fn l012_cross_crate_cycle_is_workspace_global() {
    let fwd = "\
pub struct S { pub a: std::sync::Mutex<u32>, pub b: std::sync::Mutex<u32> }
pub fn fwd(s: &S) {
    let _ga = s.a.lock().unwrap();
    let _gb = s.b.lock().unwrap();
}
";
    let rev = "\
pub fn rev(s: &vortex_wos::S) {
    let _gb = s.b.lock().unwrap();
    let _ga = s.a.lock().unwrap();
}
";
    let (vs, _) = analyze_texts(&[
        ("crates/wos/src/x.rs", "vortex-wos", false, fwd),
        ("crates/sms/src/y.rs", "vortex-sms", false, rev),
    ]);
    assert_eq!(rules_of(&vs), ["L012"], "{vs:?}");
}

// ------------------------------------------------- analyzer stats

#[test]
fn full_workspace_analysis_stays_in_wall_clock_budget() {
    // The analyzer runs on every `cargo test` and in CI: it must stay
    // interactive. Budget: one full-workspace scan (lex + parse + graph
    // + reachability + lock-order) in well under 10 seconds.
    let root = workspace_root_from_manifest();
    let t0 = Instant::now();
    let report = scan_workspace(&root).expect("workspace scan");
    let elapsed = t0.elapsed();
    assert!(report.analyzer.functions > 100, "{:?}", report.analyzer);
    assert!(
        report.analyzer.roots >= 2,
        "append + scan roots must be annotated: {:?}",
        report.analyzer
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "full-workspace analysis took {elapsed:?} (budget 10s)"
    );
}

#[test]
fn json_report_is_well_formed() {
    let (violations, analyzer) = one("\
// lint:hotpath(append)
fn root() { let _v = Vec::new(); }
");
    let report = ScanReport {
        violations,
        files_scanned: 1,
        analyzer,
    };
    let mut base = Counts::new();
    base.insert(("L010".into(), "vortex-wos".into()), 0);
    let json = report.to_json(&base);
    for needle in [
        "\"schema\": 1",
        "\"files_scanned\": 1",
        "\"analyzer\": {\"functions\": 1",
        "\"rule\": \"L010\", \"crate\": \"vortex-wos\", \"count\": 1, \"baseline\": 0",
        "\"regressions\": [",
        "\"violations\": [",
        "call chain",
    ] {
        assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
    }
    // Escaping: a quote in a message must not break the document.
    assert!(!json.contains("`Vec::new(…\" "), "unescaped quote:\n{json}");
}

#[test]
fn stats_account_for_every_edge() {
    let src = "\
// lint:hotpath(append)
fn root() { a(); b(); }
fn a() { b(); }
fn b() {}
";
    let (_, stats) = one(src);
    assert_eq!(stats.functions, 3);
    assert_eq!(stats.edges, 3); // root→a, root→b, a→b
    assert_eq!(stats.roots, 1);
    assert_eq!(stats.reachable, 3);
    assert_eq!(stats.unresolved, 0);
}
