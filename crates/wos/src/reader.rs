//! The fragment reader: parses a fragment log file back into blocks,
//! flush/sentinel records, bloom filter, and footer — tolerating torn
//! trailing writes and implementing the paper's commit-visibility rule.
//!
//! §7.1: "if a reader sees that a Fragment contains any additional data
//! after an append it just read, it knows that append is considered
//! committed ... When reading the final append in the Fragment, it will
//! typically see there is a commit record afterwards". Accordingly
//! [`parse_fragment`] marks every data block as committed except a data
//! block that is the *final* valid record of the file; such a tail block
//! is surfaced with `committed == false` and resolved by the caller
//! (replica comparison or SMS reconciliation, §5.6).

use vortex_common::bloom::BloomFilter;
use vortex_common::codec::decode_rowset;
use vortex_common::compress::decompress;
use vortex_common::crc::crc32c;
use vortex_common::crypt::{decrypt, Key, Nonce};
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::row::RowSet;
use vortex_common::truetime::Timestamp;

use crate::format::{Footer, FragmentHeader, RecordHeader, RecordType, RECORD_HEADER_LEN};

/// A decoded data block.
#[derive(Debug, Clone)]
pub struct DataBlock {
    /// Streamlet-relative row offset of the first row.
    pub first_row: u64,
    /// The rows.
    pub rows: RowSet,
    /// Server-assigned TrueTime timestamp of the write.
    pub timestamp: Timestamp,
    /// Byte offset of this block's record header within the fragment.
    pub offset: u64,
    /// Whether the block is known committed (something follows it).
    pub committed: bool,
}

/// A decoded flush record (BUFFERED streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushRecord {
    /// Streamlet-relative row offset flushed up to (exclusive).
    pub flush_row: u64,
    /// When the flush was persisted.
    pub timestamp: Timestamp,
}

/// A decoded sentinel record (zombie-writer poison, §5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentinelRecord {
    /// Epoch of the reconciler that wrote the poison.
    pub epoch: u64,
    /// When it was written.
    pub timestamp: Timestamp,
}

/// Everything recovered from one fragment log file.
#[derive(Debug, Clone)]
pub struct ParsedFragment {
    /// The fragment header (identity + File Map).
    pub header: FragmentHeader,
    /// Data blocks in file order.
    pub blocks: Vec<DataBlock>,
    /// Flush records in file order.
    pub flushes: Vec<FlushRecord>,
    /// Sentinel records (normally empty; non-empty means ownership was
    /// revoked).
    pub sentinels: Vec<SentinelRecord>,
    /// The bloom filter, present once finalized.
    pub bloom: Option<BloomFilter>,
    /// The footer, present once finalized.
    pub footer: Option<Footer>,
    /// Bytes of valid records parsed (offset just past the last one).
    pub valid_len: u64,
    /// Trailing bytes ignored as torn/partial.
    pub torn_bytes: u64,
}

impl ParsedFragment {
    /// Whether the fragment is finalized (footer present).
    pub fn is_finalized(&self) -> bool {
        self.footer.is_some()
    }

    /// Total rows in committed blocks.
    pub fn committed_rows(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.committed)
            .map(|b| b.rows.len() as u64)
            .sum()
    }

    /// Total rows including an uncommitted tail block.
    pub fn total_rows(&self) -> u64 {
        self.blocks.iter().map(|b| b.rows.len() as u64).sum()
    }

    /// The streamlet row offset just past the last committed row, or the
    /// fragment's first row if nothing is committed.
    pub fn committed_end_row(&self) -> u64 {
        self.blocks
            .iter()
            .rfind(|b| b.committed)
            .map(|b| b.first_row + b.rows.len() as u64)
            .unwrap_or(self.header.first_row)
    }

    /// Byte length of the committed prefix: `valid_len` minus a trailing
    /// uncommitted data block (reconciliation compares this across
    /// replicas).
    pub fn committed_len(&self) -> u64 {
        match self.blocks.last() {
            Some(b) if !b.committed => b.offset,
            _ => self.valid_len,
        }
    }

    /// Highest flushed row offset recorded, if any.
    pub fn max_flush_row(&self) -> Option<u64> {
        self.flushes.iter().map(|f| f.flush_row).max()
    }

    /// Whether a zombie-poison sentinel is present.
    pub fn is_poisoned(&self) -> bool {
        !self.sentinels.is_empty()
    }
}

/// Parses a fragment file.
///
/// `limit`, when supplied from a File Map, bounds parsing to the committed
/// final size of the fragment: "clients will not read past the logical
/// finalized size of a Fragment in the File Map, so will ignore failed or
/// partial writes at the end" (§7.1). Inside the limit, corruption is an
/// error; past the limit (or past the last parseable record when no limit
/// is given), bytes are counted in `torn_bytes` and ignored.
// lint:hotpath(scan) — decode leg: every fragment read passes through here
pub fn parse_fragment(bytes: &[u8], key: &Key, limit: Option<u64>) -> VortexResult<ParsedFragment> {
    let window: &[u8] = match limit {
        Some(l) if (l as usize) < bytes.len() => &bytes[..l as usize],
        _ => bytes,
    };
    let strict = limit.is_some();

    let mut pos = 0usize;
    let mut header: Option<FragmentHeader> = None;
    let mut blocks: Vec<DataBlock> = Vec::new();
    let mut flushes: Vec<FlushRecord> = Vec::new();
    let mut sentinels: Vec<SentinelRecord> = Vec::new();
    let mut bloom: Option<BloomFilter> = None;
    let mut footer: Option<Footer> = None;
    let mut last_was_data = false;

    while pos + RECORD_HEADER_LEN <= window.len() {
        let rec = match RecordHeader::from_bytes(&window[pos..]) {
            Ok(r) => r,
            Err(e) => {
                if strict {
                    return Err(VortexError::CorruptData(format!(
                        "record at {pos} inside committed range: {e}"
                    )));
                }
                break; // torn tail
            }
        };
        let payload_end = pos + RECORD_HEADER_LEN + rec.payload_len as usize;
        if payload_end > window.len() {
            if strict {
                return Err(VortexError::CorruptData(format!(
                    "record at {pos} payload truncated inside committed range"
                )));
            }
            break; // torn tail
        }
        let payload = &window[pos + RECORD_HEADER_LEN..payload_end];
        if rec.payload_len > 0 && crc32c(payload) != rec.disk_crc {
            if strict {
                return Err(VortexError::CorruptData(format!(
                    "record at {pos} payload crc mismatch inside committed range"
                )));
            }
            break; // torn tail
        }

        match rec.rtype {
            RecordType::Header => {
                if header.is_some() || pos != 0 {
                    if strict {
                        return Err(VortexError::CorruptData(
                            "duplicate or misplaced fragment header".into(),
                        ));
                    }
                    // A re-written header (failed open retried on the
                    // same file) marks the end of valid content.
                    break;
                }
                header = Some(FragmentHeader::from_bytes(payload)?);
            }
            RecordType::Data => {
                let hdr = header.as_ref().ok_or_else(|| {
                    VortexError::CorruptData("data block before fragment header".into())
                })?;
                let nonce = Nonce::for_block(hdr.fragment.raw(), rec.block_ordinal);
                let compressed = decrypt(key, &nonce, payload);
                let plain = decompress(&compressed).map_err(|e| {
                    VortexError::CorruptData(format!(
                        "block {} decompress (wrong key or corruption): {e}",
                        rec.block_ordinal
                    ))
                })?;
                if crc32c(&plain) != rec.plain_crc {
                    return Err(VortexError::CorruptData(format!(
                        "block {} plaintext crc mismatch",
                        rec.block_ordinal
                    )));
                }
                if plain.len() != rec.uncompressed_len as usize {
                    return Err(VortexError::CorruptData(format!(
                        "block {} uncompressed length mismatch",
                        rec.block_ordinal
                    )));
                }
                let rows = decode_rowset(&plain)?;
                if rows.len() != rec.row_count as usize {
                    return Err(VortexError::CorruptData(format!(
                        "block {} row count mismatch: header {}, decoded {}",
                        rec.block_ordinal,
                        rec.row_count,
                        rows.len()
                    )));
                }
                // Seeing a new record commits everything before it. Only
                // the most recent block can be uncommitted (every earlier
                // one was committed when its successor record parsed), so
                // flipping the last is enough — and keeps parsing O(n)
                // rather than O(records²) on block-heavy fragments.
                if let Some(b) = blocks.last_mut() {
                    b.committed = true;
                }
                blocks.push(DataBlock {
                    first_row: rec.first_row,
                    rows,
                    timestamp: rec.timestamp,
                    offset: pos as u64,
                    committed: false,
                });
                last_was_data = true;
                pos = payload_end;
                continue;
            }
            RecordType::Commit => {}
            RecordType::Flush => {
                if payload.len() != 8 {
                    return Err(VortexError::CorruptData("flush payload size".into()));
                }
                flushes.push(FlushRecord {
                    flush_row: u64::from_le_bytes(payload.try_into().unwrap()),
                    timestamp: rec.timestamp,
                });
            }
            RecordType::Sentinel => {
                if payload.len() != 8 {
                    return Err(VortexError::CorruptData("sentinel payload size".into()));
                }
                sentinels.push(SentinelRecord {
                    epoch: u64::from_le_bytes(payload.try_into().unwrap()),
                    timestamp: rec.timestamp,
                });
            }
            RecordType::Bloom => {
                bloom = Some(BloomFilter::from_bytes(payload).map_err(VortexError::CorruptData)?);
            }
            RecordType::Footer => {
                footer = Some(Footer::from_bytes(payload)?);
            }
        }
        // Any non-data record commits all preceding data blocks (only
        // the last can still be uncommitted).
        if let Some(b) = blocks.last_mut() {
            b.committed = true;
        }
        last_was_data = false;
        pos = payload_end;
    }

    let header = header.ok_or_else(|| {
        VortexError::CorruptData("fragment has no parseable header record".into())
    })?;

    // A footer also certifies the whole file; and a strict (File Map
    // bounded) parse certifies everything inside the limit.
    if footer.is_some() || (strict && last_was_data) {
        if let Some(b) = blocks.last_mut() {
            b.committed = true;
        }
    }

    Ok(ParsedFragment {
        header,
        blocks,
        flushes,
        sentinels,
        bloom,
        footer,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FileMapEntry, FragmentConfig};
    use crate::writer::FragmentWriter;
    use vortex_common::ids::{FragmentId, StreamletId};
    use vortex_common::row::{Row, Value};

    fn key() -> Key {
        Key::derive_from_passphrase("reader-test")
    }

    fn cfg() -> FragmentConfig {
        FragmentConfig {
            streamlet: StreamletId::from_raw(3),
            fragment: FragmentId::from_raw(77),
            ordinal: 1,
            schema_version: 2,
            key: key(),
        }
    }

    fn rows(start: i64, n: usize) -> RowSet {
        RowSet::new(
            (0..n)
                .map(|i| {
                    Row::insert(vec![
                        Value::Int64(start + i as i64),
                        Value::String(format!("payload-{}", start + i as i64)),
                    ])
                })
                .collect(),
        )
    }

    fn build_fragment() -> (Vec<u8>, FragmentWriter) {
        let fm = vec![FileMapEntry {
            ordinal: 0,
            fragment: FragmentId::from_raw(76),
            committed_size: 4096,
            first_row: 0,
            row_count: 10,
        }];
        let (mut w, mut file) = FragmentWriter::new(cfg(), 10, fm, Timestamp(100));
        file.extend(w.data_block(&rows(0, 4).rows, Timestamp(200)).unwrap());
        file.extend(w.data_block(&rows(4, 6).rows, Timestamp(300)).unwrap());
        (file, w)
    }

    #[test]
    fn roundtrip_with_tail_commit_semantics() {
        let (file, _) = build_fragment();
        let p = parse_fragment(&file, &key(), None).unwrap();
        assert_eq!(p.header.streamlet.raw(), 3);
        assert_eq!(p.header.first_row, 10);
        assert_eq!(p.header.file_map.len(), 1);
        assert_eq!(p.blocks.len(), 2);
        // First block committed (data followed it); tail block not.
        assert!(p.blocks[0].committed);
        assert!(!p.blocks[1].committed);
        assert_eq!(p.blocks[0].first_row, 10);
        assert_eq!(p.blocks[1].first_row, 14);
        assert_eq!(p.committed_rows(), 4);
        assert_eq!(p.total_rows(), 10);
        assert_eq!(p.committed_end_row(), 14);
        assert_eq!(p.torn_bytes, 0);
        // Rows decode intact.
        assert_eq!(
            p.blocks[0].rows.rows[0].values[1],
            Value::String("payload-0".into())
        );
    }

    #[test]
    fn commit_record_commits_tail() {
        let (mut file, mut w) = build_fragment();
        file.extend(w.commit_record(Timestamp(400)).unwrap());
        let p = parse_fragment(&file, &key(), None).unwrap();
        assert!(p.blocks.iter().all(|b| b.committed));
        assert_eq!(p.committed_rows(), 10);
        assert_eq!(p.committed_len(), p.valid_len);
        assert_eq!(p.committed_end_row(), 20);
    }

    #[test]
    fn torn_tail_is_skipped() {
        let (mut file, mut w) = build_fragment();
        let full_len = file.len();
        let block3 = w.data_block(&rows(10, 2).rows, Timestamp(500)).unwrap();
        // Write only half of the third block: simulated torn write.
        file.extend_from_slice(&block3[..block3.len() / 2]);
        let p = parse_fragment(&file, &key(), None).unwrap();
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.valid_len as usize, full_len);
        assert!(p.torn_bytes > 0);
        // The torn write *did* commit block 2 though: data followed it on
        // disk... no — the torn record never parsed, so block 2 stays
        // uncommitted pending reconciliation.
        assert!(!p.blocks[1].committed);
    }

    #[test]
    fn file_map_limit_certifies_content() {
        let (mut file, mut w) = build_fragment();
        let committed = file.len() as u64;
        // Garbage beyond the committed size recorded in a File Map.
        file.extend_from_slice(&[0xAB; 100]);
        let p = parse_fragment(&file, &key(), Some(committed)).unwrap();
        assert_eq!(p.blocks.len(), 2);
        // Inside a File-Map-certified range, even the tail data block is
        // committed.
        assert!(p.blocks.iter().all(|b| b.committed));
        assert_eq!(p.torn_bytes, 100);
        // But corruption *inside* the certified range is a hard error.
        let mut corrupt = file.clone();
        corrupt[100] ^= 0xFF;
        assert!(parse_fragment(&corrupt, &key(), Some(committed)).is_err());
        // Appease the unused warning.
        let _ = w.commit_record(Timestamp(1)).unwrap();
    }

    #[test]
    fn flush_records_surface() {
        let (mut file, mut w) = build_fragment();
        file.extend(w.flush_record(12, Timestamp(450)).unwrap());
        file.extend(w.flush_record(17, Timestamp(460)).unwrap());
        let p = parse_fragment(&file, &key(), None).unwrap();
        assert_eq!(p.flushes.len(), 2);
        assert_eq!(p.max_flush_row(), Some(17));
        // Flush records also commit preceding data.
        assert!(p.blocks.iter().all(|b| b.committed));
    }

    #[test]
    fn sentinel_poisons_fragment() {
        let (mut file, _) = build_fragment();
        file.extend(FragmentWriter::sentinel_record(42, Timestamp(999)));
        let p = parse_fragment(&file, &key(), None).unwrap();
        assert!(p.is_poisoned());
        assert_eq!(p.sentinels[0].epoch, 42);
    }

    #[test]
    fn finalized_fragment_has_bloom_and_footer() {
        let (mut file, mut w) = build_fragment();
        let mut bloom = BloomFilter::with_capacity(16, 0.01);
        bloom.insert(b"cust-1");
        file.extend(w.finalize(&bloom, Timestamp(600)).unwrap());
        let p = parse_fragment(&file, &key(), None).unwrap();
        assert!(p.is_finalized());
        let f = p.footer.unwrap();
        assert_eq!(f.total_rows, 10);
        assert_eq!(f.committed_size, file.len() as u64);
        assert!(p.bloom.as_ref().unwrap().may_contain(b"cust-1"));
        assert!(!p.bloom.as_ref().unwrap().may_contain(b"cust-404"));
        assert!(p.blocks.iter().all(|b| b.committed));
        // The footer's bloom_offset points at the bloom record header.
        let rec = RecordHeader::from_bytes(&file[f.bloom_offset as usize..]).unwrap();
        assert_eq!(rec.rtype, RecordType::Bloom);
    }

    #[test]
    fn wrong_key_is_detected() {
        let (file, _) = build_fragment();
        let wrong = Key::derive_from_passphrase("not-the-key");
        let err = parse_fragment(&file, &wrong, None).unwrap_err();
        assert!(matches!(err, VortexError::CorruptData(_)), "{err}");
    }

    #[test]
    fn headerless_bytes_rejected() {
        assert!(parse_fragment(&[], &key(), None).is_err());
        assert!(parse_fragment(&[0u8; 200], &key(), None).is_err());
    }

    #[test]
    fn every_truncation_point_is_handled() {
        let (mut file, mut w) = build_fragment();
        let mut bloom = BloomFilter::with_capacity(4, 0.1);
        bloom.insert(b"k");
        file.extend(w.finalize(&bloom, Timestamp(1)).unwrap());
        // Any truncation either parses a prefix or errors; never panics.
        for cut in 0..file.len() {
            let _ = parse_fragment(&file[..cut], &key(), None);
        }
    }

    #[test]
    fn committed_len_excludes_uncommitted_tail() {
        let (file, _) = build_fragment();
        let p = parse_fragment(&file, &key(), None).unwrap();
        assert_eq!(p.committed_len(), p.blocks[1].offset);
        assert!(p.committed_len() < p.valid_len);
    }
}
