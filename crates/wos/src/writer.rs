//! The fragment writer: turns row batches into framed, compressed,
//! encrypted, CRC-protected log records.
//!
//! The writer is storage-agnostic — it produces byte chunks; the Stream
//! Server appends each chunk to *both* replica log files (§5.6 physical
//! replication: "the Stream Server log file writes are identical in both
//! clusters").

use vortex_common::bloom::BloomFilter;
use vortex_common::codec::encode_rows;
use vortex_common::compress::{compress, decompress};
use vortex_common::crc::crc32c;
use vortex_common::crypt::{apply_keystream, Nonce};
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::row::Row;
use vortex_common::truetime::Timestamp;

use crate::format::{
    FileMapEntry, Footer, FragmentConfig, FragmentHeader, RecordHeader, RecordType, FORMAT_VERSION,
};

/// Writes one fragment's record stream.
///
/// Typical lifecycle:
/// 1. [`FragmentWriter::new`] → append the returned header chunk;
/// 2. repeated [`FragmentWriter::data_block`] (each chunk ≤ ~2 MB of rows);
/// 3. optional [`FragmentWriter::commit_record`] after idle periods and
///    [`FragmentWriter::flush_record`] for BUFFERED-stream flushes;
/// 4. [`FragmentWriter::finalize`] → bloom + footer chunk.
#[derive(Debug)]
pub struct FragmentWriter {
    cfg: FragmentConfig,
    next_ordinal: u32,
    /// Streamlet-relative row offset the next data block starts at.
    next_row: u64,
    /// Logical bytes emitted so far (header included).
    logical_size: u64,
    rows_in_fragment: u64,
    first_row: u64,
    finalized: bool,
}

impl FragmentWriter {
    /// Creates a writer and returns it together with the encoded header
    /// record (the first chunk to append to the log file).
    ///
    /// `first_row` is the streamlet-relative row offset this fragment
    /// starts at; `file_map` lists the previous live fragments (§5.4.4).
    pub fn new(
        cfg: FragmentConfig,
        first_row: u64,
        file_map: Vec<FileMapEntry>,
        timestamp: Timestamp,
    ) -> (Self, Vec<u8>) {
        let header = FragmentHeader {
            format_version: FORMAT_VERSION,
            streamlet: cfg.streamlet,
            fragment: cfg.fragment,
            ordinal: cfg.ordinal,
            first_row,
            schema_version: cfg.schema_version,
            file_map,
        };
        let payload = header.to_bytes();
        let rec = RecordHeader {
            rtype: RecordType::Header,
            flags: 0,
            block_ordinal: 0,
            timestamp,
            first_row,
            row_count: 0,
            uncompressed_len: payload.len() as u32,
            payload_len: payload.len() as u32,
            plain_crc: crc32c(&payload),
            disk_crc: crc32c(&payload),
        };
        let mut chunk = rec.to_bytes().to_vec();
        chunk.extend_from_slice(&payload);
        let logical_size = chunk.len() as u64;
        (
            Self {
                cfg,
                next_ordinal: 1,
                next_row: first_row,
                logical_size,
                rows_in_fragment: 0,
                first_row,
                finalized: false,
            },
            chunk,
        )
    }

    fn check_writable(&self) -> VortexResult<()> {
        if self.finalized {
            return Err(VortexError::Internal(format!(
                "fragment {} already finalized",
                self.cfg.fragment
            )));
        }
        Ok(())
    }

    fn frame(&mut self, rec: RecordHeader, payload: &[u8]) -> Vec<u8> {
        let mut chunk = rec.to_bytes().to_vec();
        chunk.extend_from_slice(payload);
        self.next_ordinal += 1;
        self.logical_size += chunk.len() as u64;
        chunk
    }

    /// Encodes a data block from a row batch, using the server-assigned
    /// TrueTime `timestamp` for every row in the write.
    ///
    /// The pipeline is: encode → CRC(plaintext) → compress →
    /// decompress-verify (§5.4.5's corruption guard) → encrypt →
    /// CRC(payload) → frame.
    ///
    /// Takes a borrowed row slice so the server can chunk a batch by
    /// index range without materialising per-chunk `RowSet`s.
    // lint:hotpath(append) — encode leg: every durable byte passes through here
    pub fn data_block(&mut self, rows: &[Row], timestamp: Timestamp) -> VortexResult<Vec<u8>> {
        self.check_writable()?;
        if rows.is_empty() {
            return Err(VortexError::InvalidArgument(
                "data block must contain rows".into(),
            ));
        }
        let plain = encode_rows(rows);
        let plain_crc = crc32c(&plain);
        let compressed = compress(&plain);
        // Guard against corruption during compression: decompress and
        // verify the CRC matches the original (§5.4.5).
        let verify = decompress(&compressed)
            .map_err(|e| VortexError::CorruptData(format!("compress self-check: {e}")))?;
        if crc32c(&verify) != plain_crc {
            return Err(VortexError::CorruptData(
                "compress self-check: crc mismatch".into(),
            ));
        }
        let mut payload = compressed;
        let nonce = Nonce::for_block(self.cfg.fragment.raw(), self.next_ordinal);
        apply_keystream(&self.cfg.key, &nonce, &mut payload);
        let rec = RecordHeader {
            rtype: RecordType::Data,
            flags: 0,
            block_ordinal: self.next_ordinal,
            timestamp,
            first_row: self.next_row,
            row_count: rows.len() as u32,
            uncompressed_len: plain.len() as u32,
            payload_len: payload.len() as u32,
            plain_crc,
            disk_crc: crc32c(&payload),
        };
        self.next_row += rows.len() as u64;
        self.rows_in_fragment += rows.len() as u64;
        let m = vortex_common::obs::global();
        m.counter("wos.blocks_encoded").inc();
        m.counter("wos.rows_encoded").add(rows.len() as u64);
        Ok(self.frame(rec, &payload))
    }

    /// Encodes a commit record: everything written before it is committed.
    /// Written after a small period of inactivity when no further data
    /// append piggybacks the commit (§7.1).
    pub fn commit_record(&mut self, timestamp: Timestamp) -> VortexResult<Vec<u8>> {
        self.check_writable()?;
        let rec = RecordHeader {
            rtype: RecordType::Commit,
            flags: 0,
            block_ordinal: self.next_ordinal,
            timestamp,
            first_row: self.next_row,
            row_count: 0,
            uncompressed_len: 0,
            payload_len: 0,
            plain_crc: 0,
            disk_crc: 0,
        };
        Ok(self.frame(rec, &[]))
    }

    /// Encodes a flush record advancing the streamlet's committed row
    /// offset to `flush_row` (BUFFERED streams, §5.4.4).
    pub fn flush_record(&mut self, flush_row: u64, timestamp: Timestamp) -> VortexResult<Vec<u8>> {
        self.check_writable()?;
        let payload = flush_row.to_le_bytes();
        let crc = crc32c(&payload);
        let rec = RecordHeader {
            rtype: RecordType::Flush,
            flags: 0,
            block_ordinal: self.next_ordinal,
            timestamp,
            first_row: self.next_row,
            row_count: 0,
            uncompressed_len: payload.len() as u32,
            payload_len: payload.len() as u32,
            plain_crc: crc,
            disk_crc: crc,
        };
        Ok(self.frame(rec, &payload))
    }

    /// Encodes a standalone sentinel record with the given writer epoch.
    ///
    /// Sentinels are written by the *reconciler*, not the original writer
    /// (§5.6): appending one invalidates the previous writer's assumption
    /// that it is the sole writer of the log file. This is an associated
    /// function because the reconciler has no [`FragmentWriter`] state —
    /// it appends directly at the replica's current tail.
    pub fn sentinel_record(epoch: u64, timestamp: Timestamp) -> Vec<u8> {
        let payload = epoch.to_le_bytes();
        let crc = crc32c(&payload);
        let rec = RecordHeader {
            rtype: RecordType::Sentinel,
            flags: 0,
            // Sentinels are appended out-of-band; ordinal is not meaningful.
            block_ordinal: u32::MAX,
            timestamp,
            first_row: 0,
            row_count: 0,
            uncompressed_len: payload.len() as u32,
            payload_len: payload.len() as u32,
            plain_crc: crc,
            disk_crc: crc,
        };
        let mut chunk = rec.to_bytes().to_vec();
        chunk.extend_from_slice(&payload);
        chunk
    }

    /// Finalizes: emits the bloom filter record followed by the fixed
    /// footer. After this the writer refuses further records.
    pub fn finalize(&mut self, bloom: &BloomFilter, timestamp: Timestamp) -> VortexResult<Vec<u8>> {
        self.check_writable()?;
        let bloom_offset = self.logical_size;
        let bloom_bytes = bloom.to_bytes();
        let crc = crc32c(&bloom_bytes);
        let bloom_rec = RecordHeader {
            rtype: RecordType::Bloom,
            flags: 0,
            block_ordinal: self.next_ordinal,
            timestamp,
            first_row: self.next_row,
            row_count: 0,
            uncompressed_len: bloom_bytes.len() as u32,
            payload_len: bloom_bytes.len() as u32,
            plain_crc: crc,
            disk_crc: crc,
        };
        let mut chunk = self.frame(bloom_rec, &bloom_bytes);

        let committed_size = self.logical_size + crate::format::FOOTER_TOTAL_LEN as u64;
        let footer = Footer {
            bloom_offset,
            total_rows: self.rows_in_fragment,
            committed_size,
        };
        let payload = footer.to_bytes();
        let fcrc = crc32c(&payload);
        let footer_rec = RecordHeader {
            rtype: RecordType::Footer,
            flags: 0,
            block_ordinal: self.next_ordinal,
            timestamp,
            first_row: self.next_row,
            row_count: 0,
            uncompressed_len: payload.len() as u32,
            payload_len: payload.len() as u32,
            plain_crc: fcrc,
            disk_crc: fcrc,
        };
        chunk.extend_from_slice(&self.frame(footer_rec, &payload));
        self.finalized = true;
        debug_assert_eq!(self.logical_size, committed_size);
        Ok(chunk)
    }

    /// Logical bytes emitted so far.
    pub fn logical_size(&self) -> u64 {
        self.logical_size
    }

    /// Rows written into this fragment so far.
    pub fn rows_written(&self) -> u64 {
        self.rows_in_fragment
    }

    /// Streamlet-relative row offset the next block will start at.
    pub fn next_row(&self) -> u64 {
        self.next_row
    }

    /// Streamlet-relative row offset of the fragment's first row.
    pub fn first_row(&self) -> u64 {
        self.first_row
    }

    /// Whether [`FragmentWriter::finalize`] has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// This fragment's id.
    pub fn fragment_id(&self) -> vortex_common::ids::FragmentId {
        self.cfg.fragment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_common::crypt::Key;
    use vortex_common::ids::{FragmentId, StreamletId};
    use vortex_common::row::{Row, RowSet, Value};

    fn cfg() -> FragmentConfig {
        FragmentConfig {
            streamlet: StreamletId::from_raw(1),
            fragment: FragmentId::from_raw(10),
            ordinal: 0,
            schema_version: 1,
            key: Key::derive_from_passphrase("test"),
        }
    }

    fn rows(n: usize) -> RowSet {
        RowSet::new(
            (0..n)
                .map(|i| {
                    Row::insert(vec![
                        Value::Int64(i as i64),
                        Value::String(format!("row-{i}")),
                    ])
                })
                .collect(),
        )
    }

    #[test]
    fn writer_tracks_offsets_and_sizes() {
        let (mut w, header) = FragmentWriter::new(cfg(), 100, vec![], Timestamp(1));
        assert_eq!(w.logical_size(), header.len() as u64);
        assert_eq!(w.next_row(), 100);
        let b1 = w.data_block(&rows(5).rows, Timestamp(2)).unwrap();
        assert_eq!(w.next_row(), 105);
        assert_eq!(w.rows_written(), 5);
        let b2 = w.data_block(&rows(3).rows, Timestamp(3)).unwrap();
        assert_eq!(w.next_row(), 108);
        assert_eq!(
            w.logical_size(),
            (header.len() + b1.len() + b2.len()) as u64
        );
    }

    #[test]
    fn empty_data_block_rejected() {
        let (mut w, _) = FragmentWriter::new(cfg(), 0, vec![], Timestamp(1));
        assert!(w.data_block(&[], Timestamp(2)).is_err());
    }

    #[test]
    fn finalize_locks_writer() {
        let (mut w, _) = FragmentWriter::new(cfg(), 0, vec![], Timestamp(1));
        w.data_block(&rows(1).rows, Timestamp(2)).unwrap();
        let bloom = BloomFilter::with_capacity(10, 0.01);
        w.finalize(&bloom, Timestamp(3)).unwrap();
        assert!(w.is_finalized());
        assert!(w.data_block(&rows(1).rows, Timestamp(4)).is_err());
        assert!(w.commit_record(Timestamp(4)).is_err());
        assert!(w.flush_record(0, Timestamp(4)).is_err());
        assert!(w.finalize(&bloom, Timestamp(4)).is_err());
    }

    #[test]
    fn data_block_payload_is_encrypted() {
        let (mut w, _) = FragmentWriter::new(cfg(), 0, vec![], Timestamp(1));
        let marker = "VERYRECOGNIZABLESTRINGVALUE";
        let rs = RowSet::new(vec![Row::insert(vec![Value::String(marker.into())])]);
        let chunk = w.data_block(&rs.rows, Timestamp(2)).unwrap();
        let haystack = chunk
            .windows(marker.len())
            .any(|win| win == marker.as_bytes());
        assert!(!haystack, "plaintext leaked into the on-disk payload");
    }

    #[test]
    fn sentinel_is_self_contained() {
        let chunk = FragmentWriter::sentinel_record(7, Timestamp(9));
        let rec = RecordHeader::from_bytes(&chunk).unwrap();
        assert_eq!(rec.rtype, RecordType::Sentinel);
        assert_eq!(rec.payload_len, 8);
        let epoch = u64::from_le_bytes(chunk[48..56].try_into().unwrap());
        assert_eq!(epoch, 7);
    }

    #[test]
    fn commit_record_carries_row_watermark() {
        let (mut w, _) = FragmentWriter::new(cfg(), 50, vec![], Timestamp(1));
        w.data_block(&rows(7).rows, Timestamp(2)).unwrap();
        let chunk = w.commit_record(Timestamp(3)).unwrap();
        let rec = RecordHeader::from_bytes(&chunk).unwrap();
        assert_eq!(rec.rtype, RecordType::Commit);
        assert_eq!(rec.first_row, 57);
    }
}
