//! Binary layout of WOS fragment files.
//!
//! A fragment file is a sequence of length-framed records, each introduced
//! by a fixed 48-byte [`RecordHeader`]. The first record is always a
//! [`RecordType::Header`] carrying the [`FragmentHeader`] (ids, schema
//! version, File Map); the last two records of a finalized fragment are a
//! [`RecordType::Bloom`] and a [`RecordType::Footer`].

use vortex_common::crc::crc32c;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{FragmentId, StreamletId};
use vortex_common::truetime::Timestamp;

/// Magic for every record header ("VB" little-endian).
pub const RECORD_MAGIC: u16 = 0x4256;
/// Fixed size of a [`RecordHeader`] on disk.
pub const RECORD_HEADER_LEN: usize = 48;
/// Current format version written into fragment headers.
pub const FORMAT_VERSION: u16 = 1;
/// Fixed total size of the footer record (header + 24-byte payload),
/// letting readers locate it from the end of a finalized file.
pub const FOOTER_TOTAL_LEN: usize = RECORD_HEADER_LEN + 24;

/// The kind of a record in a fragment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordType {
    /// Fragment header with the File Map. Always the first record.
    Header,
    /// A block of appended rows (compressed + encrypted).
    Data,
    /// Commit marker: everything before this record is committed.
    Commit,
    /// FlushStream marker for BUFFERED streams.
    Flush,
    /// Zombie-writer poison (§5.6).
    Sentinel,
    /// Serialized bloom filter over partition/clustering keys.
    Bloom,
    /// Fixed-length trailer marking the fragment finalized.
    Footer,
}

impl RecordType {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            RecordType::Header => 1,
            RecordType::Data => 2,
            RecordType::Commit => 3,
            RecordType::Flush => 4,
            RecordType::Sentinel => 5,
            RecordType::Bloom => 6,
            RecordType::Footer => 7,
        }
    }

    /// Parses a wire value.
    pub fn from_u8(v: u8) -> VortexResult<Self> {
        Ok(match v {
            1 => RecordType::Header,
            2 => RecordType::Data,
            3 => RecordType::Commit,
            4 => RecordType::Flush,
            5 => RecordType::Sentinel,
            6 => RecordType::Bloom,
            7 => RecordType::Footer,
            other => return Err(VortexError::Decode(format!("bad record type {other}"))),
        })
    }
}

/// The fixed 48-byte header framing every record.
///
/// Layout (little-endian):
/// `magic u16 | type u8 | flags u8 | block_ordinal u32 | timestamp u64 |
///  first_row u64 | row_count u32 | uncompressed_len u32 | payload_len u32 |
///  plain_crc u32 | disk_crc u32 | header_crc u32`
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Record kind.
    pub rtype: RecordType,
    /// Reserved flag bits (currently zero).
    pub flags: u8,
    /// Ordinal of this record within the fragment (0 = header record).
    /// Doubles as the encryption-nonce block counter for data blocks.
    pub block_ordinal: u32,
    /// Server-assigned TrueTime timestamp of the write.
    pub timestamp: Timestamp,
    /// For data blocks: streamlet-relative row offset of the first row.
    /// For commit records: the streamlet row count committed so far.
    pub first_row: u64,
    /// Number of rows in a data block (0 otherwise).
    pub row_count: u32,
    /// Plaintext (pre-compression) length of the payload.
    pub uncompressed_len: u32,
    /// On-disk payload length following this header.
    pub payload_len: u32,
    /// CRC32C of the plaintext row bytes (end-to-end protection).
    pub plain_crc: u32,
    /// CRC32C of the on-disk (compressed+encrypted) payload.
    pub disk_crc: u32,
}

impl RecordHeader {
    /// Serializes to the fixed 48-byte layout, computing the header CRC.
    pub fn to_bytes(&self) -> [u8; RECORD_HEADER_LEN] {
        let mut b = [0u8; RECORD_HEADER_LEN];
        b[0..2].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
        b[2] = self.rtype.to_u8();
        b[3] = self.flags;
        b[4..8].copy_from_slice(&self.block_ordinal.to_le_bytes());
        b[8..16].copy_from_slice(&self.timestamp.micros().to_le_bytes());
        b[16..24].copy_from_slice(&self.first_row.to_le_bytes());
        b[24..28].copy_from_slice(&self.row_count.to_le_bytes());
        b[28..32].copy_from_slice(&self.uncompressed_len.to_le_bytes());
        b[32..36].copy_from_slice(&self.payload_len.to_le_bytes());
        b[36..40].copy_from_slice(&self.plain_crc.to_le_bytes());
        b[40..44].copy_from_slice(&self.disk_crc.to_le_bytes());
        let crc = crc32c(&b[0..44]);
        b[44..48].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parses and CRC-validates a header. Errors indicate a torn or
    /// corrupt record — callers treat that as end-of-valid-data.
    pub fn from_bytes(b: &[u8]) -> VortexResult<Self> {
        if b.len() < RECORD_HEADER_LEN {
            return Err(VortexError::Decode(format!(
                "record header needs {RECORD_HEADER_LEN} bytes, have {}",
                b.len()
            )));
        }
        let magic = u16::from_le_bytes([b[0], b[1]]);
        if magic != RECORD_MAGIC {
            return Err(VortexError::Decode(format!(
                "bad record magic {magic:#06x}"
            )));
        }
        let stored_crc = u32::from_le_bytes(b[44..48].try_into().unwrap());
        let actual = crc32c(&b[0..44]);
        if stored_crc != actual {
            return Err(VortexError::CorruptData(format!(
                "record header crc mismatch: stored {stored_crc:#010x}, actual {actual:#010x}"
            )));
        }
        Ok(RecordHeader {
            rtype: RecordType::from_u8(b[2])?,
            flags: b[3],
            block_ordinal: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            timestamp: Timestamp::from_micros(u64::from_le_bytes(b[8..16].try_into().unwrap())),
            first_row: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            row_count: u32::from_le_bytes(b[24..28].try_into().unwrap()),
            uncompressed_len: u32::from_le_bytes(b[28..32].try_into().unwrap()),
            payload_len: u32::from_le_bytes(b[32..36].try_into().unwrap()),
            plain_crc: u32::from_le_bytes(b[36..40].try_into().unwrap()),
            disk_crc: u32::from_le_bytes(b[40..44].try_into().unwrap()),
        })
    }
}

/// One entry of the File Map: a previous, not-yet-deleted fragment of the
/// same streamlet with its committed final size and record range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMapEntry {
    /// Ordinal of the fragment within the streamlet (0-based).
    pub ordinal: u32,
    /// Fragment id (names the log file).
    pub fragment: FragmentId,
    /// Committed final size of that fragment's log file, in bytes.
    pub committed_size: u64,
    /// Streamlet-relative row offset of the fragment's first row.
    pub first_row: u64,
    /// Number of committed rows in the fragment.
    pub row_count: u64,
}

impl FileMapEntry {
    const LEN: usize = 4 + 8 + 8 + 8 + 8;

    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ordinal.to_le_bytes());
        out.extend_from_slice(&self.fragment.raw().to_le_bytes());
        out.extend_from_slice(&self.committed_size.to_le_bytes());
        out.extend_from_slice(&self.first_row.to_le_bytes());
        out.extend_from_slice(&self.row_count.to_le_bytes());
    }

    fn read(b: &[u8]) -> VortexResult<Self> {
        if b.len() < Self::LEN {
            return Err(VortexError::Decode("file map entry truncated".into()));
        }
        Ok(FileMapEntry {
            ordinal: u32::from_le_bytes(b[0..4].try_into().unwrap()),
            fragment: FragmentId::from_raw(u64::from_le_bytes(b[4..12].try_into().unwrap())),
            committed_size: u64::from_le_bytes(b[12..20].try_into().unwrap()),
            first_row: u64::from_le_bytes(b[20..28].try_into().unwrap()),
            row_count: u64::from_le_bytes(b[28..36].try_into().unwrap()),
        })
    }
}

/// Identity of a fragment plus the File Map, serialized as the payload of
/// the leading header record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentHeader {
    /// Format version.
    pub format_version: u16,
    /// Owning streamlet.
    pub streamlet: StreamletId,
    /// This fragment's id.
    pub fragment: FragmentId,
    /// Ordinal within the streamlet (0-based).
    pub ordinal: u32,
    /// Streamlet-relative row offset of the first row in this fragment.
    pub first_row: u64,
    /// Schema version rows in this fragment were validated against.
    pub schema_version: u32,
    /// File Map over previous live fragments.
    pub file_map: Vec<FileMapEntry>,
}

impl FragmentHeader {
    /// Serializes the header payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34 + self.file_map.len() * FileMapEntry::LEN);
        out.extend_from_slice(&self.format_version.to_le_bytes());
        out.extend_from_slice(&self.streamlet.raw().to_le_bytes());
        out.extend_from_slice(&self.fragment.raw().to_le_bytes());
        out.extend_from_slice(&self.ordinal.to_le_bytes());
        out.extend_from_slice(&self.first_row.to_le_bytes());
        out.extend_from_slice(&self.schema_version.to_le_bytes());
        out.extend_from_slice(&(self.file_map.len() as u32).to_le_bytes());
        for e in &self.file_map {
            e.write(&mut out);
        }
        out
    }

    /// Deserializes the header payload.
    pub fn from_bytes(b: &[u8]) -> VortexResult<Self> {
        if b.len() < 38 {
            return Err(VortexError::Decode("fragment header truncated".into()));
        }
        let format_version = u16::from_le_bytes(b[0..2].try_into().unwrap());
        if format_version != FORMAT_VERSION {
            return Err(VortexError::Decode(format!(
                "unsupported WOS format version {format_version}"
            )));
        }
        let streamlet = StreamletId::from_raw(u64::from_le_bytes(b[2..10].try_into().unwrap()));
        let fragment = FragmentId::from_raw(u64::from_le_bytes(b[10..18].try_into().unwrap()));
        let ordinal = u32::from_le_bytes(b[18..22].try_into().unwrap());
        let first_row = u64::from_le_bytes(b[22..30].try_into().unwrap());
        let schema_version = u32::from_le_bytes(b[30..34].try_into().unwrap());
        let count = u32::from_le_bytes(b[34..38].try_into().unwrap()) as usize;
        let need = 38 + count * FileMapEntry::LEN;
        if b.len() < need {
            return Err(VortexError::Decode(format!(
                "file map declares {count} entries, need {need} bytes, have {}",
                b.len()
            )));
        }
        let mut file_map = Vec::with_capacity(count);
        for i in 0..count {
            file_map.push(FileMapEntry::read(&b[38 + i * FileMapEntry::LEN..])?);
        }
        Ok(FragmentHeader {
            format_version,
            streamlet,
            fragment,
            ordinal,
            first_row,
            schema_version,
            file_map,
        })
    }
}

/// Payload of the fixed-length footer record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Byte offset of the bloom record's header within the fragment.
    pub bloom_offset: u64,
    /// Total committed rows in this fragment.
    pub total_rows: u64,
    /// Committed logical size of the fragment in bytes (including the
    /// bloom and footer records).
    pub committed_size: u64,
}

impl Footer {
    /// Serializes the 24-byte footer payload.
    pub fn to_bytes(&self) -> [u8; 24] {
        let mut b = [0u8; 24];
        b[0..8].copy_from_slice(&self.bloom_offset.to_le_bytes());
        b[8..16].copy_from_slice(&self.total_rows.to_le_bytes());
        b[16..24].copy_from_slice(&self.committed_size.to_le_bytes());
        b
    }

    /// Deserializes the footer payload.
    pub fn from_bytes(b: &[u8]) -> VortexResult<Self> {
        if b.len() < 24 {
            return Err(VortexError::Decode("footer truncated".into()));
        }
        Ok(Footer {
            bloom_offset: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            total_rows: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            committed_size: u64::from_le_bytes(b[16..24].try_into().unwrap()),
        })
    }
}

/// Static parameters of a fragment being written.
#[derive(Debug, Clone)]
pub struct FragmentConfig {
    /// Owning streamlet.
    pub streamlet: StreamletId,
    /// This fragment's id.
    pub fragment: FragmentId,
    /// Ordinal within the streamlet.
    pub ordinal: u32,
    /// Schema version in force.
    pub schema_version: u32,
    /// Encryption key (system or customer supplied, §5.4.5).
    pub key: vortex_common::crypt::Key,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> RecordHeader {
        RecordHeader {
            rtype: RecordType::Data,
            flags: 0,
            block_ordinal: 3,
            timestamp: Timestamp::from_micros(123_456),
            first_row: 42,
            row_count: 10,
            uncompressed_len: 1000,
            payload_len: 400,
            plain_crc: 0xABCD,
            disk_crc: 0x1234,
        }
    }

    #[test]
    fn record_header_roundtrip() {
        let h = sample_header();
        let b = h.to_bytes();
        assert_eq!(b.len(), RECORD_HEADER_LEN);
        assert_eq!(RecordHeader::from_bytes(&b).unwrap(), h);
    }

    #[test]
    fn record_header_detects_corruption() {
        let h = sample_header();
        let good = h.to_bytes();
        for i in 0..RECORD_HEADER_LEN {
            let mut bad = good;
            bad[i] ^= 0x01;
            assert!(
                RecordHeader::from_bytes(&bad).is_err(),
                "flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn record_header_truncation() {
        let b = sample_header().to_bytes();
        assert!(RecordHeader::from_bytes(&b[..47]).is_err());
        assert!(RecordHeader::from_bytes(&[]).is_err());
    }

    #[test]
    fn record_types_roundtrip() {
        for t in [
            RecordType::Header,
            RecordType::Data,
            RecordType::Commit,
            RecordType::Flush,
            RecordType::Sentinel,
            RecordType::Bloom,
            RecordType::Footer,
        ] {
            assert_eq!(RecordType::from_u8(t.to_u8()).unwrap(), t);
        }
        assert!(RecordType::from_u8(0).is_err());
        assert!(RecordType::from_u8(99).is_err());
    }

    #[test]
    fn fragment_header_roundtrip_with_file_map() {
        let h = FragmentHeader {
            format_version: FORMAT_VERSION,
            streamlet: StreamletId::from_raw(7),
            fragment: FragmentId::from_raw(100),
            ordinal: 2,
            first_row: 2048,
            schema_version: 5,
            file_map: vec![
                FileMapEntry {
                    ordinal: 0,
                    fragment: FragmentId::from_raw(98),
                    committed_size: 1 << 20,
                    first_row: 0,
                    row_count: 1024,
                },
                FileMapEntry {
                    ordinal: 1,
                    fragment: FragmentId::from_raw(99),
                    committed_size: 2 << 20,
                    first_row: 1024,
                    row_count: 1024,
                },
            ],
        };
        let b = h.to_bytes();
        assert_eq!(FragmentHeader::from_bytes(&b).unwrap(), h);
    }

    #[test]
    fn fragment_header_empty_file_map() {
        let h = FragmentHeader {
            format_version: FORMAT_VERSION,
            streamlet: StreamletId::from_raw(1),
            fragment: FragmentId::from_raw(2),
            ordinal: 0,
            first_row: 0,
            schema_version: 1,
            file_map: vec![],
        };
        assert_eq!(FragmentHeader::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn fragment_header_bad_version_and_truncation() {
        let h = FragmentHeader {
            format_version: FORMAT_VERSION,
            streamlet: StreamletId::from_raw(1),
            fragment: FragmentId::from_raw(2),
            ordinal: 0,
            first_row: 0,
            schema_version: 1,
            file_map: vec![],
        };
        let mut b = h.to_bytes();
        b[0] = 99;
        assert!(FragmentHeader::from_bytes(&b).is_err());
        let b = h.to_bytes();
        assert!(FragmentHeader::from_bytes(&b[..10]).is_err());
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            bloom_offset: 999,
            total_rows: 10_000,
            committed_size: 123_456,
        };
        assert_eq!(Footer::from_bytes(&f.to_bytes()).unwrap(), f);
        assert!(Footer::from_bytes(&[0; 10]).is_err());
    }

    #[test]
    fn footer_total_len_is_fixed() {
        assert_eq!(FOOTER_TOTAL_LEN, 72);
    }
}
