//! Write-Optimized Storage (WOS): the Fragment log-file format.
//!
//! This crate implements §5.4.4 of the paper byte-for-byte in spirit:
//!
//! - every Fragment begins with a **header record** carrying the **File
//!   Map** — "the committed size and record ranges of all previous
//!   Fragments in the same Streamlet which have not yet been deleted" —
//!   used for disaster resilience and for reading without the Stream
//!   Server (§7.1);
//! - row data arrives in **data blocks** of up to 2 MB, each stamped with
//!   "a single server-assigned TrueTime timestamp for all rows in the
//!   write";
//! - a **commit record** follows each append — "in the common case ...
//!   combined with the next data append. Otherwise, it is written after a
//!   small period of inactivity" (§7.1); a reader that sees *anything*
//!   after a data block knows that block is committed;
//! - **flush records** persist `FlushStream` calls on BUFFERED streams —
//!   "a metadata write to the Fragment which advances the committed row
//!   offset";
//! - **sentinel records** poison zombie writers during reconciliation
//!   (§5.6);
//! - on finalize, a **bloom filter** over partition/clustering keys and a
//!   **fixed-length footer** locating it (§5.4.4).
//!
//! Data blocks are compressed (vsnap, §5.4.5), verified by
//! decompress-and-CRC-check before leaving the writer, then encrypted
//! (ChaCha20) — "data is therefore in encrypted form while being sent over
//! RPC to Colossus, while at rest, and while being read back". Every
//! record carries CRCs over both the plaintext rows and the on-disk
//! payload, so torn trailing writes are detected and skipped rather than
//! crashing the reader.

#![warn(missing_docs)]

pub mod format;
pub mod reader;
pub mod writer;

pub use format::{
    FileMapEntry, Footer, FragmentConfig, FragmentHeader, RecordHeader, RecordType,
    RECORD_HEADER_LEN,
};
pub use reader::{parse_fragment, DataBlock, FlushRecord, ParsedFragment, SentinelRecord};
pub use writer::FragmentWriter;

/// Default maximum bytes buffered into a single data block (§5.4.4:
/// "The Stream Server buffers up to 2MB of records into a single write").
pub const DEFAULT_BLOCK_BUFFER_BYTES: usize = 2 * 1024 * 1024;

/// Default maximum logical size of a Fragment before the Stream Server
/// finalizes it and opens the next one (§5.3: small enough that WOS→ROS
/// conversion happens frequently, large enough to bound metadata churn).
pub const DEFAULT_FRAGMENT_MAX_BYTES: u64 = 64 * 1024 * 1024;
