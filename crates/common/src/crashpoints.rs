//! Deterministic process-death injection: named crash points.
//!
//! The paper's durability story (§5.3 WAL + checkpoints, §5.6
//! reconciliation, §7.1 File-Map recovery) claims a component can die at
//! the *worst possible instruction* and the system still recovers to an
//! exactly-once state. This module makes that claim testable in-process:
//! durable-write paths are annotated with *named* crash points
//! (`crash_point!("server.append.pre_ack")`), and a test arms a point
//! with a seeded deterministic trigger — fire on the Nth hit, or fire
//! per-mille of hits. A firing point returns
//! [`VortexError::SimulatedCrash`], which is deliberately **not**
//! retryable: internal retry loops must let it unwind to the component's
//! service boundary (the RPC channel wrappers in `vortex-sms::api`),
//! which marks the instance dead and converts the error into a retryable
//! `Unavailable` for remote callers — exactly as if the process had been
//! killed at that instruction. No Rust panic is ever raised.
//!
//! With no point armed, the check on the append hot path is a single
//! relaxed atomic load (see [`check`]), so the framework adds no
//! measurable overhead to production-shaped benches.
//!
//! Naming convention: `component.operation.moment`, lowercase, dot
//! separated (e.g. `sms.open_streamlet.post_txn`). Every name used in a
//! `crash_point!` call site must be unique across the repository and
//! listed in [`REGISTRY`] — lint rule L007 enforces both.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::error::{VortexError, VortexResult};

/// The catalogue of every crash point compiled into the engine, with the
/// durable-write gap it models. Lint rule L007 checks that each
/// `crash_point!` call site uses a name from this list and that no name
/// has two call sites.
pub const REGISTRY: &[&str] = &[
    // Stream Server: between the two synchronous replica appends of a
    // dual-cluster write (§5.6) — one cluster has the bytes, the other
    // does not; reconciliation must converge on a common prefix.
    "server.replica.mid_write",
    // Stream Server: after the append is durable on both replicas but
    // before the client sees the ack (§4.2.2) — the canonical ambiguous
    // ack; offset-based dedup must absorb the client's retry.
    "server.append.pre_ack",
    // Stream Server: after the new checkpoint is written but before the
    // superseded WAL/checkpoint epochs are deleted (§5.3).
    "server.checkpoint.mid",
    // Stream Server: between fragment deletions of one GC batch (§5.5)
    // — the SMS must tolerate a partially-applied GC work list.
    "server.gc.mid",
    // SMS: after the metastore transaction creating a streamlet commits
    // but before the Stream Server learns it hosts the streamlet
    // (§5.2) — the metadata exists with no server-side state.
    "sms.open_streamlet.post_txn",
    // Optimizer: after ROS blocks are durable in Colossus but before
    // `commit_conversion` registers them (§6.1) — the blocks must stay
    // invisible garbage, never double-counted.
    "optimizer.convert.pre_commit",
    // Optimizer: same gap on the recluster (baseline-merge) path.
    "optimizer.recluster.pre_commit",
    // Connector: after the Append stage wrote a bundle to its BUFFERED
    // stream but before the shuffle flush message and processed-marking
    // commit (§7.4) — the unflushed tail must stay invisible.
    "connector.state.pre_commit",
    // Metastore: mid-way through appending a commit's WAL frame (§5.1)
    // — a torn prefix of the record lands, the commit is never acked,
    // and recovery must truncate the tail without losing earlier acks.
    // (Direct `crashpoints::check` site: the torn prefix is written
    // manually before the error propagates.)
    "meta.wal.mid_append",
    // Metastore: mid-way through writing a new checkpoint file, before
    // any pointer update — the torn candidate must be ignored and the
    // previously published checkpoint must keep recovery working.
    // (Direct `crashpoints::check` site, as above.)
    "meta.checkpoint.mid_write",
    // Metastore: after the new checkpoint file is fully durable but
    // before the version-pointer CAS publishes it — recovery must keep
    // using the old checkpoint plus a longer WAL tail.
    "meta.checkpoint.pre_publish",
];

/// Number of currently armed points. The disarmed fast path is a single
/// relaxed load of this counter.
static ARMED_POINTS: AtomicUsize = AtomicUsize::new(0);

/// Total fires across all points since process start (survives disarm).
static TOTAL_FIRES: AtomicU64 = AtomicU64::new(0);

/// Trigger state for one armed point.
#[derive(Debug, Default)]
struct ArmState {
    /// Hits remaining before the Nth-hit trigger fires (0 = trigger
    /// disabled or already fired).
    countdown: AtomicU64,
    /// Probability of firing per hit, in permille (0 = disabled).
    permille: AtomicU64,
    /// xorshift* state for the per-mille roll (seeded, deterministic).
    rng: AtomicU64,
    /// Times the point was reached while armed.
    hits: AtomicU64,
    /// Times the point fired while armed.
    fired: AtomicU64,
}

fn plan() -> &'static RwLock<HashMap<String, Arc<ArmState>>> {
    static PLAN: OnceLock<RwLock<HashMap<String, Arc<ArmState>>>> = OnceLock::new();
    PLAN.get_or_init(Default::default)
}

/// Checks a crash point: `Ok(())` to continue, or
/// [`VortexError::SimulatedCrash`] if an armed trigger decided this is
/// the instruction at which the process dies.
///
/// Call sites should use the [`crash_point!`](crate::crash_point) macro,
/// which `?`-propagates the error. With nothing armed anywhere this is
/// one relaxed atomic load.
#[inline]
pub fn check(name: &'static str) -> VortexResult<()> {
    if ARMED_POINTS.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    check_armed(name)
}

#[inline(never)]
fn check_armed(name: &str) -> VortexResult<()> {
    // lint:allow(L011, reached only when a test armed at least one point; production traffic takes the relaxed-load fast path in check)
    let Some(state) = plan().read().get(name).cloned() else {
        return Ok(());
    };
    state.hits.fetch_add(1, Ordering::Relaxed);
    // Fire-on-Nth-hit: decrement the countdown; firing on the hit that
    // takes it to zero. CAS loop so concurrent hits each consume one.
    let mut c = state.countdown.load(Ordering::SeqCst);
    while c > 0 {
        match state
            .countdown
            .compare_exchange(c, c - 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                if c == 1 {
                    return Err(fire(name, &state));
                }
                break;
            }
            Err(cur) => c = cur,
        }
    }
    let pm = state.permille.load(Ordering::Relaxed);
    if pm > 0 && roll_permille(&state.rng) < pm {
        return Err(fire(name, &state));
    }
    Ok(())
}

fn fire(name: &str, state: &ArmState) -> VortexError {
    state.fired.fetch_add(1, Ordering::Relaxed);
    TOTAL_FIRES.fetch_add(1, Ordering::Relaxed);
    // lint:allow(L010, fires only when a test has armed the point; the process is about to simulate death)
    VortexError::SimulatedCrash(name.to_string())
}

/// One deterministic xorshift* step over shared atomic state, yielding a
/// value in `0..1000` (same generator the RPC fault plan uses).
fn roll_permille(state: &AtomicU64) -> u64 {
    let mut cur = state.load(Ordering::Relaxed);
    loop {
        let mut x = cur | 1; // keep the state non-zero
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        match state.compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) % 1000,
            Err(now) => cur = now,
        }
    }
}

/// Scope guard for an armed crash point: dropping it disarms the point,
/// so a test cannot leak an armed trigger into later tests in the same
/// process.
#[must_use = "dropping the guard disarms the crash point"]
#[derive(Debug)]
pub struct CrashGuard {
    name: String,
}

impl CrashGuard {
    /// The armed point's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Times the point was reached while armed.
    pub fn hits(&self) -> u64 {
        stat_of(&self.name, |s| s.hits.load(Ordering::Relaxed))
    }

    /// Times the point fired while armed.
    pub fn fires(&self) -> u64 {
        stat_of(&self.name, |s| s.fired.load(Ordering::Relaxed))
    }
}

impl Drop for CrashGuard {
    fn drop(&mut self) {
        let removed = plan().write().remove(&self.name);
        if removed.is_some() {
            ARMED_POINTS.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn stat_of(name: &str, f: impl Fn(&ArmState) -> u64) -> u64 {
    plan().read().get(name).map(|s| f(s)).unwrap_or(0)
}

fn arm(name: &str, state: ArmState) -> CrashGuard {
    let prev = plan().write().insert(name.to_string(), Arc::new(state));
    if prev.is_none() {
        ARMED_POINTS.fetch_add(1, Ordering::SeqCst);
    }
    CrashGuard {
        name: name.to_string(),
    }
}

/// Arms `name` to fire exactly once, on its `nth` hit (1-based; `nth ==
/// 1` fires on the next hit). Re-arming a point replaces its triggers
/// and counters.
pub fn arm_nth(name: &str, nth: u64) -> CrashGuard {
    arm(
        name,
        ArmState {
            countdown: AtomicU64::new(nth.max(1)),
            ..ArmState::default()
        },
    )
}

/// Arms `name` to fire on `permille`‰ of hits, decided by a
/// deterministic generator seeded with `seed`.
pub fn arm_permille(name: &str, permille: u64, seed: u64) -> CrashGuard {
    arm(
        name,
        ArmState {
            permille: AtomicU64::new(permille.min(1000)),
            // Scramble so adjacent seeds give unrelated sequences (a
            // plain `seed | 1` would alias 2k and 2k+1).
            rng: AtomicU64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            ..ArmState::default()
        },
    )
}

/// Total fires across every point since process start. Soaks assert
/// this moved to prove the crash axis was actually exercised.
pub fn total_fires() -> u64 {
    TOTAL_FIRES.load(Ordering::Relaxed)
}

/// Whether `name` is in the compiled-in [`REGISTRY`].
pub fn is_registered(name: &str) -> bool {
    REGISTRY.contains(&name)
}

/// Annotates a durable-write path with a named crash point.
///
/// Expands to a `?`-propagated [`crashpoints::check`](crate::crashpoints::check),
/// so the enclosing function must return
/// [`VortexResult`](crate::VortexResult). Example:
///
/// ```ignore
/// vortex_common::crash_point!("server.append.pre_ack");
/// ```
///
/// The name must be a string literal that is unique across the
/// repository and listed in
/// [`crashpoints::REGISTRY`](crate::crashpoints::REGISTRY) (lint L007).
#[macro_export]
macro_rules! crash_point {
    ($name:literal) => {
        $crate::crashpoints::check($name)?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test-only names: never used by `crash_point!` call sites, so
    // arming them cannot perturb concurrently running tests.
    #[test]
    fn disarmed_points_never_fire() {
        for _ in 0..1000 {
            assert!(check("test.disarmed.point").is_ok());
        }
    }

    #[test]
    fn nth_hit_fires_exactly_once_on_the_nth() {
        let g = arm_nth("test.nth.point", 3);
        assert!(check("test.nth.point").is_ok());
        assert!(check("test.nth.point").is_ok());
        let err = check("test.nth.point").unwrap_err();
        assert_eq!(
            err,
            VortexError::SimulatedCrash("test.nth.point".to_string())
        );
        // One-shot: later hits pass.
        assert!(check("test.nth.point").is_ok());
        assert_eq!(g.hits(), 4);
        assert_eq!(g.fires(), 1);
    }

    #[test]
    fn permille_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let _g = arm_permille("test.permille.point", 200, seed);
            (0..200)
                .map(|_| check("test.permille.point").is_err())
                .collect::<Vec<bool>>()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must give the same firing sequence");
        assert!(a.iter().any(|f| *f), "200‰ over 200 hits should fire");
        assert!(!a.iter().all(|f| *f), "200‰ must not fire every hit");
        let c = run(43);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _g = arm_nth("test.guard.point", 1);
            assert!(check("test.guard.point").is_err());
        }
        assert!(check("test.guard.point").is_ok());
    }

    #[test]
    fn registry_names_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for name in REGISTRY {
            assert!(seen.insert(name), "duplicate registry entry {name}");
            assert!(
                name.split('.').count() >= 2
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "bad crash point name {name}"
            );
        }
        assert!(is_registered("server.append.pre_ack"));
        assert!(!is_registered("test.nth.point"));
    }

    #[test]
    fn macro_propagates_the_error() {
        fn site() -> VortexResult<u32> {
            crate::crash_point!("test.macro.point");
            Ok(7)
        }
        assert_eq!(site().unwrap(), 7);
        let _g = arm_nth("test.macro.point", 1);
        assert!(matches!(site(), Err(VortexError::SimulatedCrash(_))));
        assert_eq!(site().unwrap(), 7);
    }
}
