//! Deletion masks: sorted row-ranges marked deleted by DML (§7.3).
//!
//! "Vortex allows a range of rows in a Fragment or Streamlet to be marked
//! as deleted. A DELETE statement first determines the candidate rows ...
//! and at commit time persists a deletion mask to the Streamlet or
//! Fragment metadata." Readers apply the mask to filter out deleted rows;
//! the Storage Optimizer carries masks across WOS→ROS conversion.
//!
//! Represented as a sorted, coalesced list of half-open `[start, end)`
//! row-offset ranges — the natural shape for both "delete these rows" and
//! "mark the whole streamlet tail deleted" (§7.3).

use crate::codec::{get_uvarint, put_uvarint};
use crate::error::{VortexError, VortexResult};

/// A set of deleted row offsets, stored as sorted disjoint ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeletionMask {
    /// Sorted, disjoint, coalesced half-open ranges.
    ranges: Vec<(u64, u64)>,
}

impl DeletionMask {
    /// An empty mask (nothing deleted).
    pub fn new() -> Self {
        Self::default()
    }

    /// A mask deleting a single half-open range.
    pub fn from_range(start: u64, end: u64) -> Self {
        let mut m = Self::new();
        m.delete_range(start, end);
        m
    }

    /// Marks `[start, end)` deleted (merging with existing ranges).
    pub fn delete_range(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find insertion window of ranges overlapping or adjacent.
        let mut new_start = start;
        let mut new_end = end;
        let mut i = 0;
        let mut remove_from = None;
        let mut remove_to = 0;
        while i < self.ranges.len() {
            let (s, e) = self.ranges[i];
            if e < start {
                i += 1;
                continue;
            }
            if s > end {
                break;
            }
            // Overlapping or adjacent: absorb.
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            if remove_from.is_none() {
                remove_from = Some(i);
            }
            remove_to = i + 1;
            i += 1;
        }
        match remove_from {
            Some(from) => {
                self.ranges.drain(from..remove_to);
                self.ranges.insert(from, (new_start, new_end));
            }
            None => {
                let pos = self.ranges.partition_point(|&(s, _)| s < new_start);
                self.ranges.insert(pos, (new_start, new_end));
            }
        }
    }

    /// Marks a single row deleted.
    pub fn delete_row(&mut self, row: u64) {
        self.delete_range(row, row + 1);
    }

    /// Whether `row` is deleted.
    pub fn contains(&self, row: u64) -> bool {
        let idx = self.ranges.partition_point(|&(_, e)| e <= row);
        self.ranges
            .get(idx)
            .map(|&(s, _)| s <= row)
            .unwrap_or(false)
    }

    /// Number of deleted rows.
    pub fn deleted_count(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Whether nothing is deleted.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Merges another mask into this one.
    pub fn union(&mut self, other: &DeletionMask) {
        for &(s, e) in &other.ranges {
            self.delete_range(s, e);
        }
    }

    /// The underlying sorted ranges.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Restricts the mask to `[start, end)` and rebases offsets to start
    /// at zero — used when a streamlet-tail mask is mapped down onto the
    /// fragments later reported by heartbeat (§7.3).
    pub fn slice_rebased(&self, start: u64, end: u64) -> DeletionMask {
        let mut out = DeletionMask::new();
        for &(s, e) in &self.ranges {
            let s2 = s.max(start);
            let e2 = e.min(end);
            if s2 < e2 {
                out.delete_range(s2 - start, e2 - start);
            }
        }
        out
    }

    /// Binary serialization: count then delta-encoded range pairs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_uvarint(&mut out, self.ranges.len() as u64);
        let mut prev = 0u64;
        for &(s, e) in &self.ranges {
            put_uvarint(&mut out, s - prev);
            put_uvarint(&mut out, e - s);
            prev = e;
        }
        out
    }

    /// Deserializes from [`DeletionMask::to_bytes`] output.
    pub fn from_bytes(buf: &[u8]) -> VortexResult<Self> {
        let mut pos = 0usize;
        let n = get_uvarint(buf, &mut pos)? as usize;
        if n > buf.len() {
            return Err(VortexError::Decode(format!("mask declares {n} ranges")));
        }
        let mut ranges = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            let gap = get_uvarint(buf, &mut pos)?;
            let len = get_uvarint(buf, &mut pos)?;
            if len == 0 {
                return Err(VortexError::Decode("mask range of length 0".into()));
            }
            let s = prev + gap;
            let e = s + len;
            ranges.push((s, e));
            prev = e;
        }
        Ok(DeletionMask { ranges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_contains() {
        let mut m = DeletionMask::new();
        m.delete_range(10, 20);
        assert!(!m.contains(9));
        assert!(m.contains(10));
        assert!(m.contains(19));
        assert!(!m.contains(20));
        assert_eq!(m.deleted_count(), 10);
    }

    #[test]
    fn overlapping_ranges_coalesce() {
        let mut m = DeletionMask::new();
        m.delete_range(10, 20);
        m.delete_range(15, 30);
        m.delete_range(5, 12);
        assert_eq!(m.ranges(), &[(5, 30)]);
        assert_eq!(m.deleted_count(), 25);
    }

    #[test]
    fn adjacent_ranges_coalesce() {
        let mut m = DeletionMask::new();
        m.delete_range(0, 10);
        m.delete_range(10, 20);
        assert_eq!(m.ranges(), &[(0, 20)]);
    }

    #[test]
    fn disjoint_ranges_stay_separate() {
        let mut m = DeletionMask::new();
        m.delete_range(30, 40);
        m.delete_range(0, 10);
        m.delete_range(50, 60);
        assert_eq!(m.ranges(), &[(0, 10), (30, 40), (50, 60)]);
        assert!(m.contains(35));
        assert!(!m.contains(45));
    }

    #[test]
    fn middle_insert_bridges_neighbors() {
        let mut m = DeletionMask::new();
        m.delete_range(0, 10);
        m.delete_range(20, 30);
        m.delete_range(10, 20);
        assert_eq!(m.ranges(), &[(0, 30)]);
    }

    #[test]
    fn empty_and_degenerate() {
        let mut m = DeletionMask::new();
        assert!(m.is_empty());
        m.delete_range(5, 5);
        assert!(m.is_empty());
        m.delete_row(7);
        assert_eq!(m.ranges(), &[(7, 8)]);
    }

    #[test]
    fn union_merges() {
        let mut a = DeletionMask::from_range(0, 5);
        let b = DeletionMask::from_range(3, 10);
        a.union(&b);
        assert_eq!(a.ranges(), &[(0, 10)]);
    }

    #[test]
    fn slice_rebased_maps_tail_mask_to_fragment() {
        // Streamlet-level mask deleting rows [100, 250); a fragment covers
        // streamlet rows [200, 300) → fragment-local rows [0, 50) deleted.
        let m = DeletionMask::from_range(100, 250);
        let frag = m.slice_rebased(200, 300);
        assert_eq!(frag.ranges(), &[(0, 50)]);
        // A fragment fully inside the deleted range.
        let all = m.slice_rebased(120, 180);
        assert_eq!(all.ranges(), &[(0, 60)]);
        // A fragment fully outside.
        assert!(m.slice_rebased(300, 400).is_empty());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut m = DeletionMask::new();
        m.delete_range(0, 1);
        m.delete_range(1_000_000, 2_000_000);
        m.delete_range(5, 10);
        let bytes = m.to_bytes();
        assert_eq!(DeletionMask::from_bytes(&bytes).unwrap(), m);
        let empty = DeletionMask::new();
        assert_eq!(DeletionMask::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn corrupt_serialization_rejected() {
        assert!(DeletionMask::from_bytes(&[255, 255]).is_err());
        let m = DeletionMask::from_range(1, 5);
        let bytes = m.to_bytes();
        assert!(DeletionMask::from_bytes(&bytes[..1]).is_err());
    }

    #[test]
    fn dense_random_ops_match_reference() {
        // Compare against a naive HashSet model.
        use std::collections::HashSet;
        let mut model: HashSet<u64> = HashSet::new();
        let mut mask = DeletionMask::new();
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..500 {
            let s = next() % 200;
            let len = next() % 20 + 1;
            mask.delete_range(s, s + len);
            for r in s..s + len {
                model.insert(r);
            }
        }
        for r in 0..250 {
            assert_eq!(mask.contains(r), model.contains(&r), "row {r}");
        }
        assert_eq!(mask.deleted_count() as usize, model.len());
        // Ranges must be sorted, disjoint, non-adjacent.
        for w in mask.ranges().windows(2) {
            assert!(w[0].1 < w[1].0);
        }
    }
}
