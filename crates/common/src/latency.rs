//! Virtual latency models for the simulated I/O substrate.
//!
//! The paper's evaluation (Figures 7 and 8) plots append-latency
//! percentiles from production: p50 ≈ 10 ms and p99 ≈ 30 ms, flat across
//! table throughputs. Reproducing the *shape* of those figures does not
//! require Google's hardware — it requires (a) a heavy-tailed per-cluster
//! write-latency distribution, (b) the dual-cluster synchronous write
//! (latency = max of two samples, §5.6), and (c) single-writer queueing on
//! each log file (pipelined appends serialize at the file).
//!
//! This module provides those three pieces: a [`LogNormal`] sampler
//! parameterized by (median, p99), a [`WriteProfile`] combining fixed RPC
//! overhead + bandwidth + tail, and a [`ResourceTimeline`] that turns
//! service times into completion times under FIFO queueing on virtual
//! time. Nothing here sleeps: two simulated weeks of traffic run in
//! milliseconds of wall time.

use rand::Rng;

use crate::truetime::Timestamp;

/// A lognormal distribution over microseconds, parameterized by quantiles
/// rather than (μ, σ) so profiles read like SLOs.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

/// z-value of the 99th percentile of the standard normal.
const Z99: f64 = 2.3263478740408408;

impl LogNormal {
    /// Builds the distribution whose median and 99th percentile are the
    /// given values (both in microseconds, p99 must exceed median).
    pub fn from_median_p99(median_us: f64, p99_us: f64) -> Self {
        assert!(
            median_us > 0.0 && p99_us > median_us,
            "need p99 > median > 0"
        );
        let mu = median_us.ln();
        let sigma = (p99_us / median_us).ln() / Z99;
        LogNormal { mu, sigma }
    }

    /// Samples one value in microseconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Box–Muller transform; one normal per call keeps this allocation-
        // free and dependency-free.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp().max(1.0) as u64
    }

    /// The distribution's median in microseconds.
    pub fn median_us(&self) -> f64 {
        self.mu.exp()
    }
}

/// Latency profile for one write (or read) against a storage cluster.
#[derive(Debug, Clone, Copy)]
pub struct WriteProfile {
    /// Fixed per-request overhead (RPC dispatch, queue hop), microseconds.
    pub overhead_us: u64,
    /// Transfer cost per mebibyte, microseconds (inverse bandwidth).
    pub per_mib_us: u64,
    /// Heavy-tailed service component.
    pub tail: LogNormal,
}

impl WriteProfile {
    /// The profile used to reproduce Figures 7–8: calibrated so that the
    /// *max of two* independent samples (the dual-cluster synchronous
    /// write) has p50 ≈ 10 ms and p99 ≈ 30 ms for small batches.
    pub fn paper_colossus() -> Self {
        WriteProfile {
            overhead_us: 600,
            // ~350 MiB/s effective per-stream disk bandwidth.
            per_mib_us: 2_900,
            tail: LogNormal::from_median_p99(7_000.0, 21_000.0),
        }
    }

    /// A near-instant profile for functional tests (no queueing effects).
    pub fn instant() -> Self {
        WriteProfile {
            overhead_us: 1,
            per_mib_us: 0,
            tail: LogNormal::from_median_p99(1.0, 2.0),
        }
    }

    /// Samples the service time for a request of `bytes` payload.
    pub fn sample_us<R: Rng + ?Sized>(&self, bytes: usize, rng: &mut R) -> u64 {
        let transfer = (bytes as u64 * self.per_mib_us) >> 20;
        self.overhead_us + transfer + self.tail.sample(rng)
    }
}

/// FIFO queueing on a single resource (e.g. one log file's writer, one
/// connection) over virtual time.
///
/// `submit(start, service)` returns the completion time assuming the
/// request cannot begin before `start` nor before the previous request on
/// this resource finished — exactly the pipelining rule for appends to a
/// Streamlet (§4.2.2: pipelined, but applied in offset order).
#[derive(Debug, Clone, Default)]
pub struct ResourceTimeline {
    busy_until: Timestamp,
}

impl ResourceTimeline {
    /// A timeline that is idle until the first submission.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a request; returns its completion timestamp.
    pub fn submit(&mut self, start: Timestamp, service_us: u64) -> Timestamp {
        let begin = start.max(self.busy_until);
        let done = begin.plus_micros(service_us);
        self.busy_until = done;
        done
    }

    /// When the resource becomes free.
    pub fn busy_until(&self) -> Timestamp {
        self.busy_until
    }
}

/// Percentile summary of a latency sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 50th percentile (median), microseconds.
    pub p50: u64,
    /// 90th percentile, microseconds.
    pub p90: u64,
    /// 95th percentile, microseconds.
    pub p95: u64,
    /// 99th percentile, microseconds.
    pub p99: u64,
    /// Maximum observed, microseconds.
    pub max: u64,
    /// Number of samples.
    pub count: usize,
}

impl Percentiles {
    /// Computes percentiles (nearest-rank) from unsorted samples.
    /// Returns zeros for an empty input.
    ///
    /// Nearest-rank in exact integer arithmetic: the q-th percentile of
    /// n samples is the value at 1-based rank `ceil(n*q/100)`, clamped
    /// to `[1, n]`. The former float formulation (`(n as f64 * q).ceil()`)
    /// gave the same ranks for practical n but depended on f64 rounding
    /// near exact multiples; the integer form is audit-proof at the
    /// boundaries (n = 1, n = 2, rank exactly on a sample).
    pub fn compute(samples: &mut [u64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles {
                p50: 0,
                p90: 0,
                p95: 0,
                p99: 0,
                max: 0,
                count: 0,
            };
        }
        samples.sort_unstable();
        let n = samples.len();
        let at =
            |pct: u64| samples[((n as u64 * pct).div_ceil(100).clamp(1, n as u64) - 1) as usize];
        Percentiles {
            p50: at(50),
            p90: at(90),
            p95: at(95),
            p99: at(99),
            max: samples[n - 1],
            count: n,
        }
    }
}

impl std::fmt::Display for Percentiles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50={:.1}ms p90={:.1}ms p95={:.1}ms p99={:.1}ms (n={})",
            self.p50 as f64 / 1000.0,
            self.p90 as f64 / 1000.0,
            self.p95 as f64 / 1000.0,
            self.p99 as f64 / 1000.0,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_hits_requested_quantiles() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = LogNormal::from_median_p99(10_000.0, 30_000.0);
        let mut samples: Vec<u64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let p = Percentiles::compute(&mut samples);
        let p50 = p.p50 as f64;
        let p99 = p.p99 as f64;
        assert!((p50 - 10_000.0).abs() / 10_000.0 < 0.05, "p50={p50}");
        assert!((p99 - 30_000.0).abs() / 30_000.0 < 0.10, "p99={p99}");
    }

    #[test]
    fn paper_profile_dual_write_matches_figure7() {
        // max of two samples ≈ the dual-cluster synchronous write.
        let mut rng = StdRng::seed_from_u64(42);
        let prof = WriteProfile::paper_colossus();
        let mut samples: Vec<u64> = (0..100_000)
            .map(|_| {
                prof.sample_us(4096, &mut rng)
                    .max(prof.sample_us(4096, &mut rng))
            })
            .collect();
        let p = Percentiles::compute(&mut samples);
        assert!(
            (8_000..13_000).contains(&p.p50),
            "p50 {}us should be ~10ms",
            p.p50
        );
        assert!(
            (22_000..38_000).contains(&p.p99),
            "p99 {}us should be ~30ms",
            p.p99
        );
    }

    #[test]
    fn bigger_payload_costs_more() {
        let mut rng = StdRng::seed_from_u64(1);
        let prof = WriteProfile::paper_colossus();
        let small: u64 = (0..1000).map(|_| prof.sample_us(1024, &mut rng)).sum();
        let big: u64 = (0..1000).map(|_| prof.sample_us(8 << 20, &mut rng)).sum();
        assert!(big > small + 1000 * 10_000, "8MiB must add >=10ms transfer");
    }

    #[test]
    fn timeline_serializes_overlapping_requests() {
        let mut tl = ResourceTimeline::new();
        let a = tl.submit(Timestamp(0), 100);
        assert_eq!(a, Timestamp(100));
        // Submitted at t=10 but the resource is busy until 100.
        let b = tl.submit(Timestamp(10), 50);
        assert_eq!(b, Timestamp(150));
        // Submitted after idle gap.
        let c = tl.submit(Timestamp(1_000), 5);
        assert_eq!(c, Timestamp(1_005));
        assert_eq!(tl.busy_until(), Timestamp(1_005));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        let p = Percentiles::compute(&mut s);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p90, 90);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
        let mut empty: Vec<u64> = vec![];
        assert_eq!(Percentiles::compute(&mut empty).count, 0);
        let mut one = vec![7u64];
        let p1 = Percentiles::compute(&mut one);
        assert_eq!((p1.p50, p1.p99), (7, 7));
    }

    #[test]
    fn percentiles_boundary_semantics() {
        // n = 1: every percentile is the single sample.
        let mut one = vec![13u64];
        let p = Percentiles::compute(&mut one);
        assert_eq!(
            (p.p50, p.p90, p.p95, p.p99, p.max, p.count),
            (13, 13, 13, 13, 13, 1)
        );
        // n = 2: nearest-rank puts p50 on the FIRST sample
        // (rank = ceil(2*50/100) = 1) and p90/p99 on the second.
        let mut two = vec![20u64, 10];
        let p = Percentiles::compute(&mut two);
        assert_eq!((p.p50, p.p90, p.p99, p.max), (10, 20, 20, 20));
        // n = 3: p50 is the middle sample (rank 2).
        let mut three = vec![30u64, 10, 20];
        let p = Percentiles::compute(&mut three);
        assert_eq!((p.p50, p.p99), (20, 30));
    }

    #[test]
    fn percentiles_nearest_rank_property() {
        // Property sweep: for samples 1..=n (value == rank), the q-th
        // percentile must be exactly ceil(n*q/100), every percentile is
        // an actual sample, and percentiles are monotone in q. This pins
        // the nearest-rank definition across every small n and across
        // the exact-multiple boundaries (n*q a multiple of 100) where a
        // float ceil could round either way.
        for n in 1..=500u64 {
            let mut s: Vec<u64> = (1..=n).collect();
            let p = Percentiles::compute(&mut s);
            let expect = |pct: u64| (n * pct).div_ceil(100).clamp(1, n);
            assert_eq!(p.p50, expect(50), "n={n}");
            assert_eq!(p.p90, expect(90), "n={n}");
            assert_eq!(p.p95, expect(95), "n={n}");
            assert_eq!(p.p99, expect(99), "n={n}");
            assert_eq!(p.max, n);
            assert!(p.p50 <= p.p90 && p.p90 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max);
            for v in [p.p50, p.p90, p.p95, p.p99] {
                assert!((1..=n).contains(&v), "percentile {v} not a sample, n={n}");
            }
        }
    }

    #[test]
    fn display_formats_ms() {
        let mut s = vec![10_000u64, 20_000, 30_000];
        let p = Percentiles::compute(&mut s);
        let out = p.to_string();
        assert!(out.contains("p50=20.0ms"), "{out}");
    }
}
