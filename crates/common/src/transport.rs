//! Unary vs bi-directional connections (§5.4.2).
//!
//! "We observe that only 10% of the Streams hold 90% of the data ... the
//! Vortex client library can adaptively switch between using a single
//! directional (unary) short-lived connection and a bi-directional
//! long-lived connection."
//!
//! In this in-process reproduction there is no real gRPC; what matters
//! for the paper's claim (and bench C3) is the *cost model*:
//!
//! - **unary**: per-request connection-pool overhead (occasionally a
//!   full connection setup on a pool miss), no pipelining, near-zero
//!   standing memory;
//! - **bi-di**: small per-request CPU cost, pipelining allowed, but a
//!   standing memory footprint while the connection is open and
//!   per-request tracking state.
//!
//! [`AdaptiveTransport`] watches the recent request rate and switches
//! modes, accumulating the CPU/memory cost ledger the bench reports.

use std::collections::VecDeque;

use crate::truetime::Timestamp;

/// Which connection type a request used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Short-lived request/response connection (pooled).
    Unary,
    /// Long-lived streaming connection with pipelining.
    Bidi,
}

/// Cost constants of the transport model (microseconds / bytes). Values
/// are representative of gRPC-style stacks; benches only depend on their
/// *relative* magnitudes.
#[derive(Debug, Clone, Copy)]
pub struct TransportCosts {
    /// CPU cost of a unary request hitting a pooled connection.
    pub unary_pooled_cpu_us: u64,
    /// CPU cost of a unary request that must establish a connection.
    pub unary_setup_cpu_us: u64,
    /// Probability (×1000) that a unary request misses the pool.
    pub unary_pool_miss_permille: u64,
    /// CPU cost of a request on an established bi-di connection.
    pub bidi_request_cpu_us: u64,
    /// CPU cost of establishing the bi-di connection.
    pub bidi_setup_cpu_us: u64,
    /// Standing memory of an open bi-di connection.
    pub bidi_standing_bytes: u64,
    /// Per-in-flight-request tracking memory on a bi-di connection.
    pub bidi_tracking_bytes: u64,
}

impl Default for TransportCosts {
    fn default() -> Self {
        TransportCosts {
            unary_pooled_cpu_us: 25,
            unary_setup_cpu_us: 400,
            unary_pool_miss_permille: 100, // 10% pool misses
            bidi_request_cpu_us: 5,
            bidi_setup_cpu_us: 600,
            bidi_standing_bytes: 512 * 1024,
            bidi_tracking_bytes: 4 * 1024,
        }
    }
}

/// Switching policy for [`AdaptiveTransport`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePolicy {
    /// Switch up to bi-di when at least this many requests landed within
    /// [`AdaptivePolicy::window_micros`].
    pub upgrade_requests: usize,
    /// Drop back to unary after this much idle time.
    pub idle_downgrade_micros: u64,
    /// Rate-measurement window.
    pub window_micros: u64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            upgrade_requests: 8,
            idle_downgrade_micros: 5_000_000,
            window_micros: 1_000_000,
        }
    }
}

/// Accumulated transport costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportLedger {
    /// Total CPU microseconds spent on transport work.
    pub cpu_us: u64,
    /// Peak standing memory attributable to the connection.
    pub peak_memory_bytes: u64,
    /// Requests sent over a unary connection.
    pub unary_requests: u64,
    /// Requests sent over a bi-di connection.
    pub bidi_requests: u64,
    /// Number of mode switches.
    pub switches: u64,
}

/// A connection that adaptively chooses between unary and bi-di modes.
#[derive(Debug)]
pub struct AdaptiveTransport {
    costs: TransportCosts,
    policy: AdaptivePolicy,
    kind: TransportKind,
    recent: VecDeque<Timestamp>,
    last_request: Timestamp,
    ledger: TransportLedger,
    in_flight: u64,
    rng_state: u64,
}

impl AdaptiveTransport {
    /// A transport starting in unary mode.
    pub fn new(costs: TransportCosts, policy: AdaptivePolicy) -> Self {
        Self {
            costs,
            policy,
            kind: TransportKind::Unary,
            recent: VecDeque::new(),
            last_request: Timestamp::MIN,
            ledger: TransportLedger::default(),
            in_flight: 0,
            rng_state: 0x9E3779B97F4A7C15,
        }
    }

    /// A transport with defaults.
    pub fn with_defaults() -> Self {
        Self::new(TransportCosts::default(), AdaptivePolicy::default())
    }

    /// Current mode.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Accumulated cost ledger.
    pub fn ledger(&self) -> TransportLedger {
        self.ledger
    }

    /// Whether pipelined (no-wait) appends are possible right now.
    pub fn supports_pipelining(&self) -> bool {
        self.kind == TransportKind::Bidi
    }

    fn next_rand_permille(&mut self) -> u64 {
        // xorshift*: deterministic, cheap, good enough for pool-miss
        // sampling.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 33) % 1000
    }

    /// Records one request at virtual time `now`; returns the CPU cost
    /// charged and possibly switches modes.
    pub fn on_request(&mut self, now: Timestamp) -> u64 {
        // Idle downgrade first (a long gap tears down the bi-di conn).
        if self.kind == TransportKind::Bidi
            && self.last_request != Timestamp::MIN
            && now.micros().saturating_sub(self.last_request.micros())
                >= self.policy.idle_downgrade_micros
        {
            self.kind = TransportKind::Unary;
            self.ledger.switches += 1;
            self.recent.clear();
        }
        self.last_request = now;
        self.recent.push_back(now);
        while let Some(front) = self.recent.front() {
            if now.micros().saturating_sub(front.micros()) > self.policy.window_micros {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        let mut cpu = 0u64;
        // Upgrade when the window is hot.
        if self.kind == TransportKind::Unary && self.recent.len() >= self.policy.upgrade_requests {
            self.kind = TransportKind::Bidi;
            self.ledger.switches += 1;
            cpu += self.costs.bidi_setup_cpu_us;
        }
        match self.kind {
            TransportKind::Unary => {
                self.ledger.unary_requests += 1;
                let miss = self.next_rand_permille() < self.costs.unary_pool_miss_permille;
                cpu += if miss {
                    self.costs.unary_setup_cpu_us
                } else {
                    self.costs.unary_pooled_cpu_us
                };
            }
            TransportKind::Bidi => {
                self.ledger.bidi_requests += 1;
                cpu += self.costs.bidi_request_cpu_us;
                self.in_flight += 1;
                let mem = self.costs.bidi_standing_bytes
                    + self.in_flight * self.costs.bidi_tracking_bytes;
                self.ledger.peak_memory_bytes = self.ledger.peak_memory_bytes.max(mem);
            }
        }
        self.ledger.cpu_us += cpu;
        cpu
    }

    /// Records a response completing (releases bi-di tracking state).
    ///
    /// Flow-control release discipline: every `on_request` must be paired
    /// with exactly one `on_response` on *every* exit path — success,
    /// callee error, injected fault, lost reply — or the in-flight window
    /// leaks and a burst of failures permanently exhausts the budget.
    /// `RpcChannel::call` owns the pairing; callers that drive the
    /// transport directly (the thick client's append loop) must uphold it
    /// themselves, including on early-return `?` paths.
    pub fn on_response(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Requests currently in flight (bi-di tracking window). Zero
    /// whenever no call is executing — see the release discipline on
    /// [`AdaptiveTransport::on_response`].
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Timestamp {
        Timestamp(us)
    }

    #[test]
    fn sparse_traffic_stays_unary() {
        let mut tr = AdaptiveTransport::with_defaults();
        for i in 0..20 {
            tr.on_request(t(i * 10_000_000)); // one every 10s
            tr.on_response();
        }
        assert_eq!(tr.kind(), TransportKind::Unary);
        assert_eq!(tr.ledger().bidi_requests, 0);
        assert_eq!(tr.ledger().unary_requests, 20);
        assert_eq!(tr.ledger().peak_memory_bytes, 0, "no standing memory");
    }

    #[test]
    fn hot_traffic_upgrades_to_bidi() {
        let mut tr = AdaptiveTransport::with_defaults();
        for i in 0..50 {
            tr.on_request(t(1_000_000 + i * 1_000)); // 1k req/s
            tr.on_response();
        }
        assert_eq!(tr.kind(), TransportKind::Bidi);
        assert!(tr.ledger().bidi_requests > 30);
        assert!(tr.ledger().peak_memory_bytes >= 512 * 1024);
    }

    #[test]
    fn idle_downgrades_back_to_unary() {
        let mut tr = AdaptiveTransport::with_defaults();
        for i in 0..20 {
            tr.on_request(t(1_000_000 + i * 1_000));
            tr.on_response();
        }
        assert_eq!(tr.kind(), TransportKind::Bidi);
        tr.on_request(t(100_000_000)); // long idle gap
        assert_eq!(tr.kind(), TransportKind::Unary);
        assert!(tr.ledger().switches >= 2);
    }

    #[test]
    fn bidi_is_cheaper_per_request_at_high_rate() {
        // The §5.4.2 claim: persistent connections are CPU-efficient for
        // high request volumes; unary avoids standing memory for sparse
        // writers.
        let costs = TransportCosts::default();
        let mut hot_adaptive = AdaptiveTransport::new(costs, AdaptivePolicy::default());
        let mut hot_unary_only = AdaptiveTransport::new(
            costs,
            AdaptivePolicy {
                upgrade_requests: usize::MAX, // never upgrade
                ..AdaptivePolicy::default()
            },
        );
        for i in 0..10_000 {
            hot_adaptive.on_request(t(1_000_000 + i * 100));
            hot_adaptive.on_response();
            hot_unary_only.on_request(t(1_000_000 + i * 100));
            hot_unary_only.on_response();
        }
        assert!(
            hot_adaptive.ledger().cpu_us * 2 < hot_unary_only.ledger().cpu_us,
            "adaptive {} vs unary-only {}",
            hot_adaptive.ledger().cpu_us,
            hot_unary_only.ledger().cpu_us
        );
    }

    #[test]
    fn pipelining_only_on_bidi() {
        let mut tr = AdaptiveTransport::with_defaults();
        assert!(!tr.supports_pipelining());
        for i in 0..20 {
            tr.on_request(t(1_000_000 + i * 1_000));
        }
        assert!(tr.supports_pipelining());
        // In-flight tracking grows memory.
        let mem_many_inflight = tr.ledger().peak_memory_bytes;
        assert!(mem_many_inflight > 512 * 1024 + 10 * 4 * 1024);
    }
}
