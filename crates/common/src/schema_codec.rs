//! Binary serialization for [`Schema`] — schemas live in the metadata
//! store ("the table's logical metadata includes the table schema",
//! §5.2) and are fetched by clients on schema-version mismatches
//! (§5.4.1).

use crate::codec::{get_uvarint, put_uvarint};
use crate::error::{VortexError, VortexResult};
use crate::schema::{Field, FieldMode, FieldType, PartitionSpec, PartitionTransform, Schema};

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> VortexResult<String> {
    let n = get_uvarint(buf, pos)? as usize;
    if *pos + n > buf.len() {
        return Err(VortexError::Decode("string truncated".into()));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + n])
        .map_err(|e| VortexError::Decode(format!("bad utf8: {e}")))?
        .to_string();
    *pos += n;
    Ok(s)
}

fn put_ftype(out: &mut Vec<u8>, t: &FieldType) {
    let tag: u8 = match t {
        FieldType::Bool => 0,
        FieldType::Int64 => 1,
        FieldType::Float64 => 2,
        FieldType::String => 3,
        FieldType::Bytes => 4,
        FieldType::Timestamp => 5,
        FieldType::Date => 6,
        FieldType::Numeric => 7,
        FieldType::Json => 8,
        FieldType::Struct(_) => 9,
    };
    out.push(tag);
    if let FieldType::Struct(fields) = t {
        put_uvarint(out, fields.len() as u64);
        for f in fields {
            put_field(out, f);
        }
    }
}

fn get_ftype(buf: &[u8], pos: &mut usize) -> VortexResult<FieldType> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| VortexError::Decode("ftype truncated".into()))?;
    *pos += 1;
    Ok(match tag {
        0 => FieldType::Bool,
        1 => FieldType::Int64,
        2 => FieldType::Float64,
        3 => FieldType::String,
        4 => FieldType::Bytes,
        5 => FieldType::Timestamp,
        6 => FieldType::Date,
        7 => FieldType::Numeric,
        8 => FieldType::Json,
        9 => {
            let n = get_uvarint(buf, pos)? as usize;
            if n > buf.len() {
                return Err(VortexError::Decode("struct field count".into()));
            }
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                fields.push(get_field(buf, pos)?);
            }
            FieldType::Struct(fields)
        }
        other => return Err(VortexError::Decode(format!("bad ftype tag {other}"))),
    })
}

fn put_field(out: &mut Vec<u8>, f: &Field) {
    put_str(out, &f.name);
    out.push(match f.mode {
        FieldMode::Nullable => 0,
        FieldMode::Required => 1,
        FieldMode::Repeated => 2,
    });
    put_ftype(out, &f.ftype);
}

fn get_field(buf: &[u8], pos: &mut usize) -> VortexResult<Field> {
    let name = get_str(buf, pos)?;
    let mode = match buf.get(*pos) {
        Some(0) => FieldMode::Nullable,
        Some(1) => FieldMode::Required,
        Some(2) => FieldMode::Repeated,
        other => return Err(VortexError::Decode(format!("bad field mode {other:?}"))),
    };
    *pos += 1;
    let ftype = get_ftype(buf, pos)?;
    Ok(Field { name, ftype, mode })
}

/// Serializes a schema.
pub fn schema_to_bytes(s: &Schema) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&s.version.to_le_bytes());
    put_uvarint(&mut out, s.fields.len() as u64);
    for f in &s.fields {
        put_field(&mut out, f);
    }
    put_uvarint(&mut out, s.primary_key.len() as u64);
    for k in &s.primary_key {
        put_str(&mut out, k);
    }
    match &s.partition {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_str(&mut out, &p.column);
            out.push(match p.transform {
                PartitionTransform::Identity => 0,
                PartitionTransform::Date => 1,
            });
        }
    }
    put_uvarint(&mut out, s.clustering.len() as u64);
    for c in &s.clustering {
        put_str(&mut out, c);
    }
    out
}

/// Deserializes a schema from [`schema_to_bytes`] output.
pub fn schema_from_bytes(buf: &[u8]) -> VortexResult<Schema> {
    let mut pos = 0usize;
    if buf.len() < 4 {
        return Err(VortexError::Decode("schema truncated".into()));
    }
    let version = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    pos += 4;
    let nfields = get_uvarint(buf, &mut pos)? as usize;
    if nfields > buf.len() {
        return Err(VortexError::Decode("schema field count".into()));
    }
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        fields.push(get_field(buf, &mut pos)?);
    }
    let npk = get_uvarint(buf, &mut pos)? as usize;
    if npk > buf.len() {
        return Err(VortexError::Decode("schema pk count".into()));
    }
    let mut primary_key = Vec::with_capacity(npk);
    for _ in 0..npk {
        primary_key.push(get_str(buf, &mut pos)?);
    }
    let partition = match buf.get(pos) {
        Some(0) => {
            pos += 1;
            None
        }
        Some(1) => {
            pos += 1;
            let column = get_str(buf, &mut pos)?;
            let transform = match buf.get(pos) {
                Some(0) => PartitionTransform::Identity,
                Some(1) => PartitionTransform::Date,
                other => return Err(VortexError::Decode(format!("bad transform {other:?}"))),
            };
            pos += 1;
            Some(PartitionSpec { column, transform })
        }
        other => return Err(VortexError::Decode(format!("bad partition flag {other:?}"))),
    };
    let ncl = get_uvarint(buf, &mut pos)? as usize;
    if ncl > buf.len() {
        return Err(VortexError::Decode("schema clustering count".into()));
    }
    let mut clustering = Vec::with_capacity(ncl);
    for _ in 0..ncl {
        clustering.push(get_str(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(VortexError::Decode(format!(
            "schema has {} trailing bytes",
            buf.len() - pos
        )));
    }
    Ok(Schema {
        fields,
        version,
        primary_key,
        partition,
        clustering,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::sales_schema;

    #[test]
    fn sales_schema_roundtrip() {
        let s = sales_schema();
        let bytes = schema_to_bytes(&s);
        assert_eq!(schema_from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn minimal_schema_roundtrip() {
        let s = Schema::new(vec![Field::nullable("x", FieldType::Json)]);
        assert_eq!(schema_from_bytes(&schema_to_bytes(&s)).unwrap(), s);
    }

    #[test]
    fn deeply_nested_struct_roundtrip() {
        let inner = FieldType::Struct(vec![Field::repeated(
            "leaf",
            FieldType::Struct(vec![Field::required("v", FieldType::Bytes)]),
        )]);
        let s = Schema::new(vec![Field::repeated("outer", inner)])
            .with_primary_key(&["outer"])
            .with_clustering(&["outer"]);
        assert_eq!(schema_from_bytes(&schema_to_bytes(&s)).unwrap(), s);
    }

    #[test]
    fn evolved_schema_keeps_version() {
        let s = sales_schema()
            .evolve_add_column(Field::nullable("note", FieldType::String))
            .unwrap();
        let back = schema_from_bytes(&schema_to_bytes(&s)).unwrap();
        assert_eq!(back.version, 2);
        assert_eq!(back.fields.len(), 7);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = schema_to_bytes(&sales_schema());
        for cut in 0..bytes.len() {
            assert!(schema_from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = schema_to_bytes(&sales_schema());
        bytes.push(7);
        assert!(schema_from_bytes(&bytes).is_err());
    }
}
