//! Unified observability: one pane of glass for the whole engine.
//!
//! The paper's headline claim — sub-second data freshness at multi-GB/s
//! ingest (§1, §8) — is only meaningful if commit-to-visible latency can
//! be *measured* end to end. This module is the measurement substrate:
//!
//! - a process-wide [`Registry`] of named [`Counter`]s, [`Gauge`]s, and
//!   bounded-bucket [`Histogram`]s (p50/p90/p95/p99/max);
//! - [`Span`]s: lightweight structured timers over **virtual** time,
//!   threaded through the append path (client → RPC → Stream Server →
//!   WAL → Colossus replica write → ack, §4.2.2) and the scan path
//!   (list → prune → parallel fragment reads → reconciled tail, §7.2);
//! - a [`FreshnessProbe`] that stamps each appended record's commit
//!   timestamp and measures commit-to-visible latency at the query
//!   engine (§8), watermarked so retries and ambiguous acks never
//!   double-count a row;
//! - a seeded [`Reservoir`] sampler (Algorithm R) so long soaks keep
//!   percentiles representative of the *whole* stream instead of its
//!   first N samples;
//! - a [`MetricsSnapshot`] exporter (JSON + aligned text table) that
//!   also folds in per-method RPC stats and crash-point fires, so RPC
//!   histograms and chaos counters stop being islands.
//!
//! Everything here is deterministic under a seed and uses virtual /
//! TrueTime timestamps exclusively — nothing reads the wall clock (the
//! repo's clock discipline, enforced by vortex-lint).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::ids::TableId;
use crate::latency::Percentiles;
use crate::rpc::RpcMetrics;
use crate::truetime::Timestamp;

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by a signed delta.
    pub fn adjust(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Bounded-bucket histogram
// ---------------------------------------------------------------------------

/// Exact buckets below this value; log-scale sub-buckets above.
const LINEAR_BUCKETS: usize = 16;
/// Sub-buckets per power of two (relative error ≤ 1/8 above 16).
const SUB_BUCKETS: usize = 8;
/// Total bucket count: 16 exact + 8 per octave for octaves 4..=63.
const NUM_BUCKETS: usize = LINEAR_BUCKETS + (64 - 4) * SUB_BUCKETS;

/// Bucket index for a value: exact below [`LINEAR_BUCKETS`], then
/// HDR-style (octave, 3-bit mantissa) above.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (msb - 3)) & 0x7) as usize;
    LINEAR_BUCKETS + (msb - 4) * SUB_BUCKETS + sub
}

/// Inclusive upper bound of a bucket (the value reported for any
/// percentile falling inside it — a deterministic ≤ 12.5% overestimate).
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_BUCKETS {
        return idx as u64;
    }
    let msb = 4 + (idx - LINEAR_BUCKETS) / SUB_BUCKETS;
    let sub = (idx - LINEAR_BUCKETS) % SUB_BUCKETS;
    let base = 1u128 << msb;
    let hi = base + (sub as u128 + 1) * (base >> 3) - 1;
    hi.min(u64::MAX as u128) as u64
}

#[derive(Debug)]
struct HistInner {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// A bounded-memory latency histogram: fixed bucket layout, exact
/// count/sum/min/max, percentiles read from bucket upper bounds. All
/// percentile output is deterministic for a given record sequence.
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Mutex::new(HistInner {
                counts: vec![0; NUM_BUCKETS],
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            }),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical observations.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let mut h = self.inner.lock();
        h.counts[bucket_index(v)] += n;
        h.count += n;
        h.sum = h.sum.saturating_add(v.saturating_mul(n));
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    /// A point-in-time summary of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.inner.lock();
        if h.count == 0 {
            return HistogramSnapshot::default();
        }
        // Nearest-rank percentile over the bucket cumulative counts,
        // clamped into [min, max] so tiny sample sets stay exact-ish.
        let pct = |p: u64| -> u64 {
            let rank = (h.count * p).div_ceil(100).clamp(1, h.count);
            let mut seen = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i).clamp(h.min, h.max);
                }
            }
            h.max
        };
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            p50: pct(50),
            p90: pct(90),
            p95: pct(95),
            p99: pct(99),
        }
    }
}

/// Summary of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Minimum observation (0 when empty).
    pub min: u64,
    /// Maximum observation.
    pub max: u64,
    /// 50th percentile (bucket upper bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl std::fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count, self.p50, self.p90, self.p99, self.max
        )
    }
}

// ---------------------------------------------------------------------------
// Seeded reservoir sampling (Algorithm R)
// ---------------------------------------------------------------------------

/// A fixed-capacity uniform sample over an unbounded stream, seeded so
/// the kept sample set is deterministic under `VORTEX_CHAOS_SEED`-style
/// seeding. Replaces first-N retention wherever percentiles must track
/// the *whole* stream (a first-N window reports startup-biased tails on
/// long soaks).
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    rng: u64,
    samples: Vec<u64>,
}

impl Reservoir {
    /// A reservoir keeping at most `cap` samples.
    pub fn new(cap: usize, seed: u64) -> Self {
        // splitmix64 finalizer: xorshift* state must be non-zero, and
        // seeds differing in any single bit must diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Reservoir {
            cap: cap.max(1),
            seen: 0,
            rng: z | 1,
            samples: Vec::new(),
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offers one observation to the reservoir (Algorithm R: kept with
    /// probability `cap / seen`).
    pub fn record(&mut self, v: u64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(v);
            return;
        }
        let j = self.next_rand() % self.seen;
        if (j as usize) < self.cap {
            self.samples[j as usize] = v;
        }
    }

    /// Observations offered so far (≥ `samples().len()`).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current uniform sample of the stream.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Percentiles of the current sample.
    pub fn percentiles(&self) -> Percentiles {
        let mut s = self.samples.clone();
        Percentiles::compute(&mut s)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named-metric registry. Instantiable for tests; the engine shares
/// the process-wide [`global`] instance (one pane of glass, mirroring
/// the crash-point registry's process-global design).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Snapshots every metric in the registry, plus the process-wide
    /// crash-point fire total (so chaos counters share the pane).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            rpc: BTreeMap::new(),
            crash_point_fires: crate::crashpoints::total_fires(),
        }
    }
}

/// The process-wide registry every component records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A lightweight structured span over **virtual** time: explicit begin /
/// end timestamps (no wall clock), recorded into the global registry as
/// histogram `span.<name>.us` on end. Durations of 0 are normal under
/// zero-latency profiles and keep deterministic runs deterministic.
#[derive(Debug)]
#[must_use = "a span records nothing until `end` is called"]
pub struct Span {
    name: &'static str,
    start: Timestamp,
}

impl Span {
    /// Opens a span at `start` (virtual / TrueTime-derived).
    pub fn begin(name: &'static str, start: Timestamp) -> Span {
        Span { name, start }
    }

    /// Closes the span at `end`, recording its duration into `registry`.
    pub fn end_into(self, registry: &Registry, end: Timestamp) {
        registry
            .histogram(&format!("span.{}.us", self.name))
            .record(end.micros().saturating_sub(self.start.micros()));
    }

    /// Closes the span at `end`, recording into the [`global`] registry.
    pub fn end(self, end: Timestamp) {
        self.end_into(global(), end);
    }
}

// ---------------------------------------------------------------------------
// Group-commit metrics (shard-per-core Stream Server)
// ---------------------------------------------------------------------------

/// Histogram: appends coalesced into each shard group commit. The knee
/// of the saturation bench shows up here as the mean batch size climbing
/// above one.
pub const GROUP_COMMIT_APPENDS: &str = "server.group_commit.appends";
/// Histogram: payload bytes per shard group commit.
pub const GROUP_COMMIT_BYTES: &str = "server.group_commit.bytes";
/// Counter: group commits executed across all shards.
pub const GROUP_COMMIT_GROUPS: &str = "server.group_commit.groups";
/// Counter: WAL events folded into record-aligned group WAL appends.
pub const GROUP_COMMIT_WAL_EVENTS: &str = "server.group_commit.wal_events";
/// Counter: appends shed at a full shard mailbox (backpressure).
pub const SHARD_MAILBOX_SHED: &str = "server.shard.mailbox_shed";
/// Per-shard append counter prefix; shards intern
/// `"{prefix}{idx:02}.appends"` once at spawn so the hot path never
/// formats a metric name.
pub const SHARD_APPENDS_PREFIX: &str = "server.shard";

// ---------------------------------------------------------------------------
// Freshness probe
// ---------------------------------------------------------------------------

/// The end-to-end freshness probe (§8): measures commit-to-visible
/// latency at the query engine.
///
/// Every appended record carries a server-assigned TrueTime commit
/// timestamp. When a scan returns, the engine offers each visible row's
/// commit timestamp together with the scan's observation time; rows at
/// or below the per-table watermark (the max commit timestamp already
/// observed) are skipped, so client retries, ambiguous acks resolved by
/// offset dedup, and repeated polling scans never count a row twice.
#[derive(Debug)]
pub struct FreshnessProbe {
    watermarks: Mutex<BTreeMap<TableId, Timestamp>>,
    hist: Arc<Histogram>,
    observed: Arc<Counter>,
}

/// Registry name of the commit-to-visible latency histogram.
pub const FRESHNESS_HISTOGRAM: &str = "freshness.commit_to_visible_us";
/// Registry name of the unique-rows-observed counter.
pub const FRESHNESS_ROWS_OBSERVED: &str = "freshness.rows_observed";

impl FreshnessProbe {
    /// A probe recording into `registry` under [`FRESHNESS_HISTOGRAM`]
    /// and [`FRESHNESS_ROWS_OBSERVED`].
    pub fn new(registry: &Registry) -> Self {
        FreshnessProbe {
            watermarks: Mutex::new(BTreeMap::new()),
            hist: registry.histogram(FRESHNESS_HISTOGRAM),
            observed: registry.counter(FRESHNESS_ROWS_OBSERVED),
        }
    }

    /// Offers the commit timestamps of every row visible to one scan of
    /// `table`, observed at `visible_at`. Returns how many rows were
    /// *newly* observed (above the prior watermark). Serialized on the
    /// probe's lock, so concurrent scans cannot double-count.
    pub fn observe<I>(&self, table: TableId, commit_ts: I, visible_at: Timestamp) -> u64
    where
        I: IntoIterator<Item = Timestamp>,
    {
        let mut wm = self.watermarks.lock();
        let prior = wm.get(&table).copied().unwrap_or(Timestamp::MIN);
        let mut newest = prior;
        let mut fresh = 0u64;
        for ts in commit_ts {
            if ts > prior {
                // Saturating: TrueTime issuance can stamp a record a hair
                // past `now().latest` while the virtual clock stands
                // still; freshness is then 0, never negative.
                self.hist
                    .record(visible_at.micros().saturating_sub(ts.micros()));
                fresh += 1;
                newest = newest.max(ts);
            }
        }
        if newest > prior {
            wm.insert(table, newest);
        }
        self.observed.add(fresh);
        fresh
    }

    /// Snapshot of the commit-to-visible histogram.
    pub fn histogram(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }

    /// Unique rows observed across all tables.
    pub fn rows_observed(&self) -> u64 {
        self.observed.get()
    }
}

// ---------------------------------------------------------------------------
// Unified snapshot + exporters
// ---------------------------------------------------------------------------

/// Per-method RPC summary folded into a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct RpcMethodSummary {
    /// Calls issued.
    pub calls: u64,
    /// Attempts across all calls (excess over `calls` = retries).
    pub attempts: u64,
    /// Calls that returned `Ok`.
    pub ok: u64,
    /// Calls that returned `Err`.
    pub err: u64,
    /// Attempts failed by injected pre-execution unavailability.
    pub injected_unavailable: u64,
    /// Successful executions whose reply was injected-lost.
    pub injected_reply_lost: u64,
    /// Calls that exhausted their budget.
    pub deadline_exceeded: u64,
    /// Latency percentiles over the method's reservoir sample.
    pub latency: Percentiles,
}

/// One unified, exportable view over counters, gauges, histograms,
/// per-method RPC stats, and crash-point fires.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// RPC per-method summaries keyed `"<channel>.<method>"`.
    pub rpc: BTreeMap<String, RpcMethodSummary>,
    /// Total crash-point fires in this process.
    pub crash_point_fires: u64,
}

impl MetricsSnapshot {
    /// Folds one RPC channel's per-method metrics into the snapshot
    /// under `"<channel>.<method>"` keys.
    pub fn add_rpc(&mut self, channel: &str, metrics: &RpcMetrics) {
        for (method, stats) in metrics.snapshot() {
            self.rpc.insert(
                format!("{channel}.{method}"),
                RpcMethodSummary {
                    calls: stats.calls,
                    attempts: stats.attempts,
                    ok: stats.ok,
                    err: stats.err,
                    injected_unavailable: stats.injected_unavailable,
                    injected_reply_lost: stats.injected_reply_lost,
                    deadline_exceeded: stats.deadline_exceeded,
                    latency: stats.percentiles(),
                },
            );
        }
    }

    /// Serializes the snapshot as a single JSON object (hand-rolled; the
    /// workspace carries no serde).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", esc(k)));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", esc(k)));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
                esc(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p95,
                h.p99
            ));
        }
        out.push_str("},\"rpc\":{");
        let mut first = true;
        for (k, m) in &self.rpc {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"attempts\":{},\"ok\":{},\"err\":{},\
                 \"injected_unavailable\":{},\"injected_reply_lost\":{},\
                 \"deadline_exceeded\":{},\"p50\":{},\"p90\":{},\"p95\":{},\
                 \"p99\":{},\"max\":{},\"samples\":{}}}",
                esc(k),
                m.calls,
                m.attempts,
                m.ok,
                m.err,
                m.injected_unavailable,
                m.injected_reply_lost,
                m.deadline_exceeded,
                m.latency.p50,
                m.latency.p90,
                m.latency.p95,
                m.latency.p99,
                m.latency.max,
                m.latency.count
            ));
        }
        out.push_str(&format!(
            "}},\"crash_point_fires\":{}}}",
            self.crash_point_fires
        ));
        out
    }

    /// Renders the snapshot as an aligned text table (the
    /// `examples/monitoring.rs` dashboard format).
    pub fn to_table(&self) -> String {
        let name_w = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .chain(self.rpc.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(4)
            .max(24);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<name_w$} {:>12}\n", "counter", "value"));
            for (k, v) in &self.counters {
                out.push_str(&format!("{k:<name_w$} {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("{:<name_w$} {:>12}\n", "gauge", "value"));
            for (k, v) in &self.gauges {
                out.push_str(&format!("{k:<name_w$} {v:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<name_w$} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "histogram", "count", "p50", "p90", "p99", "max"
            ));
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "{k:<name_w$} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    h.count, h.p50, h.p90, h.p99, h.max
                ));
            }
        }
        if !self.rpc.is_empty() {
            out.push_str(&format!(
                "{:<name_w$} {:>10} {:>8} {:>8} {:>10} {:>10}\n",
                "rpc method", "calls", "ok", "err", "p50us", "p99us"
            ));
            for (k, m) in &self.rpc {
                out.push_str(&format!(
                    "{k:<name_w$} {:>10} {:>8} {:>8} {:>10} {:>10}\n",
                    m.calls, m.ok, m.err, m.latency.p50, m.latency.p99
                ));
            }
        }
        out.push_str(&format!(
            "{:<name_w$} {:>12}\n",
            "crash_point_fires", self.crash_point_fires
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotonic_and_covering() {
        // Every value maps to a bucket whose upper bound is >= the value
        // and within 12.5% relative error above the linear range.
        let mut prev_upper = 0;
        for idx in 0..NUM_BUCKETS {
            let hi = bucket_upper(idx);
            assert!(hi >= prev_upper, "idx {idx}");
            prev_upper = hi;
        }
        for v in [0, 1, 15, 16, 17, 31, 32, 1000, 65_535, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            let hi = bucket_upper(idx);
            assert!(hi >= v, "v={v} idx={idx} hi={hi}");
            if v >= 16 {
                assert!(
                    (hi - v) as f64 <= v as f64 / 8.0 + 1.0,
                    "v={v} hi={hi}: > 12.5% error"
                );
            } else {
                assert_eq!(hi, v, "exact below the linear range");
            }
        }
    }

    #[test]
    fn histogram_percentiles_track_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Bucketed nearest-rank: within one sub-bucket (12.5%) of truth.
        assert!((450..=570).contains(&s.p50), "p50={}", s.p50);
        assert!((880..=1000).contains(&s.p99), "p99={}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::default();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record(42);
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max), (1, 42, 42));
        assert_eq!(s.p50, 42, "single sample pins every percentile");
        assert_eq!(s.p99, 42);
    }

    #[test]
    fn reservoir_is_uniform_not_prefix_biased() {
        // 10k lows then 90k highs: a first-N window of 10k would report
        // p50 = low; a uniform reservoir must report p50 = high.
        let mut r = Reservoir::new(10_000, 7);
        for _ in 0..10_000 {
            r.record(1_000);
        }
        for _ in 0..90_000 {
            r.record(100_000);
        }
        assert_eq!(r.seen(), 100_000);
        assert_eq!(r.samples().len(), 10_000);
        let p = r.percentiles();
        assert_eq!(p.p50, 100_000, "p50 must track the overall stream");
        let lows = r.samples().iter().filter(|&&v| v == 1_000).count();
        // E[lows] = 10_000 * (10k/100k) = 1_000; allow generous slack.
        assert!((500..2_000).contains(&lows), "lows={lows}");
    }

    #[test]
    fn reservoir_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut r = Reservoir::new(64, seed);
            for v in 0..10_000u64 {
                r.record(v);
            }
            r.samples().to_vec()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn registry_interns_and_snapshots() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.counter("a").add(2);
        reg.gauge("g").set(-5);
        reg.histogram("h").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 3);
        assert_eq!(snap.gauges["g"], -5);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn span_records_virtual_duration() {
        let reg = Registry::new();
        let s = Span::begin("test.stage", Timestamp(1_000));
        s.end_into(&reg, Timestamp(3_500));
        let h = reg.histogram("span.test.stage.us").snapshot();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 2_500);
        // Clock standing still → zero duration, not a panic.
        let s = Span::begin("test.stage", Timestamp(9_000));
        s.end_into(&reg, Timestamp(9_000));
        assert_eq!(reg.histogram("span.test.stage.us").snapshot().count, 2);
    }

    #[test]
    fn freshness_probe_never_double_counts() {
        let reg = Registry::new();
        let probe = FreshnessProbe::new(&reg);
        let t = TableId::from_raw(1);
        // First scan: three rows committed at 100/200/300, visible at 500.
        let n = probe.observe(t, [100, 200, 300].map(Timestamp), Timestamp(500));
        assert_eq!(n, 3);
        // Retry / repeated poll re-surfaces the same rows: no new counts.
        let n = probe.observe(t, [100, 200, 300].map(Timestamp), Timestamp(900));
        assert_eq!(n, 0);
        // A later row is counted once, against its own visibility time.
        let n = probe.observe(t, [200, 300, 400].map(Timestamp), Timestamp(900));
        assert_eq!(n, 1);
        assert_eq!(probe.rows_observed(), 4);
        let h = probe.histogram();
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 500, "500 - 100 + the later 900 - 400");
        // Tables are independent watermarks.
        let n = probe.observe(TableId::from_raw(2), [Timestamp(100)], Timestamp(901));
        assert_eq!(n, 1);
    }

    #[test]
    fn freshness_probe_saturates_on_clock_skew() {
        let reg = Registry::new();
        let probe = FreshnessProbe::new(&reg);
        // Commit stamp beyond the observation time (issuance tie-break):
        // freshness clamps to zero instead of underflowing.
        let n = probe.observe(TableId::from_raw(9), [Timestamp(1_000)], Timestamp(500));
        assert_eq!(n, 1);
        assert_eq!(probe.histogram().min, 0);
    }

    #[test]
    fn snapshot_exports_json_and_table() {
        let reg = Registry::new();
        reg.counter("scan.calls").add(7);
        reg.gauge("server.hosted").set(3);
        reg.histogram("freshness.commit_to_visible_us").record(1234);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"scan.calls\":7"), "{json}");
        assert!(json.contains("\"server.hosted\":3"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"crash_point_fires\":"), "{json}");
        let table = snap.to_table();
        assert!(table.contains("scan.calls"), "{table}");
        assert!(table.contains("crash_point_fires"), "{table}");
        // Aligned: every non-empty line ends in a numeric column.
        for line in table.lines() {
            assert!(!line.trim().is_empty());
        }
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs.test.singleton").inc();
        assert!(global().snapshot().counters["obs.test.singleton"] >= 1);
    }
}
