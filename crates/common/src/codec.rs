//! The binary wire encoding for rows.
//!
//! Vortex "supports multiple data formats (such as Protocol buffers and
//! Avro) and is extensible to other formats" (§4.2.2). This engine speaks
//! one self-describing binary format with protobuf-style varints; it is
//! the format clients serialize row sets into for `AppendStream`, and the
//! record payload stored inside WOS fragment blocks.
//!
//! All decode paths are bounds-checked and return [`VortexError::Decode`]
//! on malformed input — fragments read back from (simulated) disk go
//! through this code.

use crate::error::{VortexError, VortexResult};
use crate::row::{Row, RowSet, Value};
use crate::schema::ChangeType;
use crate::truetime::Timestamp;

/// Appends an unsigned LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads an unsigned LEB128 varint, advancing `pos`.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> VortexResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| VortexError::Decode("varint truncated".into()))?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(VortexError::Decode("varint too long".into()));
        }
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Reads a zigzag-encoded signed varint.
pub fn get_ivarint(buf: &[u8], pos: &mut usize) -> VortexResult<i64> {
    let z = get_uvarint(buf, pos)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> VortexResult<&'a [u8]> {
    if *pos + n > buf.len() {
        return Err(VortexError::Decode(format!(
            "need {n} bytes at {}, have {}",
            *pos,
            buf.len() - *pos
        )));
    }
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn get_len(buf: &[u8], pos: &mut usize) -> VortexResult<usize> {
    let n = get_uvarint(buf, pos)? as usize;
    // A declared length can never exceed the remaining input; reject early
    // so corrupt lengths don't trigger giant allocations.
    if n > buf.len() - *pos {
        return Err(VortexError::Decode(format!(
            "declared length {n} exceeds remaining {}",
            buf.len() - *pos
        )));
    }
    Ok(n)
}

// Value tags. Stable on-disk values: never renumber.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT64: u8 = 2;
const TAG_FLOAT64: u8 = 3;
const TAG_STRING: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;
const TAG_DATE: u8 = 7;
const TAG_NUMERIC: u8 = 8;
const TAG_JSON: u8 = 9;
const TAG_STRUCT: u8 = 10;
const TAG_ARRAY: u8 = 11;

/// Appends one encoded value.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int64(i) => {
            out.push(TAG_INT64);
            put_ivarint(out, *i);
        }
        Value::Float64(f) => {
            out.push(TAG_FLOAT64);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            put_uvarint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            put_uvarint(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::Timestamp(t) => {
            out.push(TAG_TIMESTAMP);
            put_uvarint(out, t.micros());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            put_ivarint(out, *d as i64);
        }
        Value::Numeric(n) => {
            out.push(TAG_NUMERIC);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Json(s) => {
            out.push(TAG_JSON);
            put_uvarint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Struct(vs) => {
            out.push(TAG_STRUCT);
            put_uvarint(out, vs.len() as u64);
            for v in vs {
                encode_value(out, v);
            }
        }
        Value::Array(vs) => {
            out.push(TAG_ARRAY);
            put_uvarint(out, vs.len() as u64);
            for v in vs {
                encode_value(out, v);
            }
        }
    }
}

/// Reads one encoded value, advancing `pos`.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> VortexResult<Value> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| VortexError::Decode("value tag truncated".into()))?;
    *pos += 1;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(take(buf, pos, 1)?[0] != 0),
        TAG_INT64 => Value::Int64(get_ivarint(buf, pos)?),
        TAG_FLOAT64 => {
            let b = take(buf, pos, 8)?;
            Value::Float64(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
        }
        TAG_STRING => {
            let n = get_len(buf, pos)?;
            let s = take(buf, pos, n)?;
            Value::String(
                std::str::from_utf8(s)
                    .map_err(|e| VortexError::Decode(format!("bad utf8: {e}")))?
                    .to_string(),
            )
        }
        TAG_BYTES => {
            let n = get_len(buf, pos)?;
            Value::Bytes(take(buf, pos, n)?.to_vec())
        }
        TAG_TIMESTAMP => Value::Timestamp(Timestamp::from_micros(get_uvarint(buf, pos)?)),
        TAG_DATE => Value::Date(get_ivarint(buf, pos)? as i32),
        TAG_NUMERIC => {
            let b = take(buf, pos, 16)?;
            Value::Numeric(i128::from_le_bytes(b.try_into().unwrap()))
        }
        TAG_JSON => {
            let n = get_len(buf, pos)?;
            let s = take(buf, pos, n)?;
            Value::Json(
                std::str::from_utf8(s)
                    .map_err(|e| VortexError::Decode(format!("bad utf8: {e}")))?
                    .to_string(),
            )
        }
        TAG_STRUCT | TAG_ARRAY => {
            let n = get_uvarint(buf, pos)? as usize;
            // Each element is at least 1 byte (a tag), so n can't exceed
            // the remaining bytes.
            if n > buf.len() - *pos {
                return Err(VortexError::Decode(format!(
                    "declared {n} elements exceeds remaining bytes"
                )));
            }
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(buf, pos)?);
            }
            if tag == TAG_STRUCT {
                Value::Struct(vs)
            } else {
                Value::Array(vs)
            }
        }
        other => return Err(VortexError::Decode(format!("unknown value tag {other}"))),
    })
}

/// Appends one encoded row: `change_type | num_values | values...`.
pub fn encode_row(out: &mut Vec<u8>, row: &Row) {
    out.push(row.change_type.to_u8());
    put_uvarint(out, row.values.len() as u64);
    for v in &row.values {
        encode_value(out, v);
    }
}

/// Reads one encoded row, advancing `pos`.
pub fn decode_row(buf: &[u8], pos: &mut usize) -> VortexResult<Row> {
    let ct = ChangeType::from_u8(
        *buf.get(*pos)
            .ok_or_else(|| VortexError::Decode("row truncated".into()))?,
    )?;
    *pos += 1;
    let n = get_uvarint(buf, pos)? as usize;
    if n > buf.len() - *pos {
        return Err(VortexError::Decode(format!(
            "row declares {n} values, not enough bytes"
        )));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(buf, pos)?);
    }
    Ok(Row {
        values,
        change_type: ct,
    })
}

/// Encodes a whole row set: `num_rows | rows...`.
pub fn encode_rowset(rows: &RowSet) -> Vec<u8> {
    encode_rows(&rows.rows)
}

/// Encodes a row slice with the same framing as [`encode_rowset`], so
/// the append path can chunk a borrowed batch by index range without
/// materialising per-chunk `RowSet`s.
pub fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let est: usize = rows.iter().map(|r| r.approx_bytes()).sum();
    let mut out = Vec::with_capacity(est + 8);
    put_uvarint(&mut out, rows.len() as u64);
    for r in rows {
        encode_row(&mut out, r);
    }
    out
}

/// Decodes a row set produced by [`encode_rowset`]; requires the buffer to
/// be fully consumed.
pub fn decode_rowset(buf: &[u8]) -> VortexResult<RowSet> {
    let mut pos = 0usize;
    let n = get_uvarint(buf, &mut pos)? as usize;
    if n > buf.len() {
        return Err(VortexError::Decode(format!("rowset declares {n} rows")));
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(decode_row(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(VortexError::Decode(format!(
            "trailing {} bytes after rowset",
            buf.len() - pos
        )));
    }
    Ok(RowSet::new(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kitchen_sink_row() -> Row {
        Row::with_change(
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int64(-42),
                Value::Float64(3.5),
                Value::String("héllo".into()),
                Value::Bytes(vec![0, 255, 7]),
                Value::Timestamp(Timestamp::from_micros(1_700_000_000_000_000)),
                Value::Date(-3),
                Value::Numeric(-123_456_789_012_345_678_901_234i128),
                Value::Json(r#"{"a":[1,2]}"#.into()),
                Value::Struct(vec![Value::Int64(1), Value::Null]),
                Value::Array(vec![Value::String("x".into()), Value::String("y".into())]),
            ],
            ChangeType::Upsert,
        )
    }

    #[test]
    fn row_roundtrip_all_types() {
        let row = kitchen_sink_row();
        let mut buf = Vec::new();
        encode_row(&mut buf, &row);
        let mut pos = 0;
        let back = decode_row(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back, row);
    }

    #[test]
    fn rowset_roundtrip() {
        let rs = RowSet::new(vec![
            kitchen_sink_row(),
            Row::insert(vec![Value::Int64(1)]),
            Row::with_change(vec![Value::String("k".into())], ChangeType::Delete),
        ]);
        let buf = encode_rowset(&rs);
        assert_eq!(decode_rowset(&buf).unwrap(), rs);
    }

    #[test]
    fn varint_extremes() {
        let mut buf = Vec::new();
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            buf.clear();
            put_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_ivarint(&buf, &mut pos).unwrap(), v);
        }
        for v in [0u64, u64::MAX] {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncation_never_panics() {
        let rs = RowSet::new(vec![kitchen_sink_row()]);
        let buf = encode_rowset(&rs);
        for cut in 0..buf.len() {
            assert!(decode_rowset(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let rs = RowSet::new(vec![Row::insert(vec![Value::Int64(1)])]);
        let mut buf = encode_rowset(&rs);
        buf.push(0);
        assert!(decode_rowset(&buf).is_err());
    }

    #[test]
    fn bogus_length_rejected_without_allocation() {
        // A rowset claiming u64::MAX rows must fail fast.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        assert!(decode_rowset(&buf).is_err());
        // A string claiming a giant length likewise.
        let mut buf = vec![TAG_STRING];
        put_uvarint(&mut buf, 1 << 40);
        let mut pos = 0;
        assert!(decode_value(&buf, &mut pos).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let buf = vec![200u8];
        let mut pos = 0;
        assert!(matches!(
            decode_value(&buf, &mut pos),
            Err(VortexError::Decode(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = vec![TAG_STRING];
        put_uvarint(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut pos = 0;
        assert!(decode_value(&buf, &mut pos).is_err());
    }

    #[test]
    fn nan_roundtrips_bitexact() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Float64(f64::NAN));
        let mut pos = 0;
        match decode_value(&buf, &mut pos).unwrap() {
            Value::Float64(f) => assert!(f.is_nan()),
            other => panic!("got {other:?}"),
        }
    }
}
