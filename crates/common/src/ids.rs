//! Strongly-typed identifiers for every entity in the system.
//!
//! The paper's metadata hierarchy is `Table → Stream → Streamlet →
//! Fragment` (§5.1), hosted by clusters, SMS tasks, and Stream Servers.
//! Each gets a newtype so the compiler keeps them apart.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u64);

        impl $name {
            /// Builds an id from its raw integer representation.
            pub const fn from_raw(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer representation.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a table within a region.
    TableId,
    "tbl-"
);
id_type!(
    /// Identifies a Vortex Stream — the append conduit clients write to
    /// (§4.1). In production these are "unique random ids" (§5.4.3); here
    /// they are drawn from a [`IdGen`].
    StreamId,
    "str-"
);
id_type!(
    /// Identifies a Streamlet — a contiguous slice of a Stream whose rows
    /// all live in the same two clusters (§5.1).
    StreamletId,
    "slt-"
);
id_type!(
    /// Identifies a Fragment — a contiguous block of rows inside a log
    /// file (§5.1).
    FragmentId,
    "frg-"
);
id_type!(
    /// Identifies a Borg-style cluster within a region.
    ClusterId,
    "cls-"
);
id_type!(
    /// Identifies a Stream Server task.
    ServerId,
    "srv-"
);
id_type!(
    /// Identifies an SMS (Stream Metadata Server) task.
    SmsTaskId,
    "sms-"
);

/// A thread-safe generator of unique ids.
///
/// The paper's SMS "generates a unique random id for the Stream" (§5.4.3).
/// For reproducibility our ids are sequential per generator with a
/// configurable starting seed; uniqueness is what the engine relies on, not
/// randomness.
#[derive(Debug)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Creates a generator starting from `start`.
    pub fn new(start: u64) -> Self {
        Self {
            next: AtomicU64::new(start),
        }
    }

    /// Returns the next unique raw id.
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the next unique [`StreamId`].
    pub fn next_stream(&self) -> StreamId {
        StreamId::from_raw(self.next_raw())
    }

    /// Returns the next unique [`StreamletId`].
    pub fn next_streamlet(&self) -> StreamletId {
        StreamletId::from_raw(self.next_raw())
    }

    /// Returns the next unique [`FragmentId`].
    pub fn next_fragment(&self) -> FragmentId {
        FragmentId::from_raw(self.next_raw())
    }

    /// Returns the next unique [`TableId`].
    pub fn next_table(&self) -> TableId {
        TableId::from_raw(self.next_raw())
    }
}

impl Default for IdGen {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn ids_are_distinct_types_and_display() {
        let t = TableId::from_raw(3);
        let s = StreamId::from_raw(3);
        assert_eq!(t.to_string(), "tbl-3");
        assert_eq!(s.to_string(), "str-3");
        assert_eq!(t.raw(), s.raw());
    }

    #[test]
    fn idgen_is_monotonic() {
        let g = IdGen::new(10);
        assert_eq!(g.next_raw(), 10);
        assert_eq!(g.next_raw(), 11);
        assert_eq!(g.next_stream().raw(), 12);
    }

    #[test]
    fn idgen_unique_across_threads() {
        let g = Arc::new(IdGen::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(FragmentId::from_raw(1) < FragmentId::from_raw(2));
        let mut v = [ClusterId::from_raw(5), ClusterId::from_raw(1)];
        v.sort();
        assert_eq!(v[0].raw(), 1);
    }
}
