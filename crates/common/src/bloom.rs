//! Bloom filters over partition/clustering key values.
//!
//! "When a Fragment is finalized, the Stream Server appends a bloom filter,
//! followed by a fixed length footer ... The bloom filter marks which key
//! values are present for the partitioning and clustering columns."
//! (§5.4.4). Partition elimination (§7.2) evaluates point predicates
//! against these filters to skip Fragments and Streamlets.
//!
//! Implementation: a classic m-bit / k-hash bloom filter with double
//! hashing (`h1 + i*h2`) from a from-scratch 64-bit mix of FNV-1a, and a
//! compact binary serialization embedded in fragment footers.

/// A serializable bloom filter keyed by byte strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
    num_items: u64,
}

fn fnv1a64(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Final avalanche (splitmix64 tail) so nearby keys spread.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

impl BloomFilter {
    /// Creates a filter sized for `expected_items` with roughly
    /// `false_positive_rate` (clamped to sane bounds).
    pub fn with_capacity(expected_items: usize, false_positive_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = false_positive_rate.clamp(1e-6, 0.5);
        // m = -n ln p / (ln 2)^2 ; k = m/n ln 2
        let m = (-n * p.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil() as u64;
        let m = m.max(64).next_multiple_of(64);
        let k = ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as u32;
        Self {
            bits: vec![0u64; (m / 64) as usize],
            num_bits: m,
            num_hashes: k.min(16),
            num_items: 0,
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let h1 = fnv1a64(key, 0);
        let h2 = fnv1a64(key, 0x9E3779B97F4A7C15) | 1;
        for i in 0..self.num_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.num_items += 1;
    }

    /// Tests a key. `false` is definite absence; `true` may be a false
    /// positive.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let h1 = fnv1a64(key, 0);
        let h2 = fnv1a64(key, 0x9E3779B97F4A7C15) | 1;
        for i in 0..self.num_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Number of keys inserted so far.
    pub fn len(&self) -> u64 {
        self.num_items
    }

    /// Whether no keys have been inserted.
    pub fn is_empty(&self) -> bool {
        self.num_items == 0
    }

    /// Serializes to the fragment-footer binary layout:
    /// `num_bits: u64 | num_hashes: u32 | num_items: u64 | words...`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&self.num_hashes.to_le_bytes());
        out.extend_from_slice(&self.num_items.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`BloomFilter::to_bytes`] output.
    pub fn from_bytes(data: &[u8]) -> Result<Self, String> {
        if data.len() < 20 {
            return Err(format!("bloom filter too short: {} bytes", data.len()));
        }
        let num_bits = u64::from_le_bytes(data[0..8].try_into().unwrap());
        let num_hashes = u32::from_le_bytes(data[8..12].try_into().unwrap());
        let num_items = u64::from_le_bytes(data[12..20].try_into().unwrap());
        if num_bits == 0 || num_bits % 64 != 0 {
            return Err(format!("bad bloom num_bits {num_bits}"));
        }
        let words = (num_bits / 64) as usize;
        if data.len() != 20 + words * 8 {
            return Err(format!(
                "bloom filter length mismatch: {} != {}",
                data.len(),
                20 + words * 8
            ));
        }
        let bits = data[20..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Self {
            bits,
            num_bits,
            num_hashes: num_hashes.clamp(1, 16),
            num_items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000u32 {
            f.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(format!("key-{i}").as_bytes()), "fn at {i}");
        }
    }

    #[test]
    fn false_positive_rate_in_range() {
        let mut f = BloomFilter::with_capacity(10_000, 0.01);
        for i in 0..10_000u32 {
            f.insert(format!("present-{i}").as_bytes());
        }
        let fp = (0..100_000u32)
            .filter(|i| f.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = BloomFilter::with_capacity(500, 0.01);
        for i in 0..500u32 {
            f.insert(&i.to_le_bytes());
        }
        let bytes = f.to_bytes();
        let g = BloomFilter::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
        for i in 0..500u32 {
            assert!(g.may_contain(&i.to_le_bytes()));
        }
    }

    #[test]
    fn corrupt_serialization_rejected() {
        let mut f = BloomFilter::with_capacity(10, 0.01);
        f.insert(b"x");
        let mut bytes = f.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(BloomFilter::from_bytes(&bytes).is_err());
        assert!(BloomFilter::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_capacity(100, 0.01);
        assert!(f.is_empty());
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn tiny_capacity_still_works() {
        let mut f = BloomFilter::with_capacity(0, 0.9);
        f.insert(b"a");
        assert!(f.may_contain(b"a"));
        assert_eq!(f.len(), 1);
    }
}
