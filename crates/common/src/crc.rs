//! CRC32C (Castagnoli) checksums.
//!
//! Vortex "uses an end-to-end CRC to protect row data as it is sent from
//! the client to the Stream Server, and from the Stream Server to Colossus"
//! (§5.4.5). Data bytes travel alongside their CRC; corruption anywhere in
//! memory or in flight is detected before the bytes are accepted.
//!
//! This is a from-scratch, slice-by-8 table-driven CRC32C (polynomial
//! 0x1EDC6F41, reflected 0x82F63B78) — the same polynomial used by
//! iSCSI/ext4 and hardware `crc32` instructions, chosen for its error
//! detection properties on storage payloads.

const POLY: u32 = 0x82F63B78;

/// Eight 256-entry tables for slice-by-8 processing.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// A streaming CRC32C hasher.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Starts a new checksum computation.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][((hi >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finalize()
}

/// Verifies that `data` matches `expected`, returning a descriptive error
/// string on mismatch (callers wrap this into `VortexError::CorruptData`).
pub fn verify_crc32c(data: &[u8], expected: u32) -> Result<(), String> {
    let actual = crc32c(data);
    if actual == expected {
        Ok(())
    } else {
        Err(format!(
            "crc mismatch: expected {expected:#010x}, computed {actual:#010x} over {} bytes",
            data.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer tests from RFC 3720 (iSCSI) appendix B.4.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(&[0u8; 32]), 0x8A9136AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD794E);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113FDB5C);
    }

    #[test]
    fn crc_of_123456789() {
        // Standard check value for CRC32C.
        assert_eq!(crc32c(b"123456789"), 0xE3069283);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let oneshot = crc32c(&data);
        for split in [0, 1, 7, 8, 9, 100, 999, 4000] {
            let (a, b) = data.split_at(split);
            let mut h = Crc32c::new();
            h.update(a);
            h.update(b);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"vortex stream-oriented storage".to_vec();
        let good = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), good, "flip {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn verify_helper() {
        let d = b"hello";
        assert!(verify_crc32c(d, crc32c(d)).is_ok());
        let err = verify_crc32c(d, 0xDEADBEEF).unwrap_err();
        assert!(err.contains("crc mismatch"));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
    }
}
