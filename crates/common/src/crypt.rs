//! Encryption at rest and in flight: a from-scratch ChaCha20 stream cipher.
//!
//! "After compressing the data, the Stream Server encrypts the data before
//! writing to Fragments, using either the system's encryption key or a
//! customer supplied encryption key. Data is therefore in encrypted form
//! while being sent over RPC to Colossus, while at rest, and while being
//! read back." (§5.4.5)
//!
//! ChaCha20 (RFC 8439) is implemented here directly — no external crypto
//! crates are on the approved list. Every fragment block gets a distinct
//! `(key, nonce)` pair: the nonce is derived from the fragment id and block
//! ordinal, so key+nonce reuse cannot happen within a table.
//!
//! This module provides confidentiality only; integrity comes from the
//! end-to-end CRC32C that travels with the data (§5.4.5), which is how the
//! paper describes the production system as well.

/// A 256-bit encryption key.
///
/// System keys and customer-supplied keys (CMEK) are both this type; the
/// engine treats them identically, matching §5.4.5.
#[derive(Clone, PartialEq, Eq)]
pub struct Key(pub [u8; 32]);

impl Key {
    /// Derives a key from a human-readable passphrase (test/dev helper).
    ///
    /// Uses iterated ChaCha-based mixing, not a real KDF; production
    /// deployments would inject key material from a KMS.
    pub fn derive_from_passphrase(pass: &str) -> Self {
        let mut key = [0u8; 32];
        let bytes = pass.as_bytes();
        for (i, b) in bytes.iter().enumerate() {
            key[i % 32] ^= b.wrapping_mul(31).wrapping_add(i as u8);
        }
        // One block of ChaCha as a mixer.
        let block = chacha20_block(&key, &[0u8; 12], 0xDEC0DE);
        key.copy_from_slice(&block[..32]);
        Key(key)
    }

    /// The all-zero key used when encryption is disabled in tests.
    pub fn zero() -> Self {
        Key([0u8; 32])
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Key(****)")
    }
}

/// A 96-bit nonce. Must be unique per (key, message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nonce(pub [u8; 12]);

impl Nonce {
    /// Builds a nonce from a fragment id and block ordinal; unique within a
    /// key as long as fragment ids are unique (they are: see `IdGen`).
    pub fn for_block(fragment_raw: u64, block_ordinal: u32) -> Self {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&fragment_raw.to_le_bytes());
        n[8..].copy_from_slice(&block_ordinal.to_le_bytes());
        Nonce(n)
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block (RFC 8439 §2.3).
fn chacha20_block(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR stream cipher: the operation
/// is its own inverse). Counter starts at 1 per RFC 8439 message usage.
pub fn apply_keystream(key: &Key, nonce: &Nonce, data: &mut [u8]) {
    let mut counter = 1u32;
    for chunk in data.chunks_mut(64) {
        let ks = chacha20_block(&key.0, &nonce.0, counter);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

/// Convenience: returns an encrypted copy of `data`.
pub fn encrypt(key: &Key, nonce: &Nonce, data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    apply_keystream(key, nonce, &mut out);
    out
}

/// Convenience: returns a decrypted copy of `data`.
pub fn decrypt(key: &Key, nonce: &Nonce, data: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, data) // XOR is symmetric
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector for the block function.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = chacha20_block(&key, &nonce, 1);
        let expected_first16: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expected_first16);
    }

    /// RFC 8439 §2.4.2 full-message encryption vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&Key(key), &Nonce(nonce), plaintext);
        assert_eq!(
            &ct[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                0x69, 0x81
            ]
        );
        assert_eq!(decrypt(&Key(key), &Nonce(nonce), &ct), plaintext);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let key = Key::derive_from_passphrase("table-key");
        for n in [0usize, 1, 63, 64, 65, 1000, 4096, 100_000] {
            let data: Vec<u8> = (0..n).map(|i| (i * 7 % 256) as u8).collect();
            let nonce = Nonce::for_block(42, n as u32);
            let ct = encrypt(&key, &nonce, &data);
            if n > 8 {
                assert_ne!(ct, data, "ciphertext must differ from plaintext");
            }
            assert_eq!(decrypt(&key, &nonce, &ct), data);
        }
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let key = Key::derive_from_passphrase("k");
        let data = vec![0u8; 256];
        let a = encrypt(&key, &Nonce::for_block(1, 0), &data);
        let b = encrypt(&key, &Nonce::for_block(1, 1), &data);
        let c = encrypt(&key, &Nonce::for_block(2, 0), &data);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn wrong_key_does_not_decrypt() {
        let k1 = Key::derive_from_passphrase("right");
        let k2 = Key::derive_from_passphrase("wrong");
        let nonce = Nonce::for_block(5, 0);
        let data = b"sensitive rows".to_vec();
        let ct = encrypt(&k1, &nonce, &data);
        assert_ne!(decrypt(&k2, &nonce, &ct), data);
    }

    #[test]
    fn key_debug_never_leaks() {
        let k = Key::derive_from_passphrase("secret");
        assert_eq!(format!("{k:?}"), "Key(****)");
    }
}
