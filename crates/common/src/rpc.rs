//! The in-process RPC layer: every cross-component "hop" (client→SMS,
//! client→Stream Server, optimizer→SMS, query→SMS, …) is a direct call
//! routed through an [`RpcChannel`], which supplies what a real gRPC stack
//! would: per-call deadlines against a call budget, fault injection
//! (unavailability, lost replies — the ambiguous-ack case where the server
//! executed but the caller never heard), virtual latency drawn from the
//! [`crate::latency`] models, a retry policy with exponential backoff +
//! jitter honoring [`VortexError::is_retryable`], and per-method call
//! counters / latency histograms drainable by tests and benches.
//!
//! The one semantic rule the whole engine leans on: a fault injected
//! **before** the callee ran is always safe to retry, for any method; a
//! reply lost **after** the callee ran is only safe to re-execute for
//! [`CallKind::Idempotent`] methods. Non-idempotent methods (`append`,
//! `create_table`, conversion commits) surface a retryable
//! [`VortexError::Unavailable`] instead, so the caller's own
//! reconciliation logic — the §5.4/§5.6 offset-based dedup — decides what
//! actually happened. That is exactly the contract a lossy network gives
//! a thick client, and it is what makes the §4.2.2 exactly-once claim
//! testable in-process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{VortexError, VortexResult};
use crate::ids::TableId;
use crate::latency::{LogNormal, Percentiles};
use crate::obs::Reservoir;
use crate::transport::AdaptiveTransport;
use crate::truetime::{SimClock, Timestamp};

/// Priority class of the work a call performs — the admission-control
/// axis (`vortex-admission`). Classes are ordered: under overload the
/// *highest*-numbered (lowest-priority) class is shed first, so
/// interactive appends and reads keep their latency while background
/// maintenance yields (the paper's production stack survives overload by
/// shedding, not by queueing everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkClass {
    /// Client appends and query reads: latency-sensitive foreground work.
    Interactive = 0,
    /// Connector / batch-ingest pipelines: throughput-sensitive,
    /// deadline-tolerant.
    Batch = 1,
    /// Optimizer, verification, and GC: fully deferrable maintenance.
    Background = 2,
}

impl WorkClass {
    /// All classes, priority order (shed from the back first).
    pub const ALL: [WorkClass; 3] = [
        WorkClass::Interactive,
        WorkClass::Batch,
        WorkClass::Background,
    ];

    /// Stable lowercase name, used in metric keys.
    pub fn name(self) -> &'static str {
        match self {
            WorkClass::Interactive => "interactive",
            WorkClass::Batch => "batch",
            WorkClass::Background => "background",
        }
    }

    /// Dense index (0 = interactive … 2 = background).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Ambient per-call context an [`RpcInterceptor`] classifies traffic by:
/// which tenant is calling, which table the call concerns (when known),
/// and the work's priority class. Carried in a thread-local and set with
/// scoped guards ([`class_scope`] / [`tenant_scope`] / [`table_scope`]),
/// so callers several layers above the channel (the optimizer's cycle
/// loop, a connector pipeline) tag every RPC they transitively issue
/// without threading a parameter through the whole call graph — the
/// in-process analogue of request metadata / baggage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallCtx {
    /// Tenant charged for the call (0 = the default tenant).
    pub tenant: u64,
    /// Table the call concerns, when the caller knows it.
    pub table: Option<TableId>,
    /// Priority class ([`WorkClass::Interactive`] unless scoped).
    pub class: WorkClass,
}

impl CallCtx {
    /// The ambient default: tenant 0, no table, interactive.
    pub const DEFAULT: CallCtx = CallCtx {
        tenant: 0,
        table: None,
        class: WorkClass::Interactive,
    };
}

thread_local! {
    static CALL_CTX: std::cell::Cell<CallCtx> = const { std::cell::Cell::new(CallCtx::DEFAULT) };
}

/// The calling thread's current [`CallCtx`].
pub fn current_ctx() -> CallCtx {
    CALL_CTX.with(|c| c.get())
}

/// Restores the previous [`CallCtx`] on drop (scoped tagging).
#[must_use = "the context reverts when the guard drops"]
#[derive(Debug)]
pub struct CtxGuard {
    prev: CallCtx,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CALL_CTX.with(|c| c.set(self.prev));
    }
}

fn set_ctx(next: CallCtx) -> CtxGuard {
    let prev = CALL_CTX.with(|c| c.replace(next));
    CtxGuard { prev }
}

/// Tags every RPC issued by this thread (until the guard drops) with the
/// given priority class. Background services wrap their cycle bodies in
/// `let _bg = class_scope(WorkClass::Background);`.
pub fn class_scope(class: WorkClass) -> CtxGuard {
    set_ctx(CallCtx {
        class,
        ..current_ctx()
    })
}

/// Tags every RPC issued by this thread with a tenant id (quota key).
pub fn tenant_scope(tenant: u64) -> CtxGuard {
    set_ctx(CallCtx {
        tenant,
        ..current_ctx()
    })
}

/// Tags every RPC issued by this thread with the table it concerns
/// (per-table quota key).
pub fn table_scope(table: TableId) -> CtxGuard {
    set_ctx(CallCtx {
        table: Some(table),
        ..current_ctx()
    })
}

/// Admission hook invoked by [`RpcChannel::call`] around every attempt —
/// how `vortex-admission` sees both service hops without the channel
/// depending on the policy crate.
///
/// Contract: [`RpcInterceptor::admit`] runs before the callee executes.
/// `Ok(queued_us)` admits the attempt after a virtual queueing delay
/// (charged against the call budget); `Err` — canonically
/// [`VortexError::ResourceExhausted`] with a nonzero `retry_after_us` —
/// sheds it before any work happens, so shedding is always safe to retry
/// regardless of [`CallKind`]. Every admitted attempt is paired with
/// exactly one [`RpcInterceptor::release`] when the attempt concludes
/// (success *or* failure — concurrency windows must not leak, see the
/// transport `in_flight` discipline), and every call — admitted or shed —
/// gets one [`RpcInterceptor::complete`] with the call's total virtual
/// latency for the adaptive (AIMD) feedback loop.
pub trait RpcInterceptor: Send + Sync {
    /// Decides one attempt. Returns the virtual queue wait in µs, or a
    /// (retryable, hint-carrying) error to shed the attempt.
    fn admit(
        &self,
        channel: &str,
        method: &'static str,
        ctx: CallCtx,
        payload_bytes: u64,
        now: Timestamp,
        budget_remaining_us: u64,
    ) -> VortexResult<u64>;

    /// Concludes one *admitted* attempt (releases concurrency state).
    fn release(&self, ctx: CallCtx);

    /// Concludes one call with its total virtual latency and outcome.
    fn complete(
        &self,
        channel: &str,
        method: &'static str,
        ctx: CallCtx,
        latency_us: u64,
        ok: bool,
    );
}

/// Idempotency class of an RPC method, declared at each call site.
///
/// Governs what the channel may do when a reply is lost after the callee
/// executed (the ambiguous ack): idempotent methods are transparently
/// re-executed; non-idempotent methods surface a retryable
/// [`VortexError::Unavailable`] so the caller's reconciliation path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Safe to execute more than once; the channel may retry after an
    /// ambiguous ack.
    Idempotent,
    /// Re-execution could duplicate effects; ambiguous acks are surfaced
    /// to the caller as retryable unavailability.
    NonIdempotent,
}

/// Shared, atomically-updated fault plan for one channel — the RPC
/// counterpart of `colossus::faults::FaultPlan`. Tests flip these knobs
/// while traffic is in flight.
#[derive(Debug)]
pub struct RpcFaultPlan {
    /// Hard-down flag: every filtered call fails before execution.
    unavailable: AtomicBool,
    /// Probability (×1000) that a call attempt fails before execution.
    unavailable_permille: AtomicU32,
    /// Probability (×1000) that a successful call's reply is lost after
    /// execution (error-after-execute / ambiguous ack).
    reply_lost_permille: AtomicU32,
    /// One-shot tokens: the next N attempts fail before execution.
    fail_next: AtomicU32,
    /// One-shot tokens: the next N successful executions lose their reply.
    lose_next: AtomicU32,
    /// When set, injection only applies to this method name.
    method_filter: Mutex<Option<String>>,
    /// xorshift* state for the permille rolls (deterministic per seed).
    rng: AtomicU64,
}

impl RpcFaultPlan {
    /// A quiescent plan (no injected faults) with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RpcFaultPlan {
            unavailable: AtomicBool::new(false),
            unavailable_permille: AtomicU32::new(0),
            reply_lost_permille: AtomicU32::new(0),
            fail_next: AtomicU32::new(0),
            lose_next: AtomicU32::new(0),
            method_filter: Mutex::new(None),
            rng: AtomicU64::new(seed | 1),
        }
    }

    /// Marks the endpoint hard-down (or back up).
    pub fn set_unavailable(&self, down: bool) {
        self.unavailable.store(down, Ordering::SeqCst);
    }

    /// Sets the per-attempt pre-execution failure probability (×1000).
    pub fn set_unavailable_permille(&self, permille: u32) {
        self.unavailable_permille.store(permille, Ordering::SeqCst);
    }

    /// Sets the reply-loss probability (×1000) applied after successful
    /// execution — the ambiguous-ack axis.
    pub fn set_reply_lost_permille(&self, permille: u32) {
        self.reply_lost_permille.store(permille, Ordering::SeqCst);
    }

    /// The next `n` attempts fail before execution (token bucket; consumed
    /// across threads with CAS, mirroring `fail_next_appends`).
    pub fn fail_next_calls(&self, n: u32) {
        self.fail_next.fetch_add(n, Ordering::SeqCst);
    }

    /// The next `n` successful executions lose their reply.
    pub fn lose_next_replies(&self, n: u32) {
        self.lose_next.fetch_add(n, Ordering::SeqCst);
    }

    /// Restricts injection to one method name (`None` = all methods).
    pub fn set_method_filter(&self, method: Option<&str>) {
        *self.method_filter.lock() = method.map(|m| m.to_string());
    }

    /// Clears every injected fault.
    pub fn clear(&self) {
        self.unavailable.store(false, Ordering::SeqCst);
        self.unavailable_permille.store(0, Ordering::SeqCst);
        self.reply_lost_permille.store(0, Ordering::SeqCst);
        self.fail_next.store(0, Ordering::SeqCst);
        self.lose_next.store(0, Ordering::SeqCst);
        *self.method_filter.lock() = None;
    }

    fn applies_to(&self, method: &str) -> bool {
        match &*self.method_filter.lock() {
            Some(f) => f == method,
            None => true,
        }
    }

    fn roll_permille(&self) -> u32 {
        let mut cur = self.rng.load(Ordering::Relaxed);
        loop {
            let mut x = cur;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            match self
                .rng
                .compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return ((x.wrapping_mul(0x2545F4914F6CDD1D) >> 33) % 1000) as u32,
                Err(c) => cur = c,
            }
        }
    }

    fn take_token(counter: &AtomicU32) -> bool {
        let mut cur = counter.load(Ordering::SeqCst);
        while cur > 0 {
            match counter.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
        false
    }

    /// Whether this attempt should fail before the callee executes.
    fn should_fail_call(&self, method: &str) -> bool {
        if !self.applies_to(method) {
            return false;
        }
        if self.unavailable.load(Ordering::SeqCst) {
            return true;
        }
        if Self::take_token(&self.fail_next) {
            return true;
        }
        let p = self.unavailable_permille.load(Ordering::SeqCst);
        p > 0 && self.roll_permille() < p
    }

    /// Whether this successful execution's reply should be lost.
    fn should_lose_reply(&self, method: &str) -> bool {
        if !self.applies_to(method) {
            return false;
        }
        if Self::take_token(&self.lose_next) {
            return true;
        }
        let p = self.reply_lost_permille.load(Ordering::SeqCst);
        p > 0 && self.roll_permille() < p
    }
}

/// Exponential backoff with jitter, applied between attempts of a
/// retryable call. Backoff is charged against the call budget in virtual
/// time — nothing here sleeps (the repo's sleep discipline).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts per call (first try included).
    pub max_attempts: usize,
    /// Backoff before the second attempt, microseconds.
    pub base_backoff_us: u64,
    /// Backoff ceiling, microseconds.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_us: 1_000,
            max_backoff_us: 100_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged after failed attempt number `attempt` (1-based):
    /// exponential, capped, with ±50% deterministic jitter from `roll`.
    pub fn backoff_us(&self, attempt: usize, roll: u32) -> u64 {
        let shift = attempt.min(16) as u32;
        let exp = self
            .base_backoff_us
            .saturating_mul(1u64 << shift.saturating_sub(1))
            .min(self.max_backoff_us);
        // Half fixed, half jittered: [exp/2, exp].
        exp / 2 + (u64::from(roll) % (exp / 2 + 1))
    }
}

/// Per-method counters and latency samples. Latencies are the *virtual*
/// per-call totals (injected attempt latencies + backoffs), so percentile
/// assertions are deterministic under a seeded profile.
///
/// `latency_us` is a seeded uniform *reservoir sample* of every completed
/// call, not a first-N prefix: on a soak that records millions of calls,
/// percentiles track the whole stream rather than its startup phase.
#[derive(Debug, Clone, Default)]
pub struct MethodStats {
    /// Calls issued (one per `call()` invocation).
    pub calls: u64,
    /// Attempts across all calls (≥ `calls`; the excess is retries).
    pub attempts: u64,
    /// Calls that returned `Ok` to the caller.
    pub ok: u64,
    /// Calls that returned `Err` to the caller.
    pub err: u64,
    /// Attempts failed by injected pre-execution unavailability.
    pub injected_unavailable: u64,
    /// Successful executions whose reply was injected-lost.
    pub injected_reply_lost: u64,
    /// Calls that exhausted their budget.
    pub deadline_exceeded: u64,
    /// Attempts shed by the admission interceptor (never executed).
    pub admission_shed: u64,
    /// Attempts admitted only after a virtual queueing delay.
    pub admission_queued: u64,
    /// Latencies offered to the reservoir over the channel's lifetime
    /// (≥ `latency_us.len()`; the excess was sampled out).
    pub latency_seen: u64,
    /// Virtual latency per completed call, microseconds — a uniform
    /// reservoir sample of at most [`MAX_LATENCY_SAMPLES`] values.
    pub latency_us: Vec<u64>,
}

impl MethodStats {
    /// Percentile summary of the recorded call latencies.
    pub fn percentiles(&self) -> Percentiles {
        let mut samples = self.latency_us.clone();
        Percentiles::compute(&mut samples)
    }
}

/// Latency samples kept per method (reservoir capacity): enough for
/// stable p99s, bounded for long soaks.
pub const MAX_LATENCY_SAMPLES: usize = 65_536;

/// Internal per-method record: the counters plus the seeded reservoir
/// the public [`MethodStats`] snapshot is materialized from.
#[derive(Debug)]
struct MethodRecord {
    calls: u64,
    attempts: u64,
    ok: u64,
    err: u64,
    injected_unavailable: u64,
    injected_reply_lost: u64,
    deadline_exceeded: u64,
    admission_shed: u64,
    admission_queued: u64,
    latency: Reservoir,
}

impl MethodRecord {
    fn new(seed: u64) -> Self {
        MethodRecord {
            calls: 0,
            attempts: 0,
            ok: 0,
            err: 0,
            injected_unavailable: 0,
            injected_reply_lost: 0,
            deadline_exceeded: 0,
            admission_shed: 0,
            admission_queued: 0,
            latency: Reservoir::new(MAX_LATENCY_SAMPLES, seed),
        }
    }

    fn to_stats(&self) -> MethodStats {
        MethodStats {
            calls: self.calls,
            attempts: self.attempts,
            ok: self.ok,
            err: self.err,
            injected_unavailable: self.injected_unavailable,
            injected_reply_lost: self.injected_reply_lost,
            deadline_exceeded: self.deadline_exceeded,
            admission_shed: self.admission_shed,
            admission_queued: self.admission_queued,
            latency_seen: self.latency.seen(),
            latency_us: self.latency.samples().to_vec(),
        }
    }
}

/// FNV-1a over the method name, folded into the channel seed, so each
/// method's reservoir is independently — and reproducibly — seeded.
fn method_seed(seed: u64, method: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in method.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^ h
}

/// Per-method metrics for one channel, drainable by tests and benches.
#[derive(Debug)]
pub struct RpcMetrics {
    seed: u64,
    methods: Mutex<HashMap<String, MethodRecord>>,
}

impl Default for RpcMetrics {
    fn default() -> Self {
        RpcMetrics::with_seed(0x5EED_1E55)
    }
}

impl RpcMetrics {
    /// Metrics whose per-method latency reservoirs derive from `seed`
    /// (deterministic under `VORTEX_CHAOS_SEED`-seeded configs).
    pub fn with_seed(seed: u64) -> Self {
        RpcMetrics {
            seed,
            methods: Mutex::new(HashMap::new()),
        }
    }

    fn with<R>(&self, method: &str, f: impl FnOnce(&mut MethodRecord) -> R) -> R {
        let mut map = self.methods.lock();
        match map.get_mut(method) {
            Some(rec) => f(rec),
            None => {
                let rec = map
                    .entry(method.to_string())
                    .or_insert_with(|| MethodRecord::new(method_seed(self.seed, method)));
                f(rec)
            }
        }
    }

    /// Snapshot of every method's stats.
    pub fn snapshot(&self) -> HashMap<String, MethodStats> {
        self.methods
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.to_stats()))
            .collect()
    }

    /// One method's stats (zeros if never called).
    pub fn method(&self, method: &str) -> MethodStats {
        self.methods
            .lock()
            .get(method)
            .map(|r| r.to_stats())
            .unwrap_or_default()
    }

    /// Snapshot and reset.
    pub fn drain(&self) -> HashMap<String, MethodStats> {
        std::mem::take(&mut *self.methods.lock())
            .iter()
            .map(|(k, v)| (k.clone(), v.to_stats()))
            .collect()
    }

    /// Total calls across all methods.
    pub fn total_calls(&self) -> u64 {
        self.methods.lock().values().map(|m| m.calls).sum()
    }
}

/// Static configuration of one [`RpcChannel`].
#[derive(Debug, Clone)]
pub struct RpcChannelConfig {
    /// Per-call budget in virtual microseconds: injected attempt latency
    /// plus backoffs may not exceed it (the deadline).
    pub call_budget_us: u64,
    /// Retry policy for retryable failures.
    pub retry: RetryPolicy,
    /// Per-attempt injected latency distribution (`None` = zero latency).
    pub latency: Option<LogNormal>,
    /// Whether injected latency also advances the shared [`SimClock`].
    /// Off by default: soaks already drive virtual time explicitly, and
    /// double-advancing would skew TrueTime-dependent assertions.
    pub advance_virtual_time: bool,
    /// Seed for the channel's samplers and the fault plan.
    pub seed: u64,
}

impl Default for RpcChannelConfig {
    fn default() -> Self {
        RpcChannelConfig {
            call_budget_us: 30_000_000,
            retry: RetryPolicy::default(),
            latency: None,
            advance_virtual_time: false,
            seed: 0x5EED_1E55,
        }
    }
}

/// One logical connection to a service endpoint. Shared (`Arc`) by every
/// consumer of that endpoint so the fault plan, metrics, and transport
/// ledger see the union of real traffic.
pub struct RpcChannel {
    name: String,
    cfg: RpcChannelConfig,
    faults: Arc<RpcFaultPlan>,
    metrics: RpcMetrics,
    clock: Option<SimClock>,
    transport: Mutex<AdaptiveTransport>,
    /// Admission hook consulted before every attempt (`vortex-admission`
    /// installs its controller here at region wiring time).
    interceptor: Mutex<Option<Arc<dyn RpcInterceptor>>>,
    latency_rng: Mutex<StdRng>,
    /// Virtual "now" for channels with no shared clock: advances by each
    /// call's injected latency so transport rate-windows stay meaningful.
    fallback_now_us: AtomicU64,
}

impl std::fmt::Debug for RpcChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcChannel")
            .field("name", &self.name)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl RpcChannel {
    /// Builds a channel. `clock` is the region's shared virtual clock, if
    /// any; it timestamps transport traffic and (optionally) absorbs
    /// injected latency.
    pub fn new(name: &str, cfg: RpcChannelConfig, clock: Option<SimClock>) -> Arc<Self> {
        let faults = Arc::new(RpcFaultPlan::new(cfg.seed ^ 0x9E37_79B9));
        let latency_rng = Mutex::new(StdRng::seed_from_u64(cfg.seed));
        let metrics = RpcMetrics::with_seed(cfg.seed);
        Arc::new(RpcChannel {
            name: name.to_string(),
            cfg,
            faults,
            metrics,
            clock,
            transport: Mutex::new(AdaptiveTransport::with_defaults()),
            interceptor: Mutex::new(None),
            latency_rng,
            fallback_now_us: AtomicU64::new(0),
        })
    }

    /// The channel's display name (e.g. `"sms"`, `"server"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The channel's fault plan (shared; flip knobs while traffic flows).
    pub fn faults(&self) -> &RpcFaultPlan {
        &self.faults
    }

    /// Per-method call metrics.
    pub fn metrics(&self) -> &RpcMetrics {
        &self.metrics
    }

    /// The accumulated transport cost ledger (§5.4.2), fed by real calls.
    pub fn ledger(&self) -> crate::transport::TransportLedger {
        self.transport.lock().ledger()
    }

    /// Current transport mode of the channel's connection.
    pub fn transport_kind(&self) -> crate::transport::TransportKind {
        self.transport.lock().kind()
    }

    /// Whether the channel's connection currently allows pipelining.
    pub fn supports_pipelining(&self) -> bool {
        self.transport.lock().supports_pipelining()
    }

    /// Requests currently in flight on the transport — must return to
    /// zero when no call is executing, whatever mix of successes,
    /// injected faults, and deadline misses preceded (the flow-control
    /// release discipline).
    pub fn transport_in_flight(&self) -> u64 {
        self.transport.lock().in_flight()
    }

    /// Installs the admission interceptor consulted before every attempt.
    pub fn set_interceptor(&self, interceptor: Arc<dyn RpcInterceptor>) {
        *self.interceptor.lock() = Some(interceptor);
    }

    /// Removes the admission interceptor (control configurations).
    pub fn clear_interceptor(&self) {
        *self.interceptor.lock() = None;
    }

    fn now(&self) -> Timestamp {
        match &self.clock {
            Some(c) => c.now(),
            None => Timestamp(self.fallback_now_us.load(Ordering::Relaxed)),
        }
    }

    fn sample_latency_us(&self) -> u64 {
        match &self.cfg.latency {
            Some(d) => d.sample(&mut *self.latency_rng.lock()),
            None => 0,
        }
    }

    fn absorb_latency(&self, us: u64) {
        if us == 0 {
            return;
        }
        match &self.clock {
            Some(c) if self.cfg.advance_virtual_time => {
                c.advance(us);
            }
            Some(_) => {}
            None => {
                self.fallback_now_us.fetch_add(us, Ordering::Relaxed);
            }
        }
    }

    /// Issues one RPC: `f` is the in-process callee. Injected latency and
    /// backoff accrue against the call budget; pre-execution faults are
    /// retried for every method; ambiguous acks follow `kind` (see the
    /// module docs). Returns the callee's result, an injected
    /// [`VortexError::Unavailable`], [`VortexError::ResourceExhausted`]
    /// from the admission interceptor, or [`VortexError::DeadlineExceeded`].
    pub fn call<T>(
        &self,
        method: &'static str,
        kind: CallKind,
        f: impl FnMut() -> VortexResult<T>,
    ) -> VortexResult<T> {
        self.call_sized(method, kind, 0, f)
    }

    /// [`RpcChannel::call`] with an explicit payload size, charged against
    /// the admission interceptor's bytes/s quota buckets. Call sites that
    /// move bulk data (`append`) use this so multi-tenant byte quotas see
    /// real volume; metadata calls use `call` (zero bytes — only the
    /// requests/s bucket is charged).
    pub fn call_sized<T>(
        &self,
        method: &'static str,
        kind: CallKind,
        payload_bytes: u64,
        mut f: impl FnMut() -> VortexResult<T>,
    ) -> VortexResult<T> {
        self.metrics.with(method, |m| m.calls += 1);
        // Interceptor + context are captured once per call: a class/tenant
        // scope installed mid-call must not split one call's accounting.
        let interceptor = self.interceptor.lock().clone();
        let ctx = current_ctx();
        let mut consumed_us = 0u64;
        let mut attempt = 0usize;
        let finish = |consumed_us: u64, ok: bool| {
            self.metrics.with(method, |m| {
                if ok {
                    m.ok += 1;
                } else {
                    m.err += 1;
                }
                m.latency.record(consumed_us);
            });
            if let Some(i) = &interceptor {
                i.complete(&self.name, method, ctx, consumed_us, ok);
            }
        };
        // Retry backoff is absorbed into virtual time (not just charged to
        // the budget) so quota buckets refill while a shed caller waits.
        let backoff = |us: u64, consumed_us: &mut u64| {
            self.absorb_latency(us);
            *consumed_us = consumed_us.saturating_add(us);
        };
        loop {
            attempt += 1;
            self.metrics.with(method, |m| m.attempts += 1);
            let lat = self.sample_latency_us();
            self.absorb_latency(lat);
            consumed_us = consumed_us.saturating_add(lat);
            if consumed_us > self.cfg.call_budget_us {
                self.metrics.with(method, |m| m.deadline_exceeded += 1);
                finish(consumed_us, false);
                return Err(VortexError::DeadlineExceeded {
                    method: method.to_string(),
                    budget_us: self.cfg.call_budget_us,
                });
            }
            // Admission: decide this attempt before the callee sees it.
            // Shedding happens pre-execution, so it is safe to retry for
            // any CallKind — with the server's hint instead of blind
            // exponential backoff.
            if let Some(i) = &interceptor {
                let remaining = self.cfg.call_budget_us.saturating_sub(consumed_us);
                match i.admit(
                    &self.name,
                    method,
                    ctx,
                    payload_bytes,
                    self.now(),
                    remaining,
                ) {
                    Ok(queued_us) => {
                        if queued_us > 0 {
                            self.metrics.with(method, |m| m.admission_queued += 1);
                            self.absorb_latency(queued_us);
                            consumed_us = consumed_us.saturating_add(queued_us);
                        }
                        if consumed_us > self.cfg.call_budget_us {
                            // The admission queue wait blew the deadline.
                            i.release(ctx);
                            self.metrics.with(method, |m| m.deadline_exceeded += 1);
                            finish(consumed_us, false);
                            return Err(VortexError::DeadlineExceeded {
                                method: method.to_string(),
                                budget_us: self.cfg.call_budget_us,
                            });
                        }
                    }
                    Err(e) => {
                        self.metrics.with(method, |m| m.admission_shed += 1);
                        if attempt < self.cfg.retry.max_attempts {
                            let us = e.retry_after_us().unwrap_or_else(|| {
                                self.cfg
                                    .retry
                                    .backoff_us(attempt, self.faults.roll_permille())
                            });
                            backoff(us, &mut consumed_us);
                            continue;
                        }
                        finish(consumed_us, false);
                        return Err(e);
                    }
                }
            }
            self.transport.lock().on_request(self.now());
            // Pre-execution fault: the callee never ran, so a retry is
            // safe regardless of idempotency.
            if self.faults.should_fail_call(method) {
                self.transport.lock().on_response();
                if let Some(i) = &interceptor {
                    i.release(ctx);
                }
                self.metrics.with(method, |m| m.injected_unavailable += 1);
                if attempt < self.cfg.retry.max_attempts {
                    let us = self
                        .cfg
                        .retry
                        .backoff_us(attempt, self.faults.roll_permille());
                    backoff(us, &mut consumed_us);
                    continue;
                }
                finish(consumed_us, false);
                return Err(VortexError::Unavailable(format!(
                    "rpc {}.{method}: injected unavailability",
                    self.name
                )));
            }
            let result = f();
            self.transport.lock().on_response();
            if let Some(i) = &interceptor {
                i.release(ctx);
            }
            // Post-execution reply loss: the callee DID run.
            if result.is_ok() && self.faults.should_lose_reply(method) {
                self.metrics.with(method, |m| m.injected_reply_lost += 1);
                match kind {
                    CallKind::Idempotent => {
                        if attempt < self.cfg.retry.max_attempts {
                            let us = self
                                .cfg
                                .retry
                                .backoff_us(attempt, self.faults.roll_permille());
                            backoff(us, &mut consumed_us);
                            continue;
                        }
                        finish(consumed_us, false);
                        return Err(VortexError::Unavailable(format!(
                            "rpc {}.{method}: reply lost",
                            self.name
                        )));
                    }
                    CallKind::NonIdempotent => {
                        finish(consumed_us, false);
                        return Err(VortexError::Unavailable(format!(
                            "rpc {}.{method}: reply lost after execute",
                            self.name
                        )));
                    }
                }
            }
            match result {
                Ok(v) => {
                    finish(consumed_us, true);
                    return Ok(v);
                }
                Err(e) => {
                    if kind == CallKind::Idempotent
                        && e.is_retryable()
                        && attempt < self.cfg.retry.max_attempts
                    {
                        // A callee-raised ResourceExhausted carries the
                        // server's own backoff hint; honor it.
                        let us = e.retry_after_us().unwrap_or_else(|| {
                            self.cfg
                                .retry
                                .backoff_us(attempt, self.faults.roll_permille())
                        });
                        backoff(us, &mut consumed_us);
                        continue;
                    }
                    finish(consumed_us, false);
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn channel(cfg: RpcChannelConfig) -> Arc<RpcChannel> {
        RpcChannel::new("test", cfg, None)
    }

    #[test]
    fn pre_execute_faults_retry_for_any_kind() {
        for kind in [CallKind::Idempotent, CallKind::NonIdempotent] {
            let ch = channel(RpcChannelConfig::default());
            ch.faults().fail_next_calls(2);
            let executed = AtomicUsize::new(0);
            let out = ch.call("m", kind, || {
                executed.fetch_add(1, Ordering::SeqCst);
                Ok(7u32)
            });
            assert_eq!(out.unwrap(), 7);
            assert_eq!(executed.load(Ordering::SeqCst), 1, "callee ran once");
            let m = ch.metrics().method("m");
            assert_eq!(m.attempts, 3);
            assert_eq!(m.injected_unavailable, 2);
            assert_eq!(m.ok, 1);
        }
    }

    #[test]
    fn reply_lost_reexecutes_only_idempotent() {
        let ch = channel(RpcChannelConfig::default());
        ch.faults().lose_next_replies(1);
        let executed = AtomicUsize::new(0);
        let out = ch.call("m", CallKind::Idempotent, || {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        assert!(out.is_ok());
        assert_eq!(executed.load(Ordering::SeqCst), 2, "idempotent re-runs");

        let ch = channel(RpcChannelConfig::default());
        ch.faults().lose_next_replies(1);
        let executed = AtomicUsize::new(0);
        let out = ch.call("m", CallKind::NonIdempotent, || {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        match out {
            Err(VortexError::Unavailable(msg)) => {
                assert!(msg.contains("reply lost after execute"), "{msg}");
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert_eq!(
            executed.load(Ordering::SeqCst),
            1,
            "non-idempotent must not re-run"
        );
        assert_eq!(ch.metrics().method("m").injected_reply_lost, 1);
    }

    #[test]
    fn real_retryable_errors_retry_idempotent_only() {
        let ch = channel(RpcChannelConfig::default());
        let executed = AtomicUsize::new(0);
        let out = ch.call("m", CallKind::Idempotent, || {
            let n = executed.fetch_add(1, Ordering::SeqCst);
            if n < 2 {
                Err(VortexError::Unavailable("flaky".into()))
            } else {
                Ok(42u32)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(executed.load(Ordering::SeqCst), 3);

        let executed = AtomicUsize::new(0);
        let out: VortexResult<()> = ch.call("n", CallKind::NonIdempotent, || {
            executed.fetch_add(1, Ordering::SeqCst);
            Err(VortexError::Unavailable("flaky".into()))
        });
        assert!(out.is_err());
        assert_eq!(executed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn non_retryable_errors_pass_through() {
        let ch = channel(RpcChannelConfig::default());
        let executed = AtomicUsize::new(0);
        let out: VortexResult<()> = ch.call("m", CallKind::Idempotent, || {
            executed.fetch_add(1, Ordering::SeqCst);
            Err(VortexError::NotFound("x".into()))
        });
        assert!(matches!(out, Err(VortexError::NotFound(_))));
        assert_eq!(executed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deadline_exceeded_when_latency_exhausts_budget() {
        let cfg = RpcChannelConfig {
            call_budget_us: 10,
            latency: Some(LogNormal::from_median_p99(1_000.0, 3_000.0)),
            ..RpcChannelConfig::default()
        };
        let ch = channel(cfg);
        let executed = AtomicUsize::new(0);
        let out: VortexResult<()> = ch.call("m", CallKind::Idempotent, || {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        match out {
            Err(VortexError::DeadlineExceeded { method, budget_us }) => {
                assert_eq!(method, "m");
                assert_eq!(budget_us, 10);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(executed.load(Ordering::SeqCst), 0, "deadline fires first");
        assert_eq!(ch.metrics().method("m").deadline_exceeded, 1);
    }

    #[test]
    fn method_filter_scopes_injection() {
        let ch = channel(RpcChannelConfig::default());
        ch.faults().set_method_filter(Some("append"));
        ch.faults().set_unavailable(true);
        assert!(ch
            .call("get_table", CallKind::Idempotent, || Ok(()))
            .is_ok());
        assert!(ch.call("append", CallKind::Idempotent, || Ok(())).is_err());
        ch.faults().clear();
        assert!(ch.call("append", CallKind::Idempotent, || Ok(())).is_ok());
    }

    #[test]
    fn hot_request_rate_switches_transport_to_bidi() {
        // The §5.4.2 adaptive switch, now fired by real channel traffic:
        // with no clock, virtual now stands still, so a burst of calls is
        // "infinitely hot" and must upgrade to the bi-di connection.
        let ch = channel(RpcChannelConfig::default());
        for _ in 0..20 {
            ch.call("append", CallKind::Idempotent, || Ok(())).unwrap();
        }
        assert!(ch.supports_pipelining(), "hot stream should be on bi-di");
        let ledger = ch.ledger();
        assert!(ledger.bidi_requests > 0, "{ledger:?}");
        assert!(ledger.switches >= 1);
    }

    #[test]
    fn latency_percentiles_track_injected_profile() {
        let cfg = RpcChannelConfig {
            latency: Some(LogNormal::from_median_p99(10_000.0, 30_000.0)),
            ..RpcChannelConfig::default()
        };
        let ch = channel(cfg);
        for _ in 0..4_000 {
            ch.call("m", CallKind::Idempotent, || Ok(())).unwrap();
        }
        let stats = ch.metrics().method("m");
        assert_eq!(stats.calls, 4_000);
        let p = stats.percentiles();
        assert!(
            (7_000..14_000).contains(&p.p50),
            "p50 {}us should be ~10ms",
            p.p50
        );
        assert!(
            (20_000..45_000).contains(&p.p99),
            "p99 {}us should be ~30ms",
            p.p99
        );
    }

    #[test]
    fn reservoir_percentiles_track_overall_stream_not_prefix() {
        // Regression: latency retention used to keep only the *first*
        // MAX_LATENCY_SAMPLES values per method, so a long soak whose
        // latency profile shifted after startup reported startup-biased
        // percentiles forever. The seeded reservoir must instead sample
        // the whole stream uniformly: 65,536 fast calls followed by
        // 2×65,536 slow calls has an overall p50 of the slow value.
        let ch = channel(RpcChannelConfig::default());
        let m = ch.metrics();
        for _ in 0..MAX_LATENCY_SAMPLES {
            m.with("m", |r| {
                r.ok += 1;
                r.latency.record(1_000);
            });
        }
        for _ in 0..2 * MAX_LATENCY_SAMPLES {
            m.with("m", |r| {
                r.ok += 1;
                r.latency.record(100_000);
            });
        }
        let stats = m.method("m");
        assert_eq!(stats.latency_seen, 3 * MAX_LATENCY_SAMPLES as u64);
        assert_eq!(stats.latency_us.len(), MAX_LATENCY_SAMPLES);
        let p = stats.percentiles();
        assert_eq!(
            p.p50, 100_000,
            "p50 must track the overall stream (2/3 slow), not the fast prefix"
        );
        // The fast prefix is 1/3 of the stream; the uniform sample keeps
        // roughly that share, not 100% of it.
        let lows = stats.latency_us.iter().filter(|&&v| v == 1_000).count();
        let (lo, hi) = (MAX_LATENCY_SAMPLES / 5, MAX_LATENCY_SAMPLES / 2);
        assert!((lo..hi).contains(&lows), "prefix share {lows} not ~1/3");
    }

    #[test]
    fn reservoir_sample_is_deterministic_per_channel_seed() {
        let run = |seed: u64| {
            let cfg = RpcChannelConfig {
                seed,
                ..RpcChannelConfig::default()
            };
            let ch = channel(cfg);
            for v in 0..(MAX_LATENCY_SAMPLES as u64 + 10_000) {
                ch.metrics().with("m", |r| r.latency.record(v));
            }
            ch.metrics().method("m").latency_us
        };
        assert_eq!(run(0xC8A5_0C8A), run(0xC8A5_0C8A));
        assert_ne!(run(0xC8A5_0C8A), run(0xC8A5_0C8B));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let r = RetryPolicy::default();
        let b1 = r.backoff_us(1, 0);
        let b4 = r.backoff_us(4, 0);
        let b20 = r.backoff_us(20, 999);
        assert!(b1 >= r.base_backoff_us / 2);
        assert!(b4 > b1);
        assert!(b20 <= r.max_backoff_us);
    }

    #[test]
    fn metrics_drain_resets() {
        let ch = channel(RpcChannelConfig::default());
        ch.call("m", CallKind::Idempotent, || Ok(())).unwrap();
        assert_eq!(ch.metrics().total_calls(), 1);
        let drained = ch.metrics().drain();
        assert_eq!(drained["m"].calls, 1);
        assert_eq!(ch.metrics().total_calls(), 0);
    }

    /// Test interceptor: sheds the first `shed_first` admits with a fixed
    /// `retry_after_us` hint, records every `now` it sees plus
    /// admit/release/complete counts.
    struct ShedFirst {
        shed_first: u32,
        retry_after_us: u64,
        admits: AtomicU64,
        sheds: AtomicU64,
        releases: AtomicU64,
        completes: AtomicU64,
        completed_ok: AtomicU64,
        nows: Mutex<Vec<u64>>,
        bytes: Mutex<Vec<u64>>,
    }

    impl ShedFirst {
        fn new(shed_first: u32, retry_after_us: u64) -> Arc<Self> {
            Arc::new(ShedFirst {
                shed_first,
                retry_after_us,
                admits: AtomicU64::new(0),
                sheds: AtomicU64::new(0),
                releases: AtomicU64::new(0),
                completes: AtomicU64::new(0),
                completed_ok: AtomicU64::new(0),
                nows: Mutex::new(Vec::new()),
                bytes: Mutex::new(Vec::new()),
            })
        }
    }

    impl RpcInterceptor for ShedFirst {
        fn admit(
            &self,
            _channel: &str,
            _method: &'static str,
            _ctx: CallCtx,
            payload_bytes: u64,
            now: Timestamp,
            _budget_remaining_us: u64,
        ) -> VortexResult<u64> {
            self.nows.lock().push(now.micros());
            self.bytes.lock().push(payload_bytes);
            let n = self.admits.fetch_add(1, Ordering::SeqCst);
            if n < u64::from(self.shed_first) {
                self.sheds.fetch_add(1, Ordering::SeqCst);
                return Err(VortexError::ResourceExhausted {
                    scope: "test bucket".into(),
                    retry_after_us: self.retry_after_us,
                });
            }
            Ok(0)
        }

        fn release(&self, _ctx: CallCtx) {
            self.releases.fetch_add(1, Ordering::SeqCst);
        }

        fn complete(
            &self,
            _channel: &str,
            _method: &'static str,
            _ctx: CallCtx,
            _latency_us: u64,
            ok: bool,
        ) {
            self.completes.fetch_add(1, Ordering::SeqCst);
            if ok {
                self.completed_ok.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    #[test]
    fn shed_attempts_back_off_by_the_server_hint() {
        // No shared clock: virtual "now" is the channel's fallback clock,
        // which advances only by absorbed latency/backoff. Shedding twice
        // with a 5,000us hint must therefore move the third attempt's
        // `now` to exactly 10,000us — hint-directed backoff, not blind
        // exponential.
        let ch = channel(RpcChannelConfig::default());
        let icpt = ShedFirst::new(2, 5_000);
        ch.set_interceptor(icpt.clone());
        let out = ch.call("m", CallKind::NonIdempotent, || Ok(9u32));
        assert_eq!(out.unwrap(), 9);
        assert_eq!(&*icpt.nows.lock(), &[0, 5_000, 10_000]);
        let m = ch.metrics().method("m");
        assert_eq!(m.admission_shed, 2);
        assert_eq!(m.attempts, 3);
        // Shedding is pre-execution: retrying a NonIdempotent call is safe.
        assert_eq!(icpt.completed_ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn callee_resource_exhausted_uses_hint_backoff() {
        let ch = channel(RpcChannelConfig::default());
        let icpt = ShedFirst::new(0, 0);
        ch.set_interceptor(icpt.clone());
        let failed = AtomicUsize::new(0);
        let out = ch.call("m", CallKind::Idempotent, || {
            if failed.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(VortexError::ResourceExhausted {
                    scope: "server-side limiter".into(),
                    retry_after_us: 7_000,
                })
            } else {
                Ok(())
            }
        });
        assert!(out.is_ok());
        // Second admit happens exactly one hint later — the callee's own
        // ResourceExhausted steered the retry delay.
        assert_eq!(&*icpt.nows.lock(), &[0, 7_000]);
    }

    #[test]
    fn shed_exhausting_attempts_surfaces_resource_exhausted() {
        let ch = channel(RpcChannelConfig::default());
        let icpt = ShedFirst::new(u32::MAX, 2_500);
        ch.set_interceptor(icpt.clone());
        let executed = AtomicUsize::new(0);
        let out: VortexResult<()> = ch.call("m", CallKind::Idempotent, || {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        match out {
            Err(VortexError::ResourceExhausted { retry_after_us, .. }) => {
                assert_eq!(retry_after_us, 2_500);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        assert_eq!(executed.load(Ordering::SeqCst), 0, "shed before execute");
        // Shed attempts were never admitted: no release, one complete.
        assert_eq!(icpt.releases.load(Ordering::SeqCst), 0);
        assert_eq!(icpt.completes.load(Ordering::SeqCst), 1);
        let m = ch.metrics().method("m");
        assert_eq!(m.admission_shed, m.attempts);
    }

    #[test]
    fn interceptor_release_pairs_with_every_admitted_attempt() {
        let ch = channel(RpcChannelConfig::default());
        let icpt = ShedFirst::new(0, 0);
        ch.set_interceptor(icpt.clone());
        // Successes, injected pre-execution faults, lost replies, and
        // callee errors: every admitted attempt must release exactly once.
        ch.call("m", CallKind::Idempotent, || Ok(())).unwrap();
        ch.faults().fail_next_calls(2);
        ch.call("m", CallKind::Idempotent, || Ok(())).unwrap();
        ch.faults().lose_next_replies(1);
        ch.call("m", CallKind::NonIdempotent, || Ok(()))
            .unwrap_err();
        let _ = ch.call("m", CallKind::Idempotent, || {
            Err::<(), _>(VortexError::NotFound("x".into()))
        });
        let admitted = icpt.admits.load(Ordering::SeqCst);
        assert_eq!(icpt.releases.load(Ordering::SeqCst), admitted);
        assert_eq!(icpt.completes.load(Ordering::SeqCst), 4);
        assert_eq!(ch.transport_in_flight(), 0);
    }

    #[test]
    fn call_sized_reports_payload_bytes_to_admission() {
        let ch = channel(RpcChannelConfig::default());
        let icpt = ShedFirst::new(0, 0);
        ch.set_interceptor(icpt.clone());
        ch.call_sized("append", CallKind::NonIdempotent, 4_096, || Ok(()))
            .unwrap();
        ch.call("get_table", CallKind::Idempotent, || Ok(()))
            .unwrap();
        assert_eq!(&*icpt.bytes.lock(), &[4_096, 0]);
    }

    #[test]
    fn call_ctx_scopes_nest_and_restore() {
        assert_eq!(current_ctx(), CallCtx::DEFAULT);
        {
            let _t = tenant_scope(7);
            let _c = class_scope(WorkClass::Background);
            assert_eq!(current_ctx().tenant, 7);
            assert_eq!(current_ctx().class, WorkClass::Background);
            {
                let _b = class_scope(WorkClass::Batch);
                let _tab = table_scope(TableId::from_raw(3));
                let ctx = current_ctx();
                assert_eq!(ctx.class, WorkClass::Batch);
                assert_eq!(ctx.tenant, 7, "tenant survives inner class scope");
                assert_eq!(ctx.table, Some(TableId::from_raw(3)));
            }
            assert_eq!(current_ctx().class, WorkClass::Background);
            assert_eq!(current_ctx().table, None);
        }
        assert_eq!(current_ctx(), CallCtx::DEFAULT);
    }

    #[test]
    fn channel_captures_ctx_at_call_start() {
        let ch = channel(RpcChannelConfig::default());
        let icpt = ShedFirst::new(0, 0);
        ch.set_interceptor(icpt.clone());
        let _bg = class_scope(WorkClass::Background);
        ch.call("gc_sweep", CallKind::Idempotent, || Ok(()))
            .unwrap();
        // The interceptor saw the scoped class (checked via admit count —
        // detailed ctx routing is covered in vortex-admission's tests).
        assert_eq!(icpt.admits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_call_burst_releases_all_in_flight_slots() {
        // Satellite regression: drive the transport into bi-di mode (the
        // only mode that tracks in-flight), then hammer it with every
        // failure shape — injected unavailability, callee errors, lost
        // replies, deadline misses — and require the in-flight window to
        // drain to zero. A leak here permanently exhausts flow control.
        let ch = channel(RpcChannelConfig::default());
        for _ in 0..20 {
            ch.call("warm", CallKind::Idempotent, || Ok(())).unwrap();
        }
        assert!(ch.supports_pipelining(), "must be on bi-di for the test");

        ch.faults().set_unavailable(true);
        for _ in 0..50 {
            ch.call("m", CallKind::Idempotent, || Ok(())).unwrap_err();
        }
        ch.faults().clear();
        for _ in 0..50 {
            let _ = ch.call("m", CallKind::NonIdempotent, || {
                Err::<(), _>(VortexError::Io("disk on fire".into()))
            });
        }
        ch.faults().set_reply_lost_permille(1_000);
        for _ in 0..50 {
            ch.call("m", CallKind::NonIdempotent, || Ok(()))
                .unwrap_err();
        }
        ch.faults().clear();
        assert_eq!(
            ch.transport_in_flight(),
            0,
            "a burst of failed calls must not leak in-flight slots"
        );
        // And the channel still works.
        ch.call("m", CallKind::Idempotent, || Ok(7u32)).unwrap();
    }
}
