//! Row values: the dynamic representation of semi-structured records.
//!
//! Clients "serialize structured or semi-structured input data to a binary
//! format" before appending (§4.2.2); [`Value`] is the in-memory form on
//! both sides of that wire format (see [`crate::codec`]). Values carry a
//! total order ([`Value::total_cmp`]) used for clustering-key ranges and
//! min/max column properties, and a canonical key encoding
//! ([`Value::encode_key`]) used for bloom filters and primary keys.

use std::cmp::Ordering;

use crate::schema::ChangeType;
use crate::truetime::Timestamp;

/// A dynamically-typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit IEEE float.
    Float64(f64),
    /// UTF-8 string.
    String(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Microseconds since epoch.
    Timestamp(Timestamp),
    /// Days since epoch.
    Date(i32),
    /// Fixed-point decimal scaled by 10^9.
    Numeric(i128),
    /// JSON text.
    Json(String),
    /// Nested record values, positionally matching the struct's fields.
    Struct(Vec<Value>),
    /// Repeated values.
    Array(Vec<Value>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOL",
            Value::Int64(_) => "INT64",
            Value::Float64(_) => "FLOAT64",
            Value::String(_) => "STRING",
            Value::Bytes(_) => "BYTES",
            Value::Timestamp(_) => "TIMESTAMP",
            Value::Date(_) => "DATE",
            Value::Numeric(_) => "NUMERIC",
            Value::Json(_) => "JSON",
            Value::Struct(_) => "STRUCT",
            Value::Array(_) => "ARRAY",
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int64(_) => 2,
            Value::Float64(_) => 3,
            Value::String(_) => 4,
            Value::Bytes(_) => 5,
            Value::Timestamp(_) => 6,
            Value::Date(_) => 7,
            Value::Numeric(_) => 8,
            Value::Json(_) => 9,
            Value::Struct(_) => 10,
            Value::Array(_) => 11,
        }
    }

    /// Numeric view for cross-type numeric comparisons (SQL coercion):
    /// `Numeric` is fixed-point scaled by 10^9.
    fn as_numeric_f64(&self) -> Option<f64> {
        match self {
            Value::Int64(i) => Some(*i as f64),
            Value::Float64(f) => Some(*f),
            Value::Numeric(n) => Some(*n as f64 / 1e9),
            _ => None,
        }
    }

    /// A total order over values. NULL sorts first; numeric types
    /// (INT64/FLOAT64/NUMERIC) compare numerically across each other (SQL
    /// coercion); remaining cross-type pairs order by a fixed type rank
    /// (they only arise in corrupted or mixed inputs — within a column
    /// the type is fixed by the schema).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (String(a), String(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Numeric(a), Numeric(b)) => a.cmp(b),
            (Json(a), Json(b)) => a.cmp(b),
            (Struct(a), Struct(b)) | (Array(a), Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => match (a.as_numeric_f64(), b.as_numeric_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => a.type_rank().cmp(&b.type_rank()),
            },
        }
    }

    /// Canonical byte encoding used for bloom-filter membership and primary
    /// key bytes. Injective per type (a type-tag byte prevents cross-type
    /// collisions like `Int64(0)` vs `Bool(false)`).
    pub fn encode_key(&self) -> Vec<u8> {
        let mut out = vec![self.type_rank()];
        match self {
            Value::Null => {}
            Value::Bool(b) => out.push(*b as u8),
            Value::Int64(i) => out.extend_from_slice(&i.to_le_bytes()),
            Value::Float64(f) => out.extend_from_slice(&f.to_bits().to_le_bytes()),
            Value::String(s) => out.extend_from_slice(s.as_bytes()),
            Value::Bytes(b) => out.extend_from_slice(b),
            Value::Timestamp(t) => out.extend_from_slice(&t.micros().to_le_bytes()),
            Value::Date(d) => out.extend_from_slice(&d.to_le_bytes()),
            Value::Numeric(n) => out.extend_from_slice(&n.to_le_bytes()),
            Value::Json(s) => out.extend_from_slice(s.as_bytes()),
            Value::Struct(vs) | Value::Array(vs) => {
                for v in vs {
                    let k = v.encode_key();
                    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    out.extend_from_slice(&k);
                }
            }
        }
        out
    }

    /// Equality consistent with [`Value::encode_key`], without allocating:
    /// two values are `key_eq` iff their `encode_key` bytes are equal.
    ///
    /// This differs from `PartialEq` for floats: `Float64` compares by bit
    /// pattern, so `NaN == NaN` and `-0.0 != 0.0`. Encoders (run-length
    /// detection, dictionary identity, the encoding chooser) must all use
    /// this one equality — mixing it with `PartialEq` lets the chooser's
    /// size estimate and the actual encoder disagree on NaN/-0.0 columns.
    pub fn key_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int64(a), Int64(b)) => a == b,
            (Float64(a), Float64(b)) => a.to_bits() == b.to_bits(),
            (String(a), String(b)) => a == b,
            (Bytes(a), Bytes(b)) => a == b,
            (Timestamp(a), Timestamp(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            (Numeric(a), Numeric(b)) => a == b,
            (Json(a), Json(b)) => a == b,
            (Struct(a), Struct(b)) | (Array(a), Array(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.key_eq(y))
            }
            _ => false,
        }
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts an `i64` if this is an `Int64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a `&str` if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a timestamp if this is a `Timestamp`.
    pub fn as_timestamp(&self) -> Option<Timestamp> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used by flow control and
    /// the 2 MB fragment write buffer accounting.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int64(_) | Value::Float64(_) | Value::Timestamp(_) => 8,
            Value::Date(_) => 4,
            Value::Numeric(_) => 16,
            Value::String(s) | Value::Json(s) => 4 + s.len(),
            Value::Bytes(b) => 4 + b.len(),
            Value::Struct(vs) | Value::Array(vs) => {
                4 + vs.iter().map(Value::approx_bytes).sum::<usize>()
            }
        }
    }
}

/// A row: an ordered list of values plus its `_CHANGE_TYPE` (§4.2.6).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Column values in schema order.
    pub values: Vec<Value>,
    /// INSERT (default), UPSERT, or DELETE.
    pub change_type: ChangeType,
}

impl Row {
    /// An INSERT row.
    pub fn insert(values: Vec<Value>) -> Self {
        Row {
            values,
            change_type: ChangeType::Insert,
        }
    }

    /// A row with an explicit change type.
    pub fn with_change(values: Vec<Value>, change_type: ChangeType) -> Self {
        Row {
            values,
            change_type,
        }
    }

    /// Approximate serialized size, used for batch sizing and flow control.
    pub fn approx_bytes(&self) -> usize {
        1 + self.values.iter().map(Value::approx_bytes).sum::<usize>()
    }
}

/// A batch of rows supplied to one `AppendStream` call (§4.2.2's
/// `RowsSet`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowSet {
    /// The rows, in append order.
    pub rows: Vec<Row>,
}

impl RowSet {
    /// Creates a row set.
    pub fn new(rows: Vec<Row>) -> Self {
        RowSet { rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate serialized size of the whole batch.
    pub fn approx_bytes(&self) -> usize {
        self.rows.iter().map(Row::approx_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cmp_orders_within_types() {
        assert_eq!(Value::Int64(1).total_cmp(&Value::Int64(2)), Ordering::Less);
        assert_eq!(
            Value::String("b".into()).total_cmp(&Value::String("a".into())),
            Ordering::Greater
        );
        assert_eq!(
            Value::Float64(f64::NAN).total_cmp(&Value::Float64(f64::NAN)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Float64(-0.0).total_cmp(&Value::Float64(0.0)),
            Ordering::Less
        );
    }

    #[test]
    fn numeric_types_coerce_in_comparisons() {
        assert_eq!(
            Value::Int64(2).total_cmp(&Value::Float64(2.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float64(3.0).total_cmp(&Value::Int64(3)),
            Ordering::Equal
        );
        // Numeric(2_500_000_000) == 2.5
        assert_eq!(
            Value::Numeric(2_500_000_000).total_cmp(&Value::Float64(2.5)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Int64(3).total_cmp(&Value::Numeric(2_500_000_000)),
            Ordering::Greater
        );
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(
            Value::Null.total_cmp(&Value::Int64(i64::MIN)),
            Ordering::Less
        );
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn arrays_compare_lexicographically() {
        let a = Value::Array(vec![Value::Int64(1), Value::Int64(2)]);
        let b = Value::Array(vec![Value::Int64(1), Value::Int64(3)]);
        let c = Value::Array(vec![Value::Int64(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }

    #[test]
    fn encode_key_injective_across_types() {
        let pairs = [
            (Value::Int64(0), Value::Bool(false)),
            (Value::String("1".into()), Value::Int64(1)),
            (Value::Bytes(b"x".to_vec()), Value::String("x".into())),
            (Value::Null, Value::Bool(false)),
        ];
        for (a, b) in pairs {
            assert_ne!(a.encode_key(), b.encode_key(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn encode_key_nested_lengths_prevent_ambiguity() {
        // ["ab","c"] must not collide with ["a","bc"].
        let a = Value::Array(vec![Value::String("ab".into()), Value::String("c".into())]);
        let b = Value::Array(vec![Value::String("a".into()), Value::String("bc".into())]);
        assert_ne!(a.encode_key(), b.encode_key());
    }

    #[test]
    fn approx_bytes_scales_with_content() {
        let small = Row::insert(vec![Value::Int64(1)]);
        let big = Row::insert(vec![Value::String("x".repeat(1000))]);
        assert!(big.approx_bytes() > small.approx_bytes() + 900);
        let rs = RowSet::new(vec![small.clone(), big]);
        assert_eq!(rs.len(), 2);
        assert!(rs.approx_bytes() > 1000);
        assert!(!rs.is_empty());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int64(7).as_i64(), Some(7));
        assert_eq!(Value::Bool(true).as_i64(), None);
        assert_eq!(Value::String("s".into()).as_str(), Some("s"));
        assert!(Value::Null.is_null());
        assert_eq!(
            Value::Timestamp(Timestamp(9)).as_timestamp(),
            Some(Timestamp(9))
        );
    }
}
