//! A TrueTime-style clock with bounded uncertainty.
//!
//! Vortex stamps every 2 MB fragment write with "a single server-assigned
//! TrueTime timestamp for all rows in the write" and relies on the clock
//! skew being "bounded ... in single digit milliseconds, regardless of the
//! Stream Server" (§5.4.4), so that snapshot reads see exactly the data
//! committed before the snapshot.
//!
//! The substitute here keeps TrueTime's contract — [`TrueTime::now`]
//! returns an interval `[earliest, latest]` guaranteed to contain real
//! "now", and [`TrueTime::commit_wait`] blocks until a timestamp is safely
//! in the past — over two interchangeable clock sources:
//!
//! - a system clock (wall time, for real runs), and
//! - a [`SimClock`] (virtual time that tests and the latency benchmarks can
//!   advance instantly, so "two weeks of traffic" takes milliseconds).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A timestamp in microseconds since the Unix epoch (or since simulation
/// start when driven by a [`SimClock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp; reads at `MIN` see nothing.
    pub const MIN: Timestamp = Timestamp(0);
    /// The maximal timestamp; reads at `MAX` see everything committed.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Microseconds since epoch.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Builds a timestamp from microseconds since epoch.
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Returns this timestamp advanced by `us` microseconds (saturating).
    pub const fn plus_micros(self, us: u64) -> Self {
        Timestamp(self.0.saturating_add(us))
    }

    /// Returns this timestamp moved back by `us` microseconds (saturating).
    pub const fn minus_micros(self, us: u64) -> Self {
        Timestamp(self.0.saturating_sub(us))
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}us", self.0)
    }
}

/// An uncertainty interval returned by [`TrueTime::now`]: the true absolute
/// time is guaranteed to lie within `[earliest, latest]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtInterval {
    /// Lower bound on the true time.
    pub earliest: Timestamp,
    /// Upper bound on the true time.
    pub latest: Timestamp,
}

impl TtInterval {
    /// The interval half-width in microseconds.
    pub fn epsilon_micros(&self) -> u64 {
        (self.latest.0 - self.earliest.0) / 2
    }
}

/// A manually-advanced virtual clock shared across simulated components.
///
/// Cheap to clone (internally an `Arc`). All readers observe a single
/// monotonic timeline.
///
/// Besides the raw counter, the clock owns a shared **issuance register**
/// used by every [`TrueTime`] instance built over it: each issued record
/// or snapshot timestamp is strictly greater than anything issued before
/// it, across all instances (a hybrid logical clock). Real time gives
/// this for free because the clock never stands still between events;
/// virtual time must synthesize it, or two appends landing between two
/// `advance` calls would share a timestamp and snapshot reads taken
/// between them would not be repeatable.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
    issued: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a virtual clock starting at `start_micros`.
    pub fn new(start_micros: u64) -> Self {
        Self {
            micros: Arc::new(AtomicU64::new(start_micros)),
            issued: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.micros.load(Ordering::SeqCst))
    }

    /// Advances the clock by `us` microseconds and returns the new time.
    pub fn advance(&self, us: u64) -> Timestamp {
        Timestamp(self.micros.fetch_add(us, Ordering::SeqCst) + us)
    }

    /// Advances the clock to at least `target` (no-op if already past).
    pub fn advance_to(&self, target: Timestamp) {
        self.micros.fetch_max(target.0, Ordering::SeqCst);
    }

    /// Issues a timestamp that is `>= candidate` and strictly greater
    /// than every timestamp issued before this call, clock-domain-wide.
    pub fn issue_after(&self, candidate: u64) -> Timestamp {
        let mut cur = self.issued.load(Ordering::SeqCst);
        loop {
            let t = candidate.max(cur + 1);
            match self
                .issued
                .compare_exchange(cur, t, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Timestamp(t),
                Err(c) => cur = c,
            }
        }
    }
}

/// The clock source backing a [`TrueTime`] instance.
#[derive(Debug, Clone)]
enum ClockSource {
    /// Wall-clock time from the OS.
    System,
    /// Virtual time from a shared [`SimClock`].
    Sim(SimClock),
}

/// A TrueTime service instance.
///
/// Each Stream Server holds one; in simulation they can share a
/// [`SimClock`] while still observing per-instance skew (a fixed offset
/// within ±ε), which is exactly the failure TrueTime bounds.
#[derive(Debug, Clone)]
pub struct TrueTime {
    source: ClockSource,
    /// Half-width of the uncertainty interval, in microseconds. The paper
    /// cites "single digit milliseconds"; default is 3500us.
    epsilon_micros: u64,
    /// Per-instance skew applied to the underlying clock, bounded by
    /// `epsilon_micros` at construction. Models imperfect local clocks.
    skew_micros: i64,
    /// Enforces per-instance monotonicity of `now().latest`.
    last_latest: Arc<AtomicU64>,
}

/// Default uncertainty half-width (3.5 ms, "single digit milliseconds").
pub const DEFAULT_EPSILON_MICROS: u64 = 3_500;

impl TrueTime {
    /// A TrueTime instance over the system clock with the default ε.
    pub fn system() -> Self {
        Self {
            source: ClockSource::System,
            epsilon_micros: DEFAULT_EPSILON_MICROS,
            skew_micros: 0,
            last_latest: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A TrueTime instance over a shared simulated clock.
    ///
    /// `skew_micros` models this instance's local clock error and is
    /// clamped to ±ε so the interval contract still holds.
    pub fn simulated(clock: SimClock, epsilon_micros: u64, skew_micros: i64) -> Self {
        let bound = epsilon_micros as i64;
        Self {
            source: ClockSource::Sim(clock),
            epsilon_micros,
            skew_micros: skew_micros.clamp(-bound, bound),
            last_latest: Arc::new(AtomicU64::new(0)),
        }
    }

    fn raw_now(&self) -> u64 {
        let base = match &self.source {
            ClockSource::System => SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .expect("system clock before epoch")
                .as_micros() as u64,
            ClockSource::Sim(c) => c.now().0,
        };
        if self.skew_micros >= 0 {
            base.saturating_add(self.skew_micros as u64)
        } else {
            base.saturating_sub((-self.skew_micros) as u64)
        }
    }

    /// Returns the uncertainty interval containing the true current time.
    ///
    /// Successive calls on one instance have non-decreasing `latest`, so a
    /// server can use `now().latest` as a monotonic record timestamp.
    pub fn now(&self) -> TtInterval {
        let observed = self.raw_now();
        let latest_candidate = observed.saturating_add(self.epsilon_micros);
        // Enforce monotonic `latest` per instance.
        let prev = self
            .last_latest
            .fetch_max(latest_candidate, Ordering::SeqCst);
        let latest = prev.max(latest_candidate);
        TtInterval {
            earliest: Timestamp(observed.saturating_sub(self.epsilon_micros)),
            latest: Timestamp(latest),
        }
    }

    /// A server-assigned record timestamp: the upper bound of `now()`.
    ///
    /// Using `latest` guarantees the timestamp is not in the future of any
    /// other correctly-behaving instance by more than 2ε.
    ///
    /// Over a [`SimClock`], the timestamp is additionally **strictly
    /// greater than every record or snapshot timestamp issued earlier**
    /// anywhere in the clock domain: the virtual clock stands still
    /// between `advance` calls, so without this tie-break two appends in
    /// the same quiescent window would share a timestamp and a snapshot
    /// taken between them could not be read repeatably. (Real TrueTime
    /// gets the strictness from real time always moving.)
    pub fn record_timestamp(&self) -> Timestamp {
        let latest = self.now().latest;
        match &self.source {
            ClockSource::System => latest,
            ClockSource::Sim(c) => c.issue_after(latest.0),
        }
    }

    /// Blocks (or advances the sim clock) until `ts` is definitely in the
    /// past, i.e. `now().earliest > ts`. This is Spanner-style commit wait,
    /// what makes "a query is guaranteed to return data that was just
    /// written" (§5.4.4) true at snapshot timestamps.
    pub fn commit_wait(&self, ts: Timestamp) {
        loop {
            let now = self.now();
            if now.earliest > ts {
                return;
            }
            let deficit = ts.0 - now.earliest.0 + 1;
            match &self.source {
                ClockSource::System => {
                    std::thread::sleep(std::time::Duration::from_micros(deficit.min(1000)));
                }
                ClockSource::Sim(c) => {
                    c.advance(deficit);
                }
            }
        }
    }

    /// The configured uncertainty half-width.
    pub fn epsilon_micros(&self) -> u64 {
        self.epsilon_micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::new(100);
        assert_eq!(c.now(), Timestamp(100));
        assert_eq!(c.advance(50), Timestamp(150));
        c.advance_to(Timestamp(120)); // already past; no-op
        assert_eq!(c.now(), Timestamp(150));
        c.advance_to(Timestamp(500));
        assert_eq!(c.now(), Timestamp(500));
    }

    #[test]
    fn interval_contains_sim_time() {
        let c = SimClock::new(1_000_000);
        let tt = TrueTime::simulated(c.clone(), 2_000, 0);
        let iv = tt.now();
        assert!(iv.earliest <= Timestamp(1_000_000));
        assert!(iv.latest >= Timestamp(1_000_000));
        assert_eq!(iv.epsilon_micros(), 2_000);
    }

    #[test]
    fn skew_is_clamped_to_epsilon() {
        let c = SimClock::new(1_000_000);
        // Requested skew way beyond epsilon gets clamped, so the interval
        // still contains true time.
        let tt = TrueTime::simulated(c.clone(), 1_000, 50_000);
        let iv = tt.now();
        assert!(iv.earliest.0 <= 1_000_000, "earliest={:?}", iv.earliest);
        assert!(iv.latest.0 >= 1_000_000);
    }

    #[test]
    fn latest_is_monotonic_per_instance() {
        let c = SimClock::new(10_000);
        let tt = TrueTime::simulated(c.clone(), 100, 0);
        let a = tt.now().latest;
        // Even if sim time does not move, latest must not go backwards.
        let b = tt.now().latest;
        assert!(b >= a);
        c.advance(1_000);
        let d = tt.now().latest;
        assert!(d > b);
    }

    #[test]
    fn commit_wait_advances_sim_clock() {
        let c = SimClock::new(0);
        let tt = TrueTime::simulated(c.clone(), 500, 0);
        let ts = tt.record_timestamp(); // = now + eps
        tt.commit_wait(ts);
        let after = tt.now();
        assert!(after.earliest > ts, "commit_wait must pass ts");
    }

    #[test]
    fn two_skewed_instances_agree_within_2_eps() {
        let c = SimClock::new(5_000_000);
        let a = TrueTime::simulated(c.clone(), 3_000, 2_500);
        let b = TrueTime::simulated(c.clone(), 3_000, -2_500);
        let ta = a.record_timestamp().0 as i64;
        let tb = b.record_timestamp().0 as i64;
        assert!((ta - tb).unsigned_abs() <= 2 * 3_000 + 1);
    }

    #[test]
    fn system_clock_interval_sane() {
        let tt = TrueTime::system();
        let iv = tt.now();
        assert!(iv.latest > iv.earliest);
        assert!(iv.latest.0 > 1_600_000_000_000_000); // after 2020
    }

    #[test]
    fn record_timestamps_strictly_increase_without_clock_advance() {
        // Hybrid-logical-clock property: even with the virtual clock
        // frozen, issued timestamps never collide — so snapshots taken
        // between appends order them deterministically.
        let c = SimClock::new(1_000_000);
        let tt = TrueTime::simulated(c.clone(), 3_500, 0);
        let mut prev = tt.record_timestamp();
        for _ in 0..100 {
            let t = tt.record_timestamp();
            assert!(t > prev, "{t:?} !> {prev:?}");
            prev = t;
        }
        // Once the clock advances past the issuance register, stamps
        // track the clock again.
        c.advance(10_000_000);
        let t = tt.record_timestamp();
        assert_eq!(t.0, 11_000_000 + 3_500);
    }

    #[test]
    fn issuance_is_total_across_instances() {
        // Two skewed servers sharing one clock still issue a single
        // strictly-increasing sequence (cross-server external order).
        let c = SimClock::new(5_000);
        let a = TrueTime::simulated(c.clone(), 1_000, 900);
        let b = TrueTime::simulated(c.clone(), 1_000, -900);
        let mut prev = Timestamp(0);
        for i in 0..50 {
            let t = if i % 2 == 0 {
                a.record_timestamp()
            } else {
                b.record_timestamp()
            };
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn issue_after_is_race_free() {
        let c = SimClock::new(0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| c.issue_after(100).0).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "issued timestamps must be unique");
        assert!(all.iter().all(|t| *t >= 100));
    }

    #[test]
    fn timestamp_arith() {
        let t = Timestamp(100);
        assert_eq!(t.plus_micros(5), Timestamp(105));
        assert_eq!(t.minus_micros(200), Timestamp(0));
        assert_eq!(Timestamp::MAX.plus_micros(1), Timestamp::MAX);
    }
}
