//! Column properties: min/max statistics used for partition elimination.
//!
//! "Vortex performs partition elimination by maintaining column properties
//! such as min/max values and bloom filters for columns on which the data
//! is partitioned or clustered" (§7.2). The Stream Server accumulates
//! these per Streamlet/Fragment as data is written; the Storage Optimizer
//! and Big Metadata track them per ROS block.

use crate::codec::{decode_value, encode_value, get_uvarint, put_uvarint};
use crate::error::{VortexError, VortexResult};
use crate::row::Value;

/// Min/max (and null presence) for one column over some set of rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Smallest non-null value seen, if any.
    pub min: Option<Value>,
    /// Largest non-null value seen, if any.
    pub max: Option<Value>,
    /// Whether any NULL was seen.
    pub has_null: bool,
    /// Rows observed.
    pub count: u64,
}

impl ColumnStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one value into the stats.
    pub fn observe(&mut self, v: &Value) {
        self.count += 1;
        if v.is_null() {
            self.has_null = true;
            return;
        }
        match &self.min {
            Some(m) if m.total_cmp(v).is_le() => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v).is_ge() => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ColumnStats) {
        if let Some(m) = &other.min {
            match &self.min {
                Some(cur) if cur.total_cmp(m).is_le() => {}
                _ => self.min = Some(m.clone()),
            }
        }
        if let Some(m) = &other.max {
            match &self.max {
                Some(cur) if cur.total_cmp(m).is_ge() => {}
                _ => self.max = Some(m.clone()),
            }
        }
        self.has_null |= other.has_null;
        self.count += other.count;
    }

    /// Whether a point predicate `col == v` could match rows summarized
    /// by these stats.
    pub fn may_contain_point(&self, v: &Value) -> bool {
        if v.is_null() {
            return self.has_null;
        }
        match (&self.min, &self.max) {
            (Some(lo), Some(hi)) => lo.total_cmp(v).is_le() && hi.total_cmp(v).is_ge(),
            // No non-null values at all: only NULLs can match.
            _ => false,
        }
    }

    /// Whether a range predicate `lo <= col <= hi` (either bound optional)
    /// could match.
    pub fn may_overlap_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        let (Some(smin), Some(smax)) = (&self.min, &self.max) else {
            return false;
        };
        if let Some(lo) = lo {
            if smax.total_cmp(lo).is_lt() {
                return false;
            }
        }
        if let Some(hi) = hi {
            if smin.total_cmp(hi).is_gt() {
                return false;
            }
        }
        true
    }

    /// Binary serialization (embedded in heartbeats and ROS block
    /// metadata).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut flags = 0u8;
        if self.min.is_some() {
            flags |= 1;
        }
        if self.max.is_some() {
            flags |= 2;
        }
        if self.has_null {
            flags |= 4;
        }
        out.push(flags);
        put_uvarint(&mut out, self.count);
        if let Some(m) = &self.min {
            encode_value(&mut out, m);
        }
        if let Some(m) = &self.max {
            encode_value(&mut out, m);
        }
        out
    }

    /// Deserializes from [`ColumnStats::to_bytes`] output, advancing `pos`.
    pub fn from_bytes(buf: &[u8], pos: &mut usize) -> VortexResult<Self> {
        let flags = *buf
            .get(*pos)
            .ok_or_else(|| VortexError::Decode("stats flags truncated".into()))?;
        *pos += 1;
        let count = get_uvarint(buf, pos)?;
        let min = if flags & 1 != 0 {
            Some(decode_value(buf, pos)?)
        } else {
            None
        };
        let max = if flags & 2 != 0 {
            Some(decode_value(buf, pos)?)
        } else {
            None
        };
        Ok(ColumnStats {
            min,
            max,
            has_null: flags & 4 != 0,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_tracks_min_max_null() {
        let mut s = ColumnStats::new();
        s.observe(&Value::Int64(5));
        s.observe(&Value::Int64(-2));
        s.observe(&Value::Null);
        s.observe(&Value::Int64(9));
        assert_eq!(s.min, Some(Value::Int64(-2)));
        assert_eq!(s.max, Some(Value::Int64(9)));
        assert!(s.has_null);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn point_containment() {
        let mut s = ColumnStats::new();
        s.observe(&Value::String("f".into()));
        s.observe(&Value::String("m".into()));
        assert!(s.may_contain_point(&Value::String("g".into())));
        assert!(s.may_contain_point(&Value::String("f".into())));
        assert!(!s.may_contain_point(&Value::String("a".into())));
        assert!(!s.may_contain_point(&Value::String("z".into())));
        assert!(!s.may_contain_point(&Value::Null));
        s.observe(&Value::Null);
        assert!(s.may_contain_point(&Value::Null));
    }

    #[test]
    fn range_overlap() {
        let mut s = ColumnStats::new();
        s.observe(&Value::Int64(10));
        s.observe(&Value::Int64(20));
        let v = |i| Value::Int64(i);
        assert!(s.may_overlap_range(Some(&v(15)), Some(&v(25))));
        assert!(s.may_overlap_range(Some(&v(0)), Some(&v(10))));
        assert!(!s.may_overlap_range(Some(&v(21)), None));
        assert!(!s.may_overlap_range(None, Some(&v(9))));
        assert!(s.may_overlap_range(None, None));
    }

    #[test]
    fn all_null_column_matches_nothing_but_null() {
        let mut s = ColumnStats::new();
        s.observe(&Value::Null);
        assert!(!s.may_contain_point(&Value::Int64(0)));
        assert!(s.may_contain_point(&Value::Null));
        assert!(!s.may_overlap_range(Some(&Value::Int64(0)), None));
    }

    #[test]
    fn merge_combines() {
        let mut a = ColumnStats::new();
        a.observe(&Value::Int64(1));
        let mut b = ColumnStats::new();
        b.observe(&Value::Int64(100));
        b.observe(&Value::Null);
        a.merge(&b);
        assert_eq!(a.min, Some(Value::Int64(1)));
        assert_eq!(a.max, Some(Value::Int64(100)));
        assert!(a.has_null);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut s = ColumnStats::new();
        s.observe(&Value::String("alpha".into()));
        s.observe(&Value::String("omega".into()));
        s.observe(&Value::Null);
        let bytes = s.to_bytes();
        let mut pos = 0;
        let back = ColumnStats::from_bytes(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back, s);
        // Empty stats roundtrip too.
        let empty = ColumnStats::new();
        let bytes = empty.to_bytes();
        let mut pos = 0;
        assert_eq!(ColumnStats::from_bytes(&bytes, &mut pos).unwrap(), empty);
    }
}
