//! Common types and substrate primitives shared by every Vortex crate.
//!
//! This crate contains the pieces of Google infrastructure that the Vortex
//! paper (SIGMOD 2024) depends on but does not itself describe, implemented
//! from scratch as laptop-scale equivalents:
//!
//! - [`truetime`]: a TrueTime-style clock returning bounded-uncertainty
//!   intervals.
//! - [`crc`]: CRC32C (Castagnoli) used for end-to-end data protection.
//! - [`compress`]: "vsnap", a byte-oriented LZ compressor standing in for
//!   Snappy.
//! - [`crypt`]: a from-scratch ChaCha20 stream cipher for encryption at
//!   rest and in flight.
//! - [`bloom`]: bloom filters for partition/cluster key pruning.
//! - [`latency`]: the virtual-latency model used to reproduce the paper's
//!   latency figures without sleeping for two weeks.
//! - [`rpc`]: the in-process RPC layer — fault/latency-injecting call
//!   channels with deadlines, retries, and per-method metrics.
//! - [`crashpoints`]: deterministic process-death injection — named
//!   crash points on every durable-write path, armed by chaos tests.
//! - [`obs`]: the unified observability layer — metrics registry, spans
//!   over virtual time, and the §8 commit-to-visible freshness probe.
//! - [`transport`]: the unary/bi-di adaptive connection cost model
//!   (§5.4.2) the channels and the thick client share.
//!
//! It also defines the data model shared by the whole engine: typed
//! [`schema::Schema`]s with nested/repeated fields, [`row::Row`] values,
//! and the binary wire encoding ([`codec`]) used by the append API and the
//! write-optimized storage format.

#![warn(missing_docs)]

pub mod bloom;
pub mod codec;
pub mod compress;
pub mod crashpoints;
pub mod crc;
pub mod crypt;
pub mod error;
pub mod ids;
pub mod latency;
pub mod mailbox;
pub mod mask;
pub mod obs;
pub mod row;
pub mod rpc;
pub mod schema;
pub mod schema_codec;
pub mod stats;
pub mod transport;
pub mod truetime;

pub use error::{VortexError, VortexResult};
