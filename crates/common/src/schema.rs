//! Table schemas: typed, nested (STRUCT) and repeated (ARRAY) fields,
//! partitioning and clustering specs, and schema versioning.
//!
//! BigQuery's data model "has native support for semi-structured data"
//! with `ARRAY` and `STRUCT` fields plus types like `JSON`, `NUMERIC`,
//! `DATE` and `BYTES` (§3.1, §4); tables may declare *unenforced* primary
//! keys (§4.2.6), a partitioning column, and clustering columns (Listing
//! 1). Schemas are versioned because writers learn about schema changes
//! asynchronously through the Stream Server (§5.4.1).

use crate::error::{VortexError, VortexResult};
use crate::row::{Row, Value};

/// The type of a field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    String,
    /// Raw bytes.
    Bytes,
    /// Microseconds since the Unix epoch.
    Timestamp,
    /// Days since the Unix epoch.
    Date,
    /// Fixed-point decimal scaled by 10^9 (BigQuery NUMERIC).
    Numeric,
    /// JSON document stored as text.
    Json,
    /// Nested record with named sub-fields.
    Struct(Vec<Field>),
}

impl FieldType {
    /// Short display name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            FieldType::Bool => "BOOL",
            FieldType::Int64 => "INT64",
            FieldType::Float64 => "FLOAT64",
            FieldType::String => "STRING",
            FieldType::Bytes => "BYTES",
            FieldType::Timestamp => "TIMESTAMP",
            FieldType::Date => "DATE",
            FieldType::Numeric => "NUMERIC",
            FieldType::Json => "JSON",
            FieldType::Struct(_) => "STRUCT",
        }
    }
}

/// Field mode: nullable (default), required, or repeated (ARRAY).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FieldMode {
    /// Value may be NULL.
    #[default]
    Nullable,
    /// Value must be present.
    Required,
    /// Zero or more values (an ARRAY of the field type).
    Repeated,
}

/// A named, typed field within a schema or struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Element type.
    pub ftype: FieldType,
    /// Nullable / required / repeated.
    pub mode: FieldMode,
}

impl Field {
    /// A required field.
    pub fn required(name: &str, ftype: FieldType) -> Self {
        Field {
            name: name.to_string(),
            ftype,
            mode: FieldMode::Required,
        }
    }

    /// A nullable field.
    pub fn nullable(name: &str, ftype: FieldType) -> Self {
        Field {
            name: name.to_string(),
            ftype,
            mode: FieldMode::Nullable,
        }
    }

    /// A repeated (ARRAY) field.
    pub fn repeated(name: &str, ftype: FieldType) -> Self {
        Field {
            name: name.to_string(),
            ftype,
            mode: FieldMode::Repeated,
        }
    }
}

/// How a partitioning column value maps to a partition key (§3.1's
/// `PARTITION BY DATE(orderTimestamp)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionTransform {
    /// Use the column value itself (integer-valued columns).
    Identity,
    /// Truncate a TIMESTAMP to its UTC day (DATE(ts)).
    Date,
}

/// Table partitioning specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Name of the partitioning column (top-level).
    pub column: String,
    /// Transform applied to the value.
    pub transform: PartitionTransform,
}

const MICROS_PER_DAY: i64 = 86_400_000_000;

impl PartitionSpec {
    /// Computes the partition key for a value of the partition column.
    /// Returns `None` for NULL (rows land in the NULL partition).
    pub fn partition_key(&self, v: &Value) -> Option<i64> {
        match (self.transform, v) {
            (_, Value::Null) => None,
            (PartitionTransform::Identity, Value::Int64(i)) => Some(*i),
            (PartitionTransform::Identity, Value::Date(d)) => Some(*d as i64),
            (PartitionTransform::Date, Value::Timestamp(ts)) => {
                Some(ts.micros() as i64 / MICROS_PER_DAY)
            }
            (PartitionTransform::Date, Value::Date(d)) => Some(*d as i64),
            _ => None,
        }
    }
}

/// Change type of an ingested row (§4.2.6). Carried in the `_CHANGE_TYPE`
/// virtual column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum ChangeType {
    /// Append the row (default).
    #[default]
    Insert,
    /// Update the row matching the primary key, or insert it.
    Upsert,
    /// Delete all rows matching the primary key.
    Delete,
}

impl ChangeType {
    /// Wire encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            ChangeType::Insert => 0,
            ChangeType::Upsert => 1,
            ChangeType::Delete => 2,
        }
    }

    /// Wire decoding.
    pub fn from_u8(v: u8) -> VortexResult<Self> {
        match v {
            0 => Ok(ChangeType::Insert),
            1 => Ok(ChangeType::Upsert),
            2 => Ok(ChangeType::Delete),
            other => Err(VortexError::Decode(format!("bad change type {other}"))),
        }
    }
}

/// A versioned table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Top-level fields, in column order.
    pub fields: Vec<Field>,
    /// Monotonically increasing version; bumped on every schema change.
    pub version: u32,
    /// Unenforced primary key column names (§4.2.6). May be empty.
    pub primary_key: Vec<String>,
    /// Optional partitioning spec.
    pub partition: Option<PartitionSpec>,
    /// Clustering column names (weak sort order, §6.1). May be empty.
    pub clustering: Vec<String>,
}

impl Schema {
    /// Creates a version-1 schema with no keys/partitioning/clustering.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields,
            version: 1,
            primary_key: vec![],
            partition: None,
            clustering: vec![],
        }
    }

    /// Builder: sets the unenforced primary key columns.
    pub fn with_primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builder: sets the partition spec.
    pub fn with_partition(mut self, column: &str, transform: PartitionTransform) -> Self {
        self.partition = Some(PartitionSpec {
            column: column.to_string(),
            transform,
        });
        self
    }

    /// Builder: sets the clustering columns.
    pub fn with_clustering(mut self, cols: &[&str]) -> Self {
        self.clustering = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Index of a top-level column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Returns a new schema with an extra nullable column appended and the
    /// version bumped — the only evolution the engine supports, mirroring
    /// the common additive case in §5.4.1.
    pub fn evolve_add_column(&self, field: Field) -> VortexResult<Schema> {
        if self.column_index(&field.name).is_some() {
            return Err(VortexError::AlreadyExists(format!("column {}", field.name)));
        }
        if field.mode == FieldMode::Required {
            return Err(VortexError::InvalidArgument(
                "new columns must be NULLABLE or REPEATED (existing rows lack them)".into(),
            ));
        }
        let mut fields = self.fields.clone();
        fields.push(field);
        Ok(Schema {
            fields,
            version: self.version + 1,
            primary_key: self.primary_key.clone(),
            partition: self.partition.clone(),
            clustering: self.clustering.clone(),
        })
    }

    /// Validates one value against a field declaration.
    fn validate_value(field: &Field, v: &Value) -> VortexResult<()> {
        let type_err = |v: &Value| {
            Err(VortexError::SchemaViolation(format!(
                "column '{}' expects {} ({:?}), got {}",
                field.name,
                field.ftype.name(),
                field.mode,
                v.type_name()
            )))
        };
        match field.mode {
            FieldMode::Repeated => {
                let Value::Array(items) = v else {
                    return type_err(v);
                };
                for item in items {
                    Self::validate_scalar(field, item)?;
                }
                Ok(())
            }
            FieldMode::Nullable => {
                if matches!(v, Value::Null) {
                    Ok(())
                } else {
                    Self::validate_scalar(field, v)
                }
            }
            FieldMode::Required => {
                if matches!(v, Value::Null) {
                    Err(VortexError::SchemaViolation(format!(
                        "column '{}' is REQUIRED but got NULL",
                        field.name
                    )))
                } else {
                    Self::validate_scalar(field, v)
                }
            }
        }
    }

    fn validate_scalar(field: &Field, v: &Value) -> VortexResult<()> {
        let ok = match (&field.ftype, v) {
            (FieldType::Bool, Value::Bool(_)) => true,
            (FieldType::Int64, Value::Int64(_)) => true,
            (FieldType::Float64, Value::Float64(_)) => true,
            (FieldType::String, Value::String(_)) => true,
            (FieldType::Bytes, Value::Bytes(_)) => true,
            (FieldType::Timestamp, Value::Timestamp(_)) => true,
            (FieldType::Date, Value::Date(_)) => true,
            (FieldType::Numeric, Value::Numeric(_)) => true,
            (FieldType::Json, Value::Json(_)) => true,
            (FieldType::Struct(subfields), Value::Struct(values)) => {
                if subfields.len() != values.len() {
                    return Err(VortexError::SchemaViolation(format!(
                        "struct '{}' expects {} fields, got {}",
                        field.name,
                        subfields.len(),
                        values.len()
                    )));
                }
                for (sf, sv) in subfields.iter().zip(values.iter()) {
                    Self::validate_value(sf, sv)?;
                }
                true
            }
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(VortexError::SchemaViolation(format!(
                "column '{}' expects {}, got {}",
                field.name,
                field.ftype.name(),
                v.type_name()
            )))
        }
    }

    /// Validates an entire row (arity + per-field types). Mutation rows
    /// (`UPSERT`/`DELETE`) additionally require a primary key on the table.
    pub fn validate_row(&self, row: &Row) -> VortexResult<()> {
        if row.values.len() != self.fields.len() {
            return Err(VortexError::SchemaViolation(format!(
                "row has {} values, schema v{} has {} columns",
                row.values.len(),
                self.version,
                self.fields.len()
            )));
        }
        for (f, v) in self.fields.iter().zip(row.values.iter()) {
            Self::validate_value(f, v)?;
        }
        if row.change_type != ChangeType::Insert && self.primary_key.is_empty() {
            return Err(VortexError::SchemaViolation(
                "UPSERT/DELETE rows require a primary key on the table".into(),
            ));
        }
        Ok(())
    }

    /// Extracts the primary key of a row as a canonical byte string, used
    /// for UPSERT/DELETE resolution. Returns `None` if no key is declared.
    pub fn primary_key_bytes(&self, row: &Row) -> Option<Vec<u8>> {
        if self.primary_key.is_empty() {
            return None;
        }
        let mut out = Vec::new();
        for col in &self.primary_key {
            let idx = self.column_index(col)?;
            let v = row.values.get(idx)?;
            let k = v.encode_key();
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(&k);
        }
        Some(out)
    }
}

/// The Sales table from the paper's Listing 1, used throughout tests and
/// examples.
pub fn sales_schema() -> Schema {
    Schema::new(vec![
        Field::required("orderTimestamp", FieldType::Timestamp),
        Field::required("salesOrderKey", FieldType::String),
        Field::required("customerKey", FieldType::String),
        Field::repeated(
            "salesOrderLines",
            FieldType::Struct(vec![
                Field::required("salesOrderLineKey", FieldType::Int64),
                Field::nullable("dueDate", FieldType::Date),
                Field::nullable("shipDate", FieldType::Date),
                Field::required("quantity", FieldType::Int64),
                Field::required("unitPrice", FieldType::Numeric),
            ]),
        ),
        Field::required("totalSale", FieldType::Numeric),
        Field::required("currencyKey", FieldType::Int64),
    ])
    .with_primary_key(&["salesOrderKey"])
    .with_partition("orderTimestamp", PartitionTransform::Date)
    .with_clustering(&["customerKey"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truetime::Timestamp;

    fn sample_sales_row() -> Row {
        Row::insert(vec![
            Value::Timestamp(Timestamp::from_micros(1_696_118_400_000_000)),
            Value::String("SO-1".into()),
            Value::String("cust-1".into()),
            Value::Array(vec![Value::Struct(vec![
                Value::Int64(1),
                Value::Date(19_700),
                Value::Null,
                Value::Int64(3),
                Value::Numeric(12_990_000_000),
            ])]),
            Value::Numeric(38_970_000_000),
            Value::Int64(840),
        ])
    }

    #[test]
    fn sales_row_validates() {
        sales_schema().validate_row(&sample_sales_row()).unwrap();
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = sample_sales_row();
        r.values.pop();
        let err = sales_schema().validate_row(&r).unwrap_err();
        assert!(matches!(err, VortexError::SchemaViolation(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut r = sample_sales_row();
        r.values[1] = Value::Int64(5); // salesOrderKey is STRING
        assert!(sales_schema().validate_row(&r).is_err());
    }

    #[test]
    fn required_null_rejected_nullable_null_ok() {
        let mut r = sample_sales_row();
        r.values[0] = Value::Null; // REQUIRED
        assert!(sales_schema().validate_row(&r).is_err());
        let mut r = sample_sales_row();
        // dueDate inside struct is NULLABLE
        r.values[3] = Value::Array(vec![Value::Struct(vec![
            Value::Int64(1),
            Value::Null,
            Value::Null,
            Value::Int64(1),
            Value::Numeric(0),
        ])]);
        sales_schema().validate_row(&r).unwrap();
    }

    #[test]
    fn repeated_requires_array() {
        let mut r = sample_sales_row();
        r.values[3] = Value::Int64(1);
        assert!(sales_schema().validate_row(&r).is_err());
    }

    #[test]
    fn struct_arity_checked() {
        let mut r = sample_sales_row();
        r.values[3] = Value::Array(vec![Value::Struct(vec![Value::Int64(1)])]);
        assert!(sales_schema().validate_row(&r).is_err());
    }

    #[test]
    fn mutation_requires_primary_key() {
        let schema = Schema::new(vec![Field::required("a", FieldType::Int64)]);
        let row = Row::with_change(vec![Value::Int64(1)], ChangeType::Delete);
        assert!(schema.validate_row(&row).is_err());
        let keyed = schema.clone().with_primary_key(&["a"]);
        keyed.validate_row(&row).unwrap();
    }

    #[test]
    fn partition_key_date_transform() {
        let spec = PartitionSpec {
            column: "ts".into(),
            transform: PartitionTransform::Date,
        };
        // 2023-10-01T12:00:00Z = day 19631.
        let ts = Value::Timestamp(Timestamp::from_micros(
            19_631 * 86_400_000_000 + 12 * 3_600_000_000,
        ));
        assert_eq!(spec.partition_key(&ts), Some(19_631));
        assert_eq!(spec.partition_key(&Value::Null), None);
    }

    #[test]
    fn schema_evolution_appends_nullable() {
        let s = sales_schema();
        let s2 = s
            .evolve_add_column(Field::nullable("note", FieldType::String))
            .unwrap();
        assert_eq!(s2.version, s.version + 1);
        assert_eq!(s2.fields.len(), s.fields.len() + 1);
        // Duplicate and REQUIRED additions rejected.
        assert!(s2
            .evolve_add_column(Field::nullable("note", FieldType::String))
            .is_err());
        assert!(s2
            .evolve_add_column(Field::required("x", FieldType::Int64))
            .is_err());
    }

    #[test]
    fn primary_key_bytes_distinguish_rows() {
        let s = sales_schema();
        let a = s.primary_key_bytes(&sample_sales_row()).unwrap();
        let mut other = sample_sales_row();
        other.values[1] = Value::String("SO-2".into());
        let b = s.primary_key_bytes(&other).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn change_type_wire_roundtrip() {
        for ct in [ChangeType::Insert, ChangeType::Upsert, ChangeType::Delete] {
            assert_eq!(ChangeType::from_u8(ct.to_u8()).unwrap(), ct);
        }
        assert!(ChangeType::from_u8(9).is_err());
    }
}
