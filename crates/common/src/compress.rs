//! "vsnap" — a byte-oriented LZ77 compressor standing in for Snappy.
//!
//! The Stream Server "uses the Snappy compressor, which has a negligible
//! CPU impact, to compress rows before appending them to the Fragment"
//! (§5.4.5); typical ratios are 4:1, up to 10:1 when string values repeat
//! across rows. Snappy itself is not on the approved dependency list, so
//! this module implements a compressor with the same design point: greedy
//! hash-table LZ matching, byte-aligned output, no entropy coding, fast
//! enough that compression never dominates an append.
//!
//! ## Format
//!
//! A varint of the uncompressed length, then a sequence of elements:
//!
//! - **Literal** (`tag & 3 == 0`): `tag >> 2` is `len - 1` for lengths up
//!   to 60; values 60–61 mean 1 or 2 extra little-endian length bytes
//!   follow. `len` literal bytes follow.
//! - **Copy** (`tag & 3 == 1`): `tag >> 2` is `len - 4` (4–66 bytes), then
//!   a 2-byte little-endian back-offset (1–65535). Copies may overlap the
//!   output cursor (RLE-style).
//!
//! Decompression is bounds-checked everywhere; corrupt input yields an
//! error, never UB or a panic.

/// Errors produced while decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// Input ended in the middle of an element.
    Truncated,
    /// A copy element referenced bytes before the start of output.
    BadOffset {
        /// The offset requested.
        offset: usize,
        /// Bytes produced so far.
        produced: usize,
    },
    /// The output did not match the declared uncompressed length.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Length actually produced.
        produced: usize,
    },
    /// Reserved tag bits were set.
    BadTag(u8),
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "vsnap input truncated"),
            DecompressError::BadOffset { offset, produced } => {
                write!(f, "vsnap copy offset {offset} exceeds produced {produced}")
            }
            DecompressError::LengthMismatch { declared, produced } => {
                write!(f, "vsnap declared {declared} bytes, produced {produced}")
            }
            DecompressError::BadTag(t) => write!(f, "vsnap bad tag {t:#04x}"),
        }
    }
}

impl std::error::Error for DecompressError {}

const MIN_MATCH: usize = 4;
const MAX_COPY_LEN: usize = 66;
const MAX_OFFSET: usize = 65535;
const HASH_BITS: u32 = 14;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) as usize
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn get_varint(input: &[u8], pos: &mut usize) -> Result<u64, DecompressError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *input.get(*pos).ok_or(DecompressError::Truncated)?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecompressError::BadTag(b));
        }
    }
}

fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    let mut rest = lit;
    while !rest.is_empty() {
        let take = rest.len().min(1 << 16);
        let (head, tail) = rest.split_at(take);
        let n = head.len();
        if n <= 60 {
            out.push(((n - 1) as u8) << 2);
        } else if n <= 256 {
            out.push(60 << 2);
            out.push((n - 1) as u8);
        } else {
            out.push(61 << 2);
            out.extend_from_slice(&((n - 1) as u16).to_le_bytes());
        }
        out.extend_from_slice(head);
        rest = tail;
    }
}

fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
    debug_assert!((1..=MAX_OFFSET).contains(&offset));
    while len >= MIN_MATCH {
        let take = len.min(MAX_COPY_LEN);
        // Avoid leaving a tail shorter than MIN_MATCH.
        let take = if len - take > 0 && len - take < MIN_MATCH {
            len - MIN_MATCH
        } else {
            take
        };
        out.push((((take - MIN_MATCH) as u8) << 2) | 1);
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        len -= take;
    }
    debug_assert_eq!(len, 0);
}

/// Compresses `input`, returning the vsnap-framed bytes.
///
/// Worst case output is `input.len() + input.len()/60 + 10` bytes (pure
/// literals), so incompressible data costs under 2% expansion.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_varint(&mut out, input.len() as u64);
    if input.len() < MIN_MATCH {
        if !input.is_empty() {
            emit_literal(&mut out, input);
        }
        return out;
    }

    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut lit_start = 0usize;
    // The last position where a 4-byte read is valid.
    let limit = input.len() - MIN_MATCH;

    while pos <= limit {
        let h = hash4(&input[pos..]);
        let candidate = table[h] as usize;
        table[h] = pos as u32;
        let dist = pos.wrapping_sub(candidate);
        if candidate < pos
            && dist <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match forward.
            let mut len = MIN_MATCH;
            while pos + len < input.len() && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            if lit_start < pos {
                emit_literal(&mut out, &input[lit_start..pos]);
            }
            emit_copy(&mut out, dist, len);
            // Seed the hash table sparsely inside the match to keep the
            // compressor fast on long runs.
            let end = pos + len;
            let mut seed = pos + 1;
            while seed <= limit && seed < end {
                table[hash4(&input[seed..])] = seed as u32;
                seed += 13;
            }
            pos = end;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    if lit_start < input.len() {
        emit_literal(&mut out, &input[lit_start..]);
    }
    out
}

/// Decompresses vsnap-framed bytes produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut pos = 0usize;
    let declared = get_varint(input, &mut pos)? as usize;
    let mut out: Vec<u8> = Vec::with_capacity(declared);
    while pos < input.len() {
        let tag = input[pos];
        pos += 1;
        match tag & 3 {
            0 => {
                let selector = (tag >> 2) as usize;
                let len = match selector {
                    0..=59 => selector + 1,
                    60 => {
                        let b = *input.get(pos).ok_or(DecompressError::Truncated)?;
                        pos += 1;
                        b as usize + 1
                    }
                    61 => {
                        if pos + 2 > input.len() {
                            return Err(DecompressError::Truncated);
                        }
                        let v = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                        pos += 2;
                        v + 1
                    }
                    _ => return Err(DecompressError::BadTag(tag)),
                };
                if pos + len > input.len() {
                    return Err(DecompressError::Truncated);
                }
                out.extend_from_slice(&input[pos..pos + len]);
                pos += len;
            }
            1 => {
                let len = ((tag >> 2) as usize) + MIN_MATCH;
                if pos + 2 > input.len() {
                    return Err(DecompressError::Truncated);
                }
                let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                pos += 2;
                if offset == 0 || offset > out.len() {
                    return Err(DecompressError::BadOffset {
                        offset,
                        produced: out.len(),
                    });
                }
                // Overlapping copies are legal (RLE); copy byte-by-byte.
                let start = out.len() - offset;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(DecompressError::BadTag(tag)),
        }
        if out.len() > declared {
            return Err(DecompressError::LengthMismatch {
                declared,
                produced: out.len(),
            });
        }
    }
    if out.len() != declared {
        return Err(DecompressError::LengthMismatch {
            declared,
            produced: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip mismatch ({} bytes)", data.len());
        c
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn highly_repetitive_compresses_hard() {
        let data = b"customerKey=alice;".repeat(1000);
        let c = roundtrip(&data);
        let ratio = data.len() as f64 / c.len() as f64;
        assert!(
            ratio > 10.0,
            "expected >10:1 on repeated strings, got {ratio:.1}"
        );
    }

    #[test]
    fn rle_run() {
        let data = vec![7u8; 100_000];
        let c = roundtrip(&data);
        // Copies are capped at 66 bytes / 3 output bytes, so the best an
        // RLE run can do is ~22:1 (same ballpark as Snappy's 64-byte cap).
        assert!(c.len() < 6_000, "RLE run should collapse, got {}", c.len());
    }

    #[test]
    fn mixed_row_like_data_hits_typical_ratio() {
        // Rows with repeated field names and common values, varying keys —
        // the "typical compression ratio is 4:1" shape from §5.4.5.
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(
                format!(
                    "orderTimestamp=2023-10-{:02};customerKey=cust{:04};currency=USD;qty={};",
                    (i % 28) + 1,
                    i % 97,
                    i % 13
                )
                .as_bytes(),
            );
        }
        let c = roundtrip(&data);
        let ratio = data.len() as f64 / c.len() as f64;
        assert!(ratio > 4.0, "expected ~4:1, got {ratio:.2}");
    }

    #[test]
    fn incompressible_data_expands_little() {
        // A fixed LCG so the test is deterministic.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let c = roundtrip(&data);
        assert!(
            c.len() < data.len() + data.len() / 50 + 16,
            "expansion too large: {} -> {}",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn long_literals_cross_block_boundaries() {
        // Exercise the 60/61 literal length selectors.
        for n in [59, 60, 61, 255, 256, 257, 65536, 65537, 70000] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let c = compress(&b"hello world hello world hello world".repeat(10));
        for cut in 0..c.len() {
            let _ = decompress(&c[..cut]); // must not panic
        }
    }

    #[test]
    fn bad_offset_rejected() {
        let mut bad = Vec::new();
        put_varint(&mut bad, 8);
        bad.push(1); // copy, len 4
        bad.extend_from_slice(&100u16.to_le_bytes()); // offset 100 with 0 produced
        assert!(matches!(
            decompress(&bad),
            Err(DecompressError::BadOffset { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut bad = Vec::new();
        put_varint(&mut bad, 100); // declares 100 bytes
        bad.push(0 << 2); // one literal byte
        bad.push(b'x');
        assert!(matches!(
            decompress(&bad),
            Err(DecompressError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }
}
