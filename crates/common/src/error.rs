//! Error types shared across the Vortex engine.

use std::fmt;

use crate::ids::{FragmentId, StreamId, StreamletId, TableId};

/// Result alias used throughout the workspace.
pub type VortexResult<T> = Result<T, VortexError>;

/// The unified error type for all Vortex operations.
///
/// Variants are grouped by the layer that raises them. Retryable-ness is a
/// property the thick client library cares about: see
/// [`VortexError::is_retryable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VortexError {
    /// A table, stream, or other named entity does not exist.
    NotFound(String),
    /// An entity that was being created already exists.
    AlreadyExists(String),
    /// The request is malformed or violates an API invariant.
    InvalidArgument(String),
    /// An append used a `row_offset` that does not match the current end of
    /// the stream (§4.2.2). Carries the offset the server expected.
    OffsetMismatch {
        /// Stream on which the append was attempted.
        stream: StreamId,
        /// The offset the caller supplied.
        provided: u64,
        /// The next offset the server would accept.
        expected: u64,
    },
    /// The stream has been finalized and no longer accepts appends.
    StreamFinalized(StreamId),
    /// The streamlet has been finalized; the client must ask the SMS for a
    /// new one (§5.3).
    StreamletFinalized(StreamletId),
    /// The writer's schema version is stale; the client must refetch the
    /// table schema from the SMS and retry (§5.4.1).
    SchemaVersionMismatch {
        /// Table whose schema changed.
        table: TableId,
        /// Version the writer used.
        writer_version: u32,
        /// Current version at the server.
        current_version: u32,
    },
    /// A row failed schema validation during an append.
    SchemaViolation(String),
    /// The server or a storage cluster is temporarily unavailable.
    Unavailable(String),
    /// An I/O error from the (simulated) Colossus layer.
    Io(String),
    /// Data failed its end-to-end CRC check (§5.4.5).
    CorruptData(String),
    /// A decoding error while reading a fragment or ROS block.
    Decode(String),
    /// A metastore transaction aborted due to a conflict and may be retried.
    TxnConflict(String),
    /// Flow control rejected the request; back off and retry (§5.4.2).
    Throttled {
        /// Bytes currently in flight on the connection.
        in_flight_bytes: u64,
        /// The connection's in-flight limit.
        limit_bytes: u64,
    },
    /// The requested fragment is deleted at the given snapshot.
    FragmentNotVisible(FragmentId),
    /// A write lease was lost to another writer (zombie poisoning, §5.6).
    LeaseLost(String),
    /// A named crash point fired (`vortex_common::crashpoints`): the
    /// component must unwind to its service boundary and mark itself
    /// dead, exactly as if the process had been killed at that
    /// instruction. Deliberately NOT retryable — internal retry loops
    /// must not swallow a simulated death; only the boundary converts it
    /// into a retryable [`VortexError::Unavailable`] for remote callers.
    SimulatedCrash(String),
    /// Admission control rejected the request before it executed: a
    /// quota bucket is empty, the admission queue for the caller's
    /// priority class is full, or the adaptive concurrency limiter is
    /// clamped (`vortex-admission`). Retryable — and unlike every other
    /// retryable error it carries an explicit server-side backoff hint,
    /// which [`crate::rpc::RetryPolicy`]-driven retries honor instead of
    /// blind exponential backoff (the gRPC `RESOURCE_EXHAUSTED` +
    /// `RetryInfo` contract). `retry_after_us` must be nonzero (lint
    /// L009): a zero hint strands hint-directed retriers in a busy loop.
    ResourceExhausted {
        /// What was exhausted, e.g. `tenant 0 bytes/s` or `aimd limit`.
        scope: String,
        /// Server-suggested backoff before retrying, virtual µs (> 0).
        retry_after_us: u64,
    },
    /// An RPC exhausted its per-call budget (injected latency plus retry
    /// backoff) before completing. Retryable: the deadline says nothing
    /// about whether the callee executed, exactly like a gRPC
    /// `DEADLINE_EXCEEDED`.
    DeadlineExceeded {
        /// The RPC method that timed out.
        method: String,
        /// The call budget that was exhausted, in microseconds.
        budget_us: u64,
    },
    /// Catch-all internal invariant failure.
    Internal(String),
}

impl VortexError {
    /// Whether the thick client library should transparently retry the
    /// operation (possibly against a new streamlet or replica).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            VortexError::Unavailable(_)
                | VortexError::Io(_)
                | VortexError::TxnConflict(_)
                | VortexError::Throttled { .. }
                | VortexError::ResourceExhausted { .. }
                | VortexError::StreamletFinalized(_)
                | VortexError::DeadlineExceeded { .. }
        )
    }

    /// The server-supplied backoff hint, if this error carries one.
    /// Hint-directed retriers (the RPC channel, the thick client) wait
    /// exactly this long instead of applying exponential backoff.
    pub fn retry_after_us(&self) -> Option<u64> {
        match self {
            VortexError::ResourceExhausted { retry_after_us, .. } => Some(*retry_after_us),
            _ => None,
        }
    }

    /// Whether the error indicates the client must refresh metadata (new
    /// schema or new streamlet) before retrying.
    pub fn needs_metadata_refresh(&self) -> bool {
        matches!(
            self,
            VortexError::SchemaVersionMismatch { .. } | VortexError::StreamletFinalized(_)
        )
    }
}

impl fmt::Display for VortexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VortexError::NotFound(s) => write!(f, "not found: {s}"),
            VortexError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            VortexError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            VortexError::OffsetMismatch {
                stream,
                provided,
                expected,
            } => write!(
                f,
                "offset mismatch on stream {stream}: provided {provided}, expected {expected}"
            ),
            VortexError::StreamFinalized(s) => write!(f, "stream {s} is finalized"),
            VortexError::StreamletFinalized(s) => write!(f, "streamlet {s} is finalized"),
            VortexError::SchemaVersionMismatch {
                table,
                writer_version,
                current_version,
            } => write!(
                f,
                "schema version mismatch on table {table}: writer has v{writer_version}, current is v{current_version}"
            ),
            VortexError::SchemaViolation(s) => write!(f, "schema violation: {s}"),
            VortexError::Unavailable(s) => write!(f, "unavailable: {s}"),
            VortexError::Io(s) => write!(f, "io error: {s}"),
            VortexError::CorruptData(s) => write!(f, "corrupt data: {s}"),
            VortexError::Decode(s) => write!(f, "decode error: {s}"),
            VortexError::TxnConflict(s) => write!(f, "transaction conflict: {s}"),
            VortexError::Throttled {
                in_flight_bytes,
                limit_bytes,
            } => write!(
                f,
                "throttled: {in_flight_bytes} bytes in flight exceeds limit {limit_bytes}"
            ),
            VortexError::ResourceExhausted {
                scope,
                retry_after_us,
            } => write!(
                f,
                "resource exhausted ({scope}): retry after {retry_after_us}us"
            ),
            VortexError::FragmentNotVisible(id) => {
                write!(f, "fragment {id} not visible at snapshot")
            }
            VortexError::LeaseLost(s) => write!(f, "write lease lost: {s}"),
            VortexError::SimulatedCrash(p) => {
                write!(f, "simulated crash at point '{p}'")
            }
            VortexError::DeadlineExceeded { method, budget_us } => write!(
                f,
                "rpc deadline exceeded on {method}: call budget {budget_us}us exhausted"
            ),
            VortexError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for VortexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(VortexError::Unavailable("x".into()).is_retryable());
        assert!(VortexError::Io("x".into()).is_retryable());
        assert!(VortexError::TxnConflict("x".into()).is_retryable());
        assert!(VortexError::Throttled {
            in_flight_bytes: 10,
            limit_bytes: 5
        }
        .is_retryable());
        assert!(VortexError::DeadlineExceeded {
            method: "append".into(),
            budget_us: 1_000
        }
        .is_retryable());
        assert!(VortexError::ResourceExhausted {
            scope: "tenant 0 bytes/s".into(),
            retry_after_us: 2_500
        }
        .is_retryable());
        assert!(!VortexError::NotFound("x".into()).is_retryable());
        assert!(!VortexError::OffsetMismatch {
            stream: StreamId::from_raw(1),
            provided: 5,
            expected: 4
        }
        .is_retryable());
        assert!(!VortexError::CorruptData("x".into()).is_retryable());
        // A simulated process death must NOT be absorbed by internal
        // retry loops; the component boundary handles it.
        assert!(!VortexError::SimulatedCrash("server.wal.pre_ack".into()).is_retryable());
    }

    #[test]
    fn metadata_refresh_classification() {
        assert!(VortexError::SchemaVersionMismatch {
            table: TableId::from_raw(1),
            writer_version: 1,
            current_version: 2
        }
        .needs_metadata_refresh());
        assert!(VortexError::StreamletFinalized(StreamletId::from_raw(9)).needs_metadata_refresh());
        assert!(!VortexError::Unavailable("x".into()).needs_metadata_refresh());
    }

    #[test]
    fn retry_after_hint_only_on_resource_exhausted() {
        let e = VortexError::ResourceExhausted {
            scope: "aimd limit".into(),
            retry_after_us: 7_500,
        };
        assert_eq!(e.retry_after_us(), Some(7_500));
        assert!(e.to_string().contains("7500us"), "{e}");
        assert_eq!(VortexError::Unavailable("x".into()).retry_after_us(), None);
        assert_eq!(
            VortexError::Throttled {
                in_flight_bytes: 10,
                limit_bytes: 5
            }
            .retry_after_us(),
            None
        );
    }

    #[test]
    fn display_is_informative() {
        let e = VortexError::OffsetMismatch {
            stream: StreamId::from_raw(7),
            provided: 14,
            expected: 4,
        };
        let s = e.to_string();
        assert!(s.contains("14") && s.contains('4'), "{s}");
    }
}
