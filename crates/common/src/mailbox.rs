//! Shard mailboxes and reply slots: the message-passing substrate of the
//! shard-per-core Stream Server (§5.3's data plane re-architected as
//! single-writer shards).
//!
//! Each shard thread owns its streamlets outright; callers never touch
//! shard state directly. Instead they `post` messages into the shard's
//! [`Mailbox`] and park on a [`ReplySlot`] until the shard delivers the
//! result. The discipline:
//!
//! - **Single consumer.** Exactly one thread pulls from a mailbox; the
//!   first `pull` pins it as the consumer and later wake-ups unpark it.
//! - **Bounded data plane.** [`MailboxSender::post_data`] enforces a depth
//!   cap and rejects with [`PostError::Full`] without blocking or
//!   allocating — backpressure surfaces to the caller as a retryable
//!   error, it never stalls a producer inside the server.
//! - **Unbounded control plane.** [`MailboxSender::post`] bypasses the
//!   cap: control traffic (heartbeats, schema updates, checkpoints) is
//!   rare, small, and must not be shed behind data backlog.
//! - **No locks, no condvars.** The queue is std mpsc; idle consumers
//!   park with a timeout and producers unpark them. Reply delivery is a
//!   `OnceLock` publish plus an unpark. Nothing on the append hot path
//!   acquires a lock.
//!
//! The types are generic so other service loops can adopt the same
//! discipline; the Stream Server's shard messages are the first user.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::Thread;
use std::time::Duration;

/// Why a `post` was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The bounded queue is at capacity: shed and retry later.
    Full,
    /// The consumer is gone or the mailbox was closed.
    Closed,
}

/// Outcome of one [`MailboxReceiver::pull`].
#[derive(Debug)]
pub enum Pulled<T> {
    /// A message was dequeued.
    Msg(T),
    /// The park interval elapsed with nothing queued; the consumer may
    /// run housekeeping and pull again.
    Idle,
    /// The mailbox is closed and fully drained: exit the loop.
    Closed,
}

struct Shared<T> {
    tx: Sender<T>,
    depth: AtomicUsize,
    cap: usize,
    sleeping: AtomicBool,
    closed: AtomicBool,
    consumer: OnceLock<Thread>,
}

/// Producer half of a shard mailbox. Cheap to clone; any thread may post.
pub struct MailboxSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for MailboxSender<T> {
    fn clone(&self) -> Self {
        MailboxSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Consumer half of a shard mailbox: owned by exactly one shard thread.
pub struct MailboxReceiver<T> {
    rx: Receiver<T>,
    shared: Arc<Shared<T>>,
}

/// Creates a mailbox whose data plane sheds above `cap` queued messages.
pub fn mailbox<T>(cap: usize) -> (MailboxSender<T>, MailboxReceiver<T>) {
    let (tx, rx) = mpsc::channel();
    // lint:allow(L010, one-time construction when a shard mailbox is set up)
    let shared = Arc::new(Shared {
        tx,
        depth: AtomicUsize::new(0),
        cap,
        sleeping: AtomicBool::new(false),
        closed: AtomicBool::new(false),
        consumer: OnceLock::new(),
    });
    (
        MailboxSender {
            shared: Arc::clone(&shared),
        },
        MailboxReceiver { rx, shared },
    )
}

impl<T> MailboxSender<T> {
    /// Posts a data-plane message, shedding with [`PostError::Full`] when
    /// the queue is at capacity. Never blocks.
    pub fn post_data(&self, msg: T) -> Result<(), PostError> {
        let s = &*self.shared;
        let d = s.depth.fetch_add(1, Ordering::AcqRel);
        if d >= s.cap {
            s.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(PostError::Full);
        }
        self.post_inner(msg)
    }

    /// Posts a control-plane message, bypassing the depth cap. Never
    /// blocks; fails only when the mailbox is closed.
    pub fn post(&self, msg: T) -> Result<(), PostError> {
        self.shared.depth.fetch_add(1, Ordering::AcqRel);
        self.post_inner(msg)
    }

    fn post_inner(&self, msg: T) -> Result<(), PostError> {
        let s = &*self.shared;
        if s.closed.load(Ordering::SeqCst) {
            s.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(PostError::Closed);
        }
        if s.tx.send(msg).is_err() {
            s.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(PostError::Closed);
        }
        // The consumer parks only after publishing `sleeping`; posting
        // happens-before this load, so either the consumer sees our
        // message on its pre-park recheck or we see `sleeping` and wake
        // it. Either way the message is consumed promptly.
        if s.sleeping.load(Ordering::SeqCst) {
            if let Some(t) = s.consumer.get() {
                t.unpark();
            }
        }
        Ok(())
    }

    /// Closes the mailbox: subsequent posts fail with
    /// [`PostError::Closed`]; the consumer drains what is queued and then
    /// observes [`Pulled::Closed`].
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        if let Some(t) = self.shared.consumer.get() {
            t.unpark();
        }
    }

    /// Queued-message count (data + control), for load gauges.
    pub fn queued(&self) -> usize {
        self.shared.depth.load(Ordering::Acquire)
    }
}

impl<T> MailboxReceiver<T> {
    /// Non-blocking dequeue for greedy batch draining.
    pub fn try_pull(&mut self) -> Option<T> {
        match self.rx.try_recv() {
            Ok(msg) => {
                self.shared.depth.fetch_sub(1, Ordering::AcqRel);
                Some(msg)
            }
            Err(_) => None,
        }
    }

    /// Dequeues the next message, parking up to `park` when idle. The
    /// first call pins the calling thread as the mailbox's consumer.
    pub fn pull(&mut self, park: Duration) -> Pulled<T> {
        let _ = self.shared.consumer.set(std::thread::current());
        if let Some(msg) = self.try_pull() {
            return Pulled::Msg(msg);
        }
        if self.shared.closed.load(Ordering::SeqCst) {
            // Drain-then-exit: a message posted just before close wins.
            return match self.try_pull() {
                Some(msg) => Pulled::Msg(msg),
                None => Pulled::Closed,
            };
        }
        self.shared.sleeping.store(true, Ordering::SeqCst);
        // Recheck after publishing `sleeping`: a producer that posted
        // before seeing the flag is caught here instead of being lost.
        if let Some(msg) = self.try_pull() {
            self.shared.sleeping.store(false, Ordering::SeqCst);
            return Pulled::Msg(msg);
        }
        std::thread::park_timeout(park);
        self.shared.sleeping.store(false, Ordering::SeqCst);
        match self.try_pull() {
            Some(msg) => Pulled::Msg(msg),
            None if self.shared.closed.load(Ordering::SeqCst) => Pulled::Closed,
            None => Pulled::Idle,
        }
    }
}

/// A one-shot reply cell: the caller parks on it, the shard delivers into
/// it. Lock-free — a `OnceLock` publish plus thread park/unpark.
pub struct ReplySlot<T> {
    cell: OnceLock<T>,
    waiter: Thread,
}

impl<T> ReplySlot<T> {
    /// Creates a slot whose waiter is the calling thread.
    pub fn for_caller() -> Arc<Self> {
        // lint:allow(L010, one small one-shot cell per request — the cross-thread ack handle)
        Arc::new(ReplySlot {
            cell: OnceLock::new(),
            waiter: std::thread::current(),
        })
    }

    /// Publishes the reply and wakes the waiter. Delivering twice keeps
    /// the first value.
    pub fn deliver(&self, value: T) {
        let _ = self.cell.set(value);
        self.waiter.unpark();
    }

    /// True once a reply has been delivered.
    pub fn is_ready(&self) -> bool {
        self.cell.get().is_some()
    }

    /// Parks until the reply arrives, up to `max_parks` intervals of
    /// `park` (stale unpark tokens can wake a park early, so the bound is
    /// approximate). `None` means the shard never answered — the caller
    /// should surface a retryable unavailability.
    ///
    /// Must be called from the thread that created the slot: delivery
    /// unparks the creator.
    pub fn await_reply(&self, max_parks: u32, park: Duration) -> Option<&T> {
        for _ in 0..max_parks {
            if let Some(v) = self.cell.get() {
                return Some(v);
            }
            std::thread::park_timeout(park);
        }
        self.cell.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const PARK: Duration = Duration::from_millis(5);

    #[test]
    fn post_and_pull_in_order() {
        let (tx, mut rx) = mailbox::<u32>(8);
        tx.post_data(1).unwrap();
        tx.post_data(2).unwrap();
        tx.post(3).unwrap();
        assert!(matches!(rx.pull(PARK), Pulled::Msg(1)));
        assert!(matches!(rx.pull(PARK), Pulled::Msg(2)));
        assert!(matches!(rx.pull(PARK), Pulled::Msg(3)));
        assert!(matches!(rx.pull(PARK), Pulled::Idle));
    }

    #[test]
    fn data_plane_sheds_at_capacity_but_control_passes() {
        let (tx, mut rx) = mailbox::<u32>(2);
        tx.post_data(1).unwrap();
        tx.post_data(2).unwrap();
        assert_eq!(tx.post_data(3), Err(PostError::Full));
        // Control traffic bypasses the cap.
        tx.post(4).unwrap();
        assert_eq!(tx.queued(), 3);
        // Control overfilled the queue past the cap: the data plane stays
        // shed until pulls bring the depth back under it.
        assert!(rx.try_pull().is_some());
        assert_eq!(tx.post_data(5), Err(PostError::Full));
        assert!(matches!(rx.pull(PARK), Pulled::Msg(2)));
        tx.post_data(5).unwrap();
        assert!(matches!(rx.pull(PARK), Pulled::Msg(4)));
        assert!(matches!(rx.pull(PARK), Pulled::Msg(5)));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let (tx, mut rx) = mailbox::<u32>(8);
        tx.post_data(1).unwrap();
        tx.close();
        assert_eq!(tx.post_data(2), Err(PostError::Closed));
        assert!(matches!(rx.pull(PARK), Pulled::Msg(1)));
        assert!(matches!(rx.pull(PARK), Pulled::Closed));
    }

    #[test]
    fn cross_thread_wakeup_and_reply() {
        let (tx, mut rx) = mailbox::<(u32, Arc<ReplySlot<u32>>)>(64);
        let consumer = std::thread::spawn(move || loop {
            match rx.pull(Duration::from_millis(50)) {
                Pulled::Msg((n, slot)) => slot.deliver(n * 2),
                Pulled::Idle => continue,
                Pulled::Closed => break,
            }
        });
        for i in 0..100u32 {
            let slot = ReplySlot::for_caller();
            tx.post_data((i, Arc::clone(&slot))).unwrap();
            let got = slot.await_reply(1000, Duration::from_millis(20));
            assert_eq!(got.copied(), Some(i * 2));
        }
        tx.close();
        consumer.join().unwrap();
    }
}
