//! Continuous data verification (§6.3).
//!
//! "Vortex continuously traces requests to detect data correctness issues
//! such as missing or duplicated records. The system tracks all calls to
//! the client library ... For every successful Vortex API call, we verify
//! that ... the appended data exists at the expected location (Stream +
//! row_offset). We then verify that each append in the system reports a
//! unique location. Finally, we also verify that each record is reported
//! as converted exactly once from WOS to ROS. Additionally, for each
//! conversion, we validate that the output records are consistent with
//! the input records."
//!
//! [`AuditLog`] is the request trace; [`Verifier`] runs the pipelines.
//! In production these run as SQL over BigQuery; here they are direct
//! scans over the same read path queries use.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use vortex_client::read::{read_table, ReadOptions};
use vortex_colossus::StorageFleet;
use vortex_common::codec::encode_row;
use vortex_common::crc::crc32c;
use vortex_common::error::VortexResult;
use vortex_common::ids::{StreamId, TableId};
use vortex_common::row::{Row, RowSet};
use vortex_common::rpc::{class_scope, WorkClass};
use vortex_common::truetime::Timestamp;
use vortex_sms::api::SmsHandle;

/// One traced append acknowledgement.
#[derive(Debug, Clone)]
pub struct AppendAudit {
    /// Table written.
    pub table: TableId,
    /// Stream written.
    pub stream: StreamId,
    /// Stream-level row offset of the first row.
    pub row_offset: u64,
    /// Per-row content hashes (CRC32C of the encoded row).
    pub row_hashes: Vec<u32>,
}

/// Hashes a row's canonical encoding.
pub fn row_hash(row: &Row) -> u32 {
    let mut buf = Vec::new();
    encode_row(&mut buf, row);
    crc32c(&buf)
}

/// The request trace fed by instrumented writers.
#[derive(Debug, Default)]
pub struct AuditLog {
    appends: Mutex<Vec<AppendAudit>>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Traces one acknowledged append.
    pub fn record_append(&self, table: TableId, stream: StreamId, row_offset: u64, rows: &RowSet) {
        self.appends.lock().push(AppendAudit {
            table,
            stream,
            row_offset,
            row_hashes: rows.rows.iter().map(row_hash).collect(),
        });
    }

    /// Number of traced appends.
    pub fn len(&self) -> usize {
        self.appends.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.appends.lock().is_empty()
    }

    fn snapshot(&self, table: TableId) -> Vec<AppendAudit> {
        self.appends
            .lock()
            .iter()
            .filter(|a| a.table == table)
            .cloned()
            .collect()
    }
}

/// Result of one verification pipeline run.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    /// Appends checked against the table contents.
    pub appends_checked: usize,
    /// Rows checked.
    pub rows_checked: u64,
    /// Human-readable violations (empty = clean).
    pub violations: Vec<String>,
}

impl VerificationReport {
    /// Whether no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the §6.3 verification pipelines.
pub struct Verifier {
    sms: SmsHandle,
    fleet: StorageFleet,
}

impl Verifier {
    /// A verifier over the region's control plane + storage.
    pub fn new(sms: SmsHandle, fleet: StorageFleet) -> Self {
        Self { sms, fleet }
    }

    /// Pipeline 1+2: every traced append's rows exist at their expected
    /// (stream, row_offset) location with matching content, and every
    /// location in the table is unique.
    pub fn verify_appends(
        &self,
        table: TableId,
        audit: &AuditLog,
    ) -> VortexResult<VerificationReport> {
        // Verification is deferrable maintenance: shed first under load.
        let _bg = class_scope(WorkClass::Background);
        let snapshot = self.sms.read_snapshot();
        let tr = read_table(
            &self.sms,
            &self.fleet,
            table,
            snapshot,
            &ReadOptions::default(),
        )?;
        let mut report = VerificationReport::default();
        // Index the table by (stream, offset).
        let mut by_loc: HashMap<(u64, u64), Vec<u32>> = HashMap::new();
        for (meta, row) in &tr.rows {
            by_loc
                .entry((meta.stream, meta.offset))
                .or_default()
                .push(row_hash(row));
        }
        // Uniqueness: each location reported once (pipeline 2).
        for ((stream, offset), hashes) in &by_loc {
            report.rows_checked += hashes.len() as u64;
            if hashes.len() > 1 {
                report.violations.push(format!(
                    "location (str-{stream}, {offset}) reported {} times",
                    hashes.len()
                ));
            }
        }
        // Existence + content (pipeline 1).
        for a in audit.snapshot(table) {
            report.appends_checked += 1;
            for (i, expect) in a.row_hashes.iter().enumerate() {
                let loc = (a.stream.raw(), a.row_offset + i as u64);
                match by_loc.get(&loc) {
                    None => report.violations.push(format!(
                        "append row missing at (str-{}, {})",
                        a.stream.raw(),
                        a.row_offset + i as u64
                    )),
                    Some(hashes) => {
                        if !hashes.contains(expect) {
                            report.violations.push(format!(
                                "append row content mismatch at (str-{}, {})",
                                a.stream.raw(),
                                a.row_offset + i as u64
                            ));
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// Pipeline 3+4: conversion (or any background reorganization) must
    /// preserve the visible row multiset between two snapshots with no
    /// user writes in between — each record converted exactly once, and
    /// output consistent with input.
    pub fn verify_conversion(
        &self,
        table: TableId,
        before: Timestamp,
        after: Timestamp,
    ) -> VortexResult<VerificationReport> {
        let _bg = class_scope(WorkClass::Background);
        let a = read_table(
            &self.sms,
            &self.fleet,
            table,
            before,
            &ReadOptions::default(),
        )?;
        let b = read_table(
            &self.sms,
            &self.fleet,
            table,
            after,
            &ReadOptions::default(),
        )?;
        let mut report = VerificationReport {
            rows_checked: (a.rows.len() + b.rows.len()) as u64,
            ..VerificationReport::default()
        };
        let index = |rows: &[(vortex_ros::RowMeta, Row)]| -> HashMap<(u64, u64), u32> {
            rows.iter()
                .map(|(m, r)| ((m.stream, m.offset), row_hash(r)))
                .collect()
        };
        let ia = index(&a.rows);
        let ib = index(&b.rows);
        if a.rows.len() != ia.len() {
            report
                .violations
                .push("duplicate locations before conversion".into());
        }
        if b.rows.len() != ib.len() {
            report
                .violations
                .push("duplicate locations after conversion (record converted twice?)".into());
        }
        for (loc, h) in &ia {
            match ib.get(loc) {
                None => report.violations.push(format!(
                    "record (str-{}, {}) lost during conversion",
                    loc.0, loc.1
                )),
                Some(h2) if h2 != h => report.violations.push(format!(
                    "record (str-{}, {}) changed during conversion",
                    loc.0, loc.1
                )),
                _ => {}
            }
        }
        for loc in ib.keys() {
            if !ia.contains_key(loc) {
                report.violations.push(format!(
                    "record (str-{}, {}) appeared during conversion",
                    loc.0, loc.1
                ));
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_client::VortexClient;
    use vortex_common::ids::{ClusterId, IdGen, ServerId, SmsTaskId};
    use vortex_common::latency::WriteProfile;
    use vortex_common::row::Value;
    use vortex_common::schema::{Field, FieldType, Schema};
    use vortex_common::truetime::{SimClock, TrueTime};
    use vortex_metastore::MetaStore;
    use vortex_server::{ServerConfig, StreamServer};
    use vortex_sms::sms::{SmsConfig, SmsTask};

    struct Rig {
        client: VortexClient,
        sms: SmsHandle,
        verifier: Verifier,
        clock: SimClock,
        ids: Arc<IdGen>,
        fleet: StorageFleet,
        tt: TrueTime,
    }

    fn rig() -> Rig {
        let clock = SimClock::new(1_000_000);
        let tt = TrueTime::simulated(clock.clone(), 100, 0);
        let fleet = StorageFleet::with_mem_clusters(2, WriteProfile::instant(), 41);
        let store = MetaStore::new(tt.clone());
        let ids = Arc::new(IdGen::new(1));
        let sms = SmsTask::new(
            SmsConfig::new(SmsTaskId::from_raw(0), ClusterId::from_raw(0)),
            store,
            fleet.clone(),
            tt.clone(),
            Arc::clone(&ids),
            None,
        );
        for i in 0..2u64 {
            let server = StreamServer::new(
                ServerConfig::new(ServerId::from_raw(100 + i), ClusterId::from_raw(i % 2)),
                fleet.clone(),
                tt.clone(),
                Arc::clone(&ids),
            )
            .unwrap();
            sms.register_server(server);
        }
        let sms: SmsHandle = sms;
        let client = VortexClient::new(sms.clone(), fleet.clone(), tt.clone());
        let verifier = Verifier::new(sms.clone(), fleet.clone());
        Rig {
            client,
            sms,
            verifier,
            clock,
            ids,
            fleet,
            tt,
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("k", FieldType::Int64),
            Field::required("v", FieldType::String),
        ])
    }

    fn rows(start: i64, n: usize) -> RowSet {
        RowSet::new(
            (0..n)
                .map(|i| {
                    Row::insert(vec![
                        Value::Int64(start + i as i64),
                        Value::String(format!("v{}", start + i as i64)),
                    ])
                })
                .collect(),
        )
    }

    #[test]
    fn clean_writes_verify_clean() {
        let r = rig();
        let t = r.client.create_table("t", schema()).unwrap();
        let audit = AuditLog::new();
        let mut w = r.client.create_unbuffered_writer(t.table).unwrap();
        for i in 0..5 {
            let batch = rows(i * 10, 10);
            let res = w.append(batch.clone()).unwrap();
            audit.record_append(t.table, w.stream_id(), res.row_offset, &batch);
        }
        let report = r.verifier.verify_appends(t.table, &audit).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.appends_checked, 5);
        assert_eq!(report.rows_checked, 50);
        assert!(!audit.is_empty());
        assert_eq!(audit.len(), 5);
    }

    #[test]
    fn missing_rows_detected() {
        let r = rig();
        let t = r.client.create_table("t", schema()).unwrap();
        let audit = AuditLog::new();
        let mut w = r.client.create_unbuffered_writer(t.table).unwrap();
        let batch = rows(0, 5);
        let res = w.append(batch.clone()).unwrap();
        audit.record_append(t.table, w.stream_id(), res.row_offset, &batch);
        // Forge an audit entry for rows that were never written.
        audit.record_append(t.table, w.stream_id(), 100, &rows(100, 3));
        let report = r.verifier.verify_appends(t.table, &audit).unwrap();
        assert_eq!(report.violations.len(), 3, "{:?}", report.violations);
        assert!(report.violations[0].contains("missing"));
    }

    #[test]
    fn content_mismatch_detected() {
        let r = rig();
        let t = r.client.create_table("t", schema()).unwrap();
        let audit = AuditLog::new();
        let mut w = r.client.create_unbuffered_writer(t.table).unwrap();
        let batch = rows(0, 3);
        let res = w.append(batch).unwrap();
        // Audit claims different content at the same location.
        audit.record_append(t.table, w.stream_id(), res.row_offset, &rows(50, 3));
        let report = r.verifier.verify_appends(t.table, &audit).unwrap();
        assert_eq!(report.violations.len(), 3);
        assert!(report.violations[0].contains("mismatch"));
    }

    #[test]
    fn conversion_preservation_verified() {
        let r = rig();
        let t = r.client.create_table("t", schema()).unwrap();
        let mut w = r.client.create_unbuffered_writer(t.table).unwrap();
        w.append(rows(0, 100)).unwrap();
        let s = w.stream_id();
        r.sms.finalize_stream(t.table, s).unwrap();
        r.clock.advance(1_000);
        let before = r.sms.read_snapshot();
        r.clock.advance(1_000);
        // Convert WOS → ROS.
        let opt = vortex_optimizer::StorageOptimizer::new(
            Arc::clone(&r.sms),
            r.fleet.clone(),
            r.tt.clone(),
            Arc::clone(&r.ids),
            vortex_optimizer::OptimizerConfig::default(),
        );
        opt.convert_wos(t.table).unwrap();
        let after = r.sms.read_snapshot();
        let report = r
            .verifier
            .verify_conversion(t.table, before, after)
            .unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.rows_checked, 200);
    }

    #[test]
    fn conversion_loss_detected() {
        // Simulate a buggy conversion by comparing across a DML delete —
        // the verifier flags the "lost" records.
        let r = rig();
        let t = r.client.create_table("t", schema()).unwrap();
        let mut w = r.client.create_unbuffered_writer(t.table).unwrap();
        w.append(rows(0, 20)).unwrap();
        let s = w.stream_id();
        r.sms.finalize_stream(t.table, s).unwrap();
        r.clock.advance(1_000);
        let before = r.sms.read_snapshot();
        r.clock.advance(1_000);
        let frag = r
            .sms
            .list_fragments(t.table, r.sms.read_snapshot())
            .into_iter()
            .next()
            .unwrap();
        r.sms
            .commit_dml(
                t.table,
                &[(
                    frag.fragment,
                    vortex_common::mask::DeletionMask::from_range(0, 5),
                )],
                &[],
                &[],
            )
            .unwrap();
        let after = r.sms.read_snapshot();
        let report = r
            .verifier
            .verify_conversion(t.table, before, after)
            .unwrap();
        assert_eq!(report.violations.len(), 5);
        assert!(report.violations[0].contains("lost"));
    }

    #[test]
    fn row_hash_distinguishes_rows() {
        let a = Row::insert(vec![Value::Int64(1)]);
        let b = Row::insert(vec![Value::Int64(2)]);
        assert_ne!(row_hash(&a), row_hash(&b));
        assert_eq!(row_hash(&a), row_hash(&a.clone()));
    }
}
