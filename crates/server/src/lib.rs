//! The Vortex data plane: the Stream Server (§5.3).
//!
//! "The Stream Server is the data plane of Vortex. It owns a set of
//! Streamlets and creates Fragments for those Streamlets." This crate
//! implements:
//!
//! - the **append path**: offset validation (§4.2.2), schema-version
//!   checks (§5.4.1), row validation, 2 MB write buffering, column
//!   properties and bloom keys per fragment, and **synchronous physical
//!   replication** to two Colossus clusters before acknowledging (§5.6);
//! - the **error path**: a failed replica write finalizes the current
//!   Fragment and retries on the next one (whose File Map records the
//!   committed size of the failed file); repeated failures finalize the
//!   Streamlet and surface the failure so the client asks the SMS for a
//!   new one (§5.3);
//! - **fragment rotation** at a configurable max size — "small enough
//!   that conversion ... happens frequently, but not so small that too
//!   many Fragments are created in the metadata";
//! - **commit records** piggybacked on the next append or emitted by an
//!   idle tick (§7.1), **flush records** for BUFFERED streams, and
//!   fragment finalization with bloom filter + footer (§5.4.4);
//! - **heartbeat production** (§5.5): per-streamlet deltas since the last
//!   report, load information, and periodic full-state snapshots;
//! - its own metadata durability: a **transaction log and periodic
//!   checkpoints** in Colossus, with recovery (§5.3).

#![warn(missing_docs)]

pub mod hosted;
pub mod server;
mod shard;
pub mod wal;

#[cfg(test)]
mod tests;

pub use server::{AppendAck, ServerConfig, StreamServer};
