//! Stream Server metadata durability: transaction log + checkpoints.
//!
//! "The Stream Server has its own in memory metadata about its Streamlets
//! and Fragments, and persists this by writing to a transaction log and
//! periodically writing checkpoints. After writing a checkpoint, old
//! transaction logs and checkpoints are garbage collected. Fragments,
//! checkpoints, and transaction logs are all stored in Colossus." (§5.3)
//!
//! The log records streamlet lifecycle events; a checkpoint snapshots the
//! full hosted-streamlet map. Recovery replays checkpoint + newer log
//! records. Recovered streamlets come back *revoked* — a restarted server
//! never resumes writing to old log files (the SMS reconciles and places
//! a fresh streamlet instead, §5.2), but it can still serve metadata,
//! heartbeat, and GC for them.

use vortex_colossus::Colossus;
use vortex_common::codec::{get_uvarint, put_uvarint};
use vortex_common::crc::crc32c;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{ServerId, StreamletId, TableId};
use vortex_common::truetime::Timestamp;

/// One durable metadata event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEvent {
    /// A streamlet was created on this server.
    StreamletOpened {
        /// Owning table.
        table: TableId,
        /// The streamlet.
        streamlet: StreamletId,
        /// Stream-level first row.
        first_stream_row: u64,
    },
    /// A fragment was sealed (rotation or finalize).
    FragmentSealed {
        /// The streamlet.
        streamlet: StreamletId,
        /// Sealed fragment's ordinal.
        ordinal: u32,
        /// Committed size in bytes.
        committed_size: u64,
        /// Committed rows.
        rows: u64,
    },
    /// The streamlet stopped accepting appends.
    StreamletFinalized {
        /// The streamlet.
        streamlet: StreamletId,
    },
    /// Fragment log files were garbage collected.
    FragmentsDeleted {
        /// The streamlet.
        streamlet: StreamletId,
        /// Deleted ordinals.
        ordinals: Vec<u32>,
    },
}

impl WalEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalEvent::StreamletOpened {
                table,
                streamlet,
                first_stream_row,
            } => {
                out.push(1);
                put_uvarint(out, table.raw());
                put_uvarint(out, streamlet.raw());
                put_uvarint(out, *first_stream_row);
            }
            WalEvent::FragmentSealed {
                streamlet,
                ordinal,
                committed_size,
                rows,
            } => {
                out.push(2);
                put_uvarint(out, streamlet.raw());
                put_uvarint(out, *ordinal as u64);
                put_uvarint(out, *committed_size);
                put_uvarint(out, *rows);
            }
            WalEvent::StreamletFinalized { streamlet } => {
                out.push(3);
                put_uvarint(out, streamlet.raw());
            }
            WalEvent::FragmentsDeleted {
                streamlet,
                ordinals,
            } => {
                out.push(4);
                put_uvarint(out, streamlet.raw());
                put_uvarint(out, ordinals.len() as u64);
                for o in ordinals {
                    put_uvarint(out, *o as u64);
                }
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> VortexResult<Self> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| VortexError::Decode("wal event tag".into()))?;
        *pos += 1;
        Ok(match tag {
            1 => WalEvent::StreamletOpened {
                table: TableId::from_raw(get_uvarint(buf, pos)?),
                streamlet: StreamletId::from_raw(get_uvarint(buf, pos)?),
                first_stream_row: get_uvarint(buf, pos)?,
            },
            2 => WalEvent::FragmentSealed {
                streamlet: StreamletId::from_raw(get_uvarint(buf, pos)?),
                ordinal: get_uvarint(buf, pos)? as u32,
                committed_size: get_uvarint(buf, pos)?,
                rows: get_uvarint(buf, pos)?,
            },
            3 => WalEvent::StreamletFinalized {
                streamlet: StreamletId::from_raw(get_uvarint(buf, pos)?),
            },
            4 => {
                let streamlet = StreamletId::from_raw(get_uvarint(buf, pos)?);
                let n = get_uvarint(buf, pos)? as usize;
                if n > buf.len() {
                    return Err(VortexError::Decode("wal ordinals count".into()));
                }
                let mut ordinals = Vec::with_capacity(n);
                for _ in 0..n {
                    ordinals.push(get_uvarint(buf, pos)? as u32);
                }
                WalEvent::FragmentsDeleted {
                    streamlet,
                    ordinals,
                }
            }
            other => return Err(VortexError::Decode(format!("bad wal tag {other}"))),
        })
    }
}

fn wal_path(server: ServerId, epoch: u64) -> String {
    format!("srv/{:016x}/wal.{:08x}", server.raw(), epoch)
}

fn checkpoint_path(server: ServerId, epoch: u64) -> String {
    format!("srv/{:016x}/ckpt.{:08x}", server.raw(), epoch)
}

fn srv_prefix(server: ServerId) -> String {
    format!("srv/{:016x}/", server.raw())
}

/// Validates a checkpoint file's framing and CRC, returning the snapshot
/// body if intact. `None` means the file is truncated or corrupt (e.g. a
/// torn append persisted only a prefix) and recovery must fall back.
fn parse_checkpoint(data: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let n = get_uvarint(data, &mut pos).ok()? as usize;
    if pos.checked_add(n)?.checked_add(4)? > data.len() {
        return None; // truncated
    }
    let body = &data[pos..pos + n];
    // lint:allow(L002, the slice is exactly 4 bytes; bounds were checked two lines up)
    let crc = u32::from_le_bytes(data[pos + n..pos + n + 4].try_into().unwrap());
    if crc32c(body) != crc {
        return None; // corrupt
    }
    Some(body.to_vec())
}

/// The server's metadata log, bound to the server's home cluster.
pub struct ServerLog {
    server: ServerId,
    epoch: u64,
}

impl ServerLog {
    /// Opens the log for a server, starting a fresh epoch after any
    /// existing ones.
    pub fn open(server: ServerId, cluster: &Colossus) -> VortexResult<Self> {
        let existing = cluster.list(&srv_prefix(server))?;
        let epoch = existing
            .iter()
            .filter_map(|p| p.rsplit('.').next())
            .filter_map(|s| u64::from_str_radix(s, 16).ok())
            .max()
            .map(|e| e + 1)
            .unwrap_or(0);
        Ok(Self { server, epoch })
    }

    /// Appends one event (length- and CRC-framed).
    pub fn log(&self, cluster: &Colossus, event: &WalEvent) -> VortexResult<()> {
        let mut body = Vec::new();
        event.encode(&mut body);
        let mut rec = Vec::with_capacity(body.len() + 8);
        put_uvarint(&mut rec, body.len() as u64);
        rec.extend_from_slice(&body);
        rec.extend_from_slice(&crc32c(&body).to_le_bytes());
        cluster.append(&wal_path(self.server, self.epoch), &rec, Timestamp::MIN)?;
        // WAL leg of the append path: one durable log record per event.
        vortex_common::obs::global()
            .counter("wal.records_logged")
            .inc();
        Ok(())
    }

    /// Writes a checkpoint of opaque snapshot bytes and garbage-collects
    /// all older WAL/checkpoint files (§5.3).
    pub fn checkpoint(&mut self, cluster: &Colossus, snapshot: &[u8]) -> VortexResult<()> {
        self.epoch += 1;
        let mut framed = Vec::with_capacity(snapshot.len() + 8);
        put_uvarint(&mut framed, snapshot.len() as u64);
        framed.extend_from_slice(snapshot);
        framed.extend_from_slice(&crc32c(snapshot).to_le_bytes());
        cluster.append(
            &checkpoint_path(self.server, self.epoch),
            &framed,
            Timestamp::MIN,
        )?;
        // A crash here leaves the new checkpoint durable but the old
        // epoch's files un-collected; recovery prefers the newest intact
        // checkpoint, so the stale files are harmless until the next
        // successful checkpoint sweeps them.
        vortex_common::crash_point!("server.checkpoint.mid");
        // GC older logs and checkpoints.
        for p in cluster.list(&srv_prefix(self.server))? {
            let keep_wal = p == wal_path(self.server, self.epoch);
            let keep_ckpt = p == checkpoint_path(self.server, self.epoch);
            if !keep_wal && !keep_ckpt {
                let _ = cluster.delete(&p);
            }
        }
        Ok(())
    }

    /// Recovers the newest *intact* checkpoint (if any) and all events
    /// logged after it.
    ///
    /// A server can die mid-`checkpoint` — after a torn append left a
    /// truncated or CRC-damaged `ckpt.{epoch}` file, but before the
    /// older epoch's files were garbage collected (GC only runs once the
    /// checkpoint append succeeded). Recovery therefore walks checkpoint
    /// epochs newest→oldest and takes the first one whose framing and
    /// CRC validate; the surviving WAL files from that epoch onward
    /// replay on top. If *no* checkpoint validates, the torn checkpoint
    /// simply never happened: recover from the WAL alone.
    pub fn recover(
        server: ServerId,
        cluster: &Colossus,
    ) -> VortexResult<(Option<Vec<u8>>, Vec<WalEvent>)> {
        let files = cluster.list(&srv_prefix(server))?;
        let mut ckpt_epochs: Vec<u64> = files
            .iter()
            .filter(|p| p.contains("/ckpt."))
            .filter_map(|p| p.rsplit('.').next())
            .filter_map(|s| u64::from_str_radix(s, 16).ok())
            .collect();
        ckpt_epochs.sort_unstable_by(|a, b| b.cmp(a)); // newest first
        let mut snapshot = None;
        let mut snapshot_epoch = None;
        for e in ckpt_epochs {
            let data = cluster.read_all(&checkpoint_path(server, e))?.data;
            if let Some(body) = parse_checkpoint(&data) {
                snapshot = Some(body);
                snapshot_epoch = Some(e);
                break;
            }
            // Torn or corrupt checkpoint: fall back to the previous one.
        }
        // Replay WAL files with epoch >= the recovered checkpoint epoch
        // (those written after it), in epoch order.
        let min_epoch = snapshot_epoch.unwrap_or(0);
        let mut wal_epochs: Vec<u64> = files
            .iter()
            .filter(|p| p.contains("/wal."))
            .filter_map(|p| p.rsplit('.').next())
            .filter_map(|s| u64::from_str_radix(s, 16).ok())
            .filter(|e| *e >= min_epoch)
            .collect();
        wal_epochs.sort_unstable();
        let mut events = Vec::new();
        for e in wal_epochs {
            let data = cluster.read_all(&wal_path(server, e))?.data;
            let mut pos = 0usize;
            while pos < data.len() {
                let Ok(n) = get_uvarint(&data, &mut pos) else {
                    break; // torn tail
                };
                let n = n as usize;
                if pos + n + 4 > data.len() {
                    break; // torn tail
                }
                let body = &data[pos..pos + n];
                // lint:allow(L002, the slice is exactly 4 bytes; the torn-tail bounds check is two lines up)
                let crc = u32::from_le_bytes(data[pos + n..pos + n + 4].try_into().unwrap());
                if crc32c(body) != crc {
                    break; // torn tail
                }
                let mut bp = 0usize;
                events.push(WalEvent::decode(body, &mut bp)?);
                pos += n + 4;
            }
        }
        Ok((snapshot, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_common::ids::ClusterId;
    use vortex_common::latency::WriteProfile;

    fn cluster() -> std::sync::Arc<Colossus> {
        Colossus::new_mem(ClusterId::from_raw(0), WriteProfile::instant(), 3)
    }

    fn ev(i: u64) -> WalEvent {
        WalEvent::FragmentSealed {
            streamlet: StreamletId::from_raw(i),
            ordinal: i as u32,
            committed_size: i * 100,
            rows: i * 10,
        }
    }

    #[test]
    fn log_and_recover_events() {
        let c = cluster();
        let srv = ServerId::from_raw(5);
        let log = ServerLog::open(srv, &c).unwrap();
        let events = vec![
            WalEvent::StreamletOpened {
                table: TableId::from_raw(1),
                streamlet: StreamletId::from_raw(2),
                first_stream_row: 0,
            },
            ev(1),
            WalEvent::StreamletFinalized {
                streamlet: StreamletId::from_raw(2),
            },
            WalEvent::FragmentsDeleted {
                streamlet: StreamletId::from_raw(2),
                ordinals: vec![0, 1, 2],
            },
        ];
        for e in &events {
            log.log(&c, e).unwrap();
        }
        let (snap, recovered) = ServerLog::recover(srv, &c).unwrap();
        assert!(snap.is_none());
        assert_eq!(recovered, events);
    }

    #[test]
    fn checkpoint_truncates_history() {
        let c = cluster();
        let srv = ServerId::from_raw(6);
        let mut log = ServerLog::open(srv, &c).unwrap();
        log.log(&c, &ev(1)).unwrap();
        log.log(&c, &ev(2)).unwrap();
        log.checkpoint(&c, b"SNAPSHOT-STATE").unwrap();
        log.log(&c, &ev(3)).unwrap();
        let (snap, events) = ServerLog::recover(srv, &c).unwrap();
        assert_eq!(snap.as_deref(), Some(&b"SNAPSHOT-STATE"[..]));
        assert_eq!(events, vec![ev(3)], "pre-checkpoint events dropped");
        // Old files physically gone.
        let files = c.list(&srv_prefix(srv)).unwrap();
        assert_eq!(files.len(), 2, "one ckpt + one wal: {files:?}");
    }

    #[test]
    fn torn_wal_tail_is_ignored() {
        let c = cluster();
        let srv = ServerId::from_raw(7);
        let log = ServerLog::open(srv, &c).unwrap();
        log.log(&c, &ev(1)).unwrap();
        // Simulate a torn record: append garbage.
        c.append(&wal_path(srv, 0), &[9, 1, 2], Timestamp::MIN)
            .unwrap();
        let (_, events) = ServerLog::recover(srv, &c).unwrap();
        assert_eq!(events, vec![ev(1)]);
    }

    #[test]
    fn reopen_starts_new_epoch() {
        let c = cluster();
        let srv = ServerId::from_raw(8);
        let log1 = ServerLog::open(srv, &c).unwrap();
        log1.log(&c, &ev(1)).unwrap();
        let log2 = ServerLog::open(srv, &c).unwrap();
        log2.log(&c, &ev(2)).unwrap();
        let (_, events) = ServerLog::recover(srv, &c).unwrap();
        assert_eq!(events, vec![ev(1), ev(2)]);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_previous_intact_one() {
        let c = cluster();
        let srv = ServerId::from_raw(9);
        let mut log = ServerLog::open(srv, &c).unwrap();
        log.checkpoint(&c, b"GOOD").unwrap();
        // A newer bogus checkpoint (as if the server died after a torn
        // checkpoint append) must not poison recovery.
        let bogus_path = checkpoint_path(srv, 99);
        c.append(&bogus_path, &[0xFF; 10], Timestamp::MIN).unwrap();
        let (snap, _) = ServerLog::recover(srv, &c).unwrap();
        assert_eq!(snap.as_deref(), Some(&b"GOOD"[..]));
    }

    #[test]
    fn torn_checkpoint_tail_recovers_previous_state() {
        let c = cluster();
        let srv = ServerId::from_raw(10);
        let mut log = ServerLog::open(srv, &c).unwrap();
        log.log(&c, &ev(1)).unwrap();
        log.checkpoint(&c, b"FIRST").unwrap();
        log.log(&c, &ev(2)).unwrap();
        // The next checkpoint append tears: only a prefix lands, and the
        // checkpoint call fails *before* GC runs, so the first
        // checkpoint and its newer WAL records survive.
        c.faults().set_torn_seed(7);
        c.faults().torn_next_appends(1);
        assert!(log.checkpoint(&c, b"SECOND").is_err());
        let (snap, events) = ServerLog::recover(srv, &c).unwrap();
        assert_eq!(snap.as_deref(), Some(&b"FIRST"[..]));
        assert_eq!(events, vec![ev(2)], "post-checkpoint events replayed");
    }

    #[test]
    fn all_checkpoints_torn_recovers_from_wal_alone() {
        let c = cluster();
        let srv = ServerId::from_raw(11);
        let mut log = ServerLog::open(srv, &c).unwrap();
        log.log(&c, &ev(1)).unwrap();
        // The very first checkpoint tears: there is no older intact one,
        // so recovery behaves as if no checkpoint was ever taken.
        c.faults().set_torn_seed(3);
        c.faults().torn_next_appends(1);
        assert!(log.checkpoint(&c, b"ONLY").is_err());
        let (snap, events) = ServerLog::recover(srv, &c).unwrap();
        assert!(snap.is_none());
        assert_eq!(events, vec![ev(1)]);
    }
}
