//! Stream Server metadata durability: transaction log + checkpoints.
//!
//! "The Stream Server has its own in memory metadata about its Streamlets
//! and Fragments, and persists this by writing to a transaction log and
//! periodically writing checkpoints. After writing a checkpoint, old
//! transaction logs and checkpoints are garbage collected. Fragments,
//! checkpoints, and transaction logs are all stored in Colossus." (§5.3)
//!
//! The log records streamlet lifecycle events; a checkpoint snapshots the
//! full hosted-streamlet map. Recovery replays checkpoint + newer log
//! records. Recovered streamlets come back *revoked* — a restarted server
//! never resumes writing to old log files (the SMS reconciles and places
//! a fresh streamlet instead, §5.2), but it can still serve metadata,
//! heartbeat, and GC for them.

use vortex_colossus::Colossus;
use vortex_common::codec::{get_uvarint, put_uvarint};
use vortex_common::crc::crc32c;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{ServerId, StreamletId, TableId};
use vortex_common::truetime::Timestamp;

/// One durable metadata event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEvent {
    /// A streamlet was created on this server.
    StreamletOpened {
        /// Owning table.
        table: TableId,
        /// The streamlet.
        streamlet: StreamletId,
        /// Stream-level first row.
        first_stream_row: u64,
    },
    /// A fragment was sealed (rotation or finalize).
    FragmentSealed {
        /// The streamlet.
        streamlet: StreamletId,
        /// Sealed fragment's ordinal.
        ordinal: u32,
        /// Committed size in bytes.
        committed_size: u64,
        /// Committed rows.
        rows: u64,
    },
    /// The streamlet stopped accepting appends.
    StreamletFinalized {
        /// The streamlet.
        streamlet: StreamletId,
    },
    /// Fragment log files were garbage collected.
    FragmentsDeleted {
        /// The streamlet.
        streamlet: StreamletId,
        /// Deleted ordinals.
        ordinals: Vec<u32>,
    },
}

impl WalEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalEvent::StreamletOpened {
                table,
                streamlet,
                first_stream_row,
            } => {
                out.push(1);
                put_uvarint(out, table.raw());
                put_uvarint(out, streamlet.raw());
                put_uvarint(out, *first_stream_row);
            }
            WalEvent::FragmentSealed {
                streamlet,
                ordinal,
                committed_size,
                rows,
            } => {
                out.push(2);
                put_uvarint(out, streamlet.raw());
                put_uvarint(out, *ordinal as u64);
                put_uvarint(out, *committed_size);
                put_uvarint(out, *rows);
            }
            WalEvent::StreamletFinalized { streamlet } => {
                out.push(3);
                put_uvarint(out, streamlet.raw());
            }
            WalEvent::FragmentsDeleted {
                streamlet,
                ordinals,
            } => {
                out.push(4);
                put_uvarint(out, streamlet.raw());
                put_uvarint(out, ordinals.len() as u64);
                for o in ordinals {
                    put_uvarint(out, *o as u64);
                }
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> VortexResult<Self> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| VortexError::Decode("wal event tag".into()))?;
        *pos += 1;
        Ok(match tag {
            1 => WalEvent::StreamletOpened {
                table: TableId::from_raw(get_uvarint(buf, pos)?),
                streamlet: StreamletId::from_raw(get_uvarint(buf, pos)?),
                first_stream_row: get_uvarint(buf, pos)?,
            },
            2 => WalEvent::FragmentSealed {
                streamlet: StreamletId::from_raw(get_uvarint(buf, pos)?),
                ordinal: get_uvarint(buf, pos)? as u32,
                committed_size: get_uvarint(buf, pos)?,
                rows: get_uvarint(buf, pos)?,
            },
            3 => WalEvent::StreamletFinalized {
                streamlet: StreamletId::from_raw(get_uvarint(buf, pos)?),
            },
            4 => {
                let streamlet = StreamletId::from_raw(get_uvarint(buf, pos)?);
                let n = get_uvarint(buf, pos)? as usize;
                if n > buf.len() {
                    return Err(VortexError::Decode("wal ordinals count".into()));
                }
                let mut ordinals = Vec::with_capacity(n);
                for _ in 0..n {
                    ordinals.push(get_uvarint(buf, pos)? as u32);
                }
                WalEvent::FragmentsDeleted {
                    streamlet,
                    ordinals,
                }
            }
            other => return Err(VortexError::Decode(format!("bad wal tag {other}"))),
        })
    }
}

fn wal_path(server: ServerId, shard: u32, epoch: u64) -> String {
    format!("srv/{:016x}/s{:02x}/wal.{:08x}", server.raw(), shard, epoch)
}

fn checkpoint_path(server: ServerId, shard: u32, epoch: u64) -> String {
    format!(
        "srv/{:016x}/s{:02x}/ckpt.{:08x}",
        server.raw(),
        shard,
        epoch
    )
}

fn shard_prefix(server: ServerId, shard: u32) -> String {
    format!("srv/{:016x}/s{:02x}/", server.raw(), shard)
}

fn srv_prefix(server: ServerId) -> String {
    format!("srv/{:016x}/", server.raw())
}

/// Shard directories present under a server's log prefix — how recovery
/// discovers a dead incarnation's shards without assuming the restarted
/// server runs the same shard count.
pub fn shards_present(server: ServerId, cluster: &Colossus) -> VortexResult<Vec<u32>> {
    let prefix = srv_prefix(server);
    let mut shards: Vec<u32> = cluster
        .list(&prefix)?
        .iter()
        .filter_map(|p| p.strip_prefix(&prefix))
        .filter_map(|rest| rest.split('/').next())
        .filter_map(|dir| dir.strip_prefix('s'))
        .filter_map(|hex| u32::from_str_radix(hex, 16).ok())
        .collect();
    shards.sort_unstable();
    shards.dedup();
    Ok(shards)
}

/// Validates a checkpoint file's framing and CRC, returning the snapshot
/// body if intact. `None` means the file is truncated or corrupt (e.g. a
/// torn append persisted only a prefix) and recovery must fall back.
fn parse_checkpoint(data: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let n = get_uvarint(data, &mut pos).ok()? as usize;
    if pos.checked_add(n)?.checked_add(4)? > data.len() {
        return None; // truncated
    }
    let body = &data[pos..pos + n];
    // lint:allow(L002, the slice is exactly 4 bytes; bounds were checked two lines up)
    let crc = u32::from_le_bytes(data[pos + n..pos + n + 4].try_into().unwrap());
    if crc32c(body) != crc {
        return None; // corrupt
    }
    Some(body.to_vec())
}

/// One shard's metadata log, bound to the server's home cluster. Each
/// shard thread owns its log outright (single writer): records from
/// different shards never interleave within a file, so a group commit's
/// events always land as one contiguous, CRC-framed record.
pub struct ServerLog {
    server: ServerId,
    shard: u32,
    epoch: u64,
    // Reused encode scratch: the group-commit hot path appends into these
    // pre-grown arenas instead of allocating per record.
    body: Vec<u8>,
    rec: Vec<u8>,
}

impl ServerLog {
    /// Opens one shard's log, starting a fresh epoch after any existing
    /// ones.
    pub fn open(server: ServerId, shard: u32, cluster: &Colossus) -> VortexResult<Self> {
        let existing = cluster.list(&shard_prefix(server, shard))?;
        let epoch = existing
            .iter()
            .filter_map(|p| p.rsplit('.').next())
            .filter_map(|s| u64::from_str_radix(s, 16).ok())
            .max()
            .map(|e| e + 1)
            .unwrap_or(0);
        Ok(Self {
            server,
            shard,
            epoch,
            body: Vec::with_capacity(256), // lint:allow(L010, open-path arena preallocation; hot edge is a name-resolved fs `open`)
            rec: Vec::with_capacity(256), // lint:allow(L010, open-path arena preallocation; hot edge is a name-resolved fs `open`)
        })
    }

    /// Appends one event (length- and CRC-framed).
    pub fn log(&mut self, cluster: &Colossus, event: &WalEvent) -> VortexResult<()> {
        self.log_batch(cluster, std::slice::from_ref(event))
    }

    /// Appends a group commit's events as ONE record-aligned WAL append:
    /// the whole batch shares a single length + CRC frame, so a torn
    /// write truncates recovery to a whole-group prefix — a group's
    /// events are all replayed or none are (§5.3 durability at group
    /// granularity).
    pub fn log_batch(&mut self, cluster: &Colossus, events: &[WalEvent]) -> VortexResult<()> {
        if events.is_empty() {
            return Ok(());
        }
        self.body.clear();
        self.rec.clear();
        for event in events {
            event.encode(&mut self.body);
        }
        put_uvarint(&mut self.rec, self.body.len() as u64);
        // lint:allow(L010, appends into the log's reused scratch arena; capacity is amortized across group commits)
        self.rec.extend_from_slice(&self.body);
        let crc = crc32c(&self.body).to_le_bytes();
        // lint:allow(L010, four-byte CRC trailer into the reused arena)
        self.rec.extend_from_slice(&crc);
        cluster.append(
            &wal_path(self.server, self.shard, self.epoch),
            &self.rec,
            Timestamp::MIN,
        )?;
        // WAL leg of the append path: one durable record per group.
        let m = vortex_common::obs::global();
        m.counter("wal.records_logged").inc();
        m.counter(vortex_common::obs::GROUP_COMMIT_WAL_EVENTS)
            .add(events.len() as u64);
        Ok(())
    }

    /// Writes a checkpoint of opaque snapshot bytes and garbage-collects
    /// all older WAL/checkpoint files (§5.3).
    pub fn checkpoint(&mut self, cluster: &Colossus, snapshot: &[u8]) -> VortexResult<()> {
        self.epoch += 1;
        let mut framed = Vec::with_capacity(snapshot.len() + 8);
        put_uvarint(&mut framed, snapshot.len() as u64);
        framed.extend_from_slice(snapshot);
        framed.extend_from_slice(&crc32c(snapshot).to_le_bytes());
        cluster.append(
            &checkpoint_path(self.server, self.shard, self.epoch),
            &framed,
            Timestamp::MIN,
        )?;
        // A crash here leaves the new checkpoint durable but the old
        // epoch's files un-collected; recovery prefers the newest intact
        // checkpoint, so the stale files are harmless until the next
        // successful checkpoint sweeps them.
        vortex_common::crash_point!("server.checkpoint.mid");
        // GC older logs and checkpoints (this shard's directory only —
        // sibling shards own their files).
        for p in cluster.list(&shard_prefix(self.server, self.shard))? {
            let keep_wal = p == wal_path(self.server, self.shard, self.epoch);
            let keep_ckpt = p == checkpoint_path(self.server, self.shard, self.epoch);
            if !keep_wal && !keep_ckpt {
                let _ = cluster.delete(&p);
            }
        }
        Ok(())
    }

    /// Recovers the newest *intact* checkpoint (if any) and all events
    /// logged after it.
    ///
    /// A server can die mid-`checkpoint` — after a torn append left a
    /// truncated or CRC-damaged `ckpt.{epoch}` file, but before the
    /// older epoch's files were garbage collected (GC only runs once the
    /// checkpoint append succeeded). Recovery therefore walks checkpoint
    /// epochs newest→oldest and takes the first one whose framing and
    /// CRC validate; the surviving WAL files from that epoch onward
    /// replay on top. If *no* checkpoint validates, the torn checkpoint
    /// simply never happened: recover from the WAL alone.
    pub fn recover(
        server: ServerId,
        shard: u32,
        cluster: &Colossus,
    ) -> VortexResult<(Option<Vec<u8>>, Vec<WalEvent>)> {
        let files = cluster.list(&shard_prefix(server, shard))?;
        let mut ckpt_epochs: Vec<u64> = files
            .iter()
            .filter(|p| p.contains("/ckpt."))
            .filter_map(|p| p.rsplit('.').next())
            .filter_map(|s| u64::from_str_radix(s, 16).ok())
            .collect();
        ckpt_epochs.sort_unstable_by(|a, b| b.cmp(a)); // newest first
        let mut snapshot = None;
        let mut snapshot_epoch = None;
        for e in ckpt_epochs {
            let data = cluster.read_all(&checkpoint_path(server, shard, e))?.data;
            if let Some(body) = parse_checkpoint(&data) {
                snapshot = Some(body);
                snapshot_epoch = Some(e);
                break;
            }
            // Torn or corrupt checkpoint: fall back to the previous one.
        }
        // Replay WAL files with epoch >= the recovered checkpoint epoch
        // (those written after it), in epoch order.
        let min_epoch = snapshot_epoch.unwrap_or(0);
        let mut wal_epochs: Vec<u64> = files
            .iter()
            .filter(|p| p.contains("/wal."))
            .filter_map(|p| p.rsplit('.').next())
            .filter_map(|s| u64::from_str_radix(s, 16).ok())
            .filter(|e| *e >= min_epoch)
            .collect();
        wal_epochs.sort_unstable();
        let mut events = Vec::new();
        for e in wal_epochs {
            let data = cluster.read_all(&wal_path(server, shard, e))?.data;
            let mut pos = 0usize;
            while pos < data.len() {
                let Ok(n) = get_uvarint(&data, &mut pos) else {
                    break; // torn tail
                };
                let n = n as usize;
                if pos + n + 4 > data.len() {
                    break; // torn tail
                }
                let body = &data[pos..pos + n];
                // lint:allow(L002, the slice is exactly 4 bytes; the torn-tail bounds check is two lines up)
                let crc = u32::from_le_bytes(data[pos + n..pos + n + 4].try_into().unwrap());
                if crc32c(body) != crc {
                    break; // torn tail
                }
                // One record may carry a whole group commit's events:
                // decode until the body is exhausted. A torn append never
                // splits a group — the CRC frame covers all of it.
                let mut bp = 0usize;
                while bp < body.len() {
                    events.push(WalEvent::decode(body, &mut bp)?);
                }
                pos += n + 4;
            }
        }
        Ok((snapshot, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_common::ids::ClusterId;
    use vortex_common::latency::WriteProfile;

    fn cluster() -> std::sync::Arc<Colossus> {
        Colossus::new_mem(ClusterId::from_raw(0), WriteProfile::instant(), 3)
    }

    fn ev(i: u64) -> WalEvent {
        WalEvent::FragmentSealed {
            streamlet: StreamletId::from_raw(i),
            ordinal: i as u32,
            committed_size: i * 100,
            rows: i * 10,
        }
    }

    #[test]
    fn log_and_recover_events() {
        let c = cluster();
        let srv = ServerId::from_raw(5);
        let mut log = ServerLog::open(srv, 0, &c).unwrap();
        let events = vec![
            WalEvent::StreamletOpened {
                table: TableId::from_raw(1),
                streamlet: StreamletId::from_raw(2),
                first_stream_row: 0,
            },
            ev(1),
            WalEvent::StreamletFinalized {
                streamlet: StreamletId::from_raw(2),
            },
            WalEvent::FragmentsDeleted {
                streamlet: StreamletId::from_raw(2),
                ordinals: vec![0, 1, 2],
            },
        ];
        for e in &events {
            log.log(&c, e).unwrap();
        }
        let (snap, recovered) = ServerLog::recover(srv, 0, &c).unwrap();
        assert!(snap.is_none());
        assert_eq!(recovered, events);
    }

    #[test]
    fn checkpoint_truncates_history() {
        let c = cluster();
        let srv = ServerId::from_raw(6);
        let mut log = ServerLog::open(srv, 0, &c).unwrap();
        log.log(&c, &ev(1)).unwrap();
        log.log(&c, &ev(2)).unwrap();
        log.checkpoint(&c, b"SNAPSHOT-STATE").unwrap();
        log.log(&c, &ev(3)).unwrap();
        let (snap, events) = ServerLog::recover(srv, 0, &c).unwrap();
        assert_eq!(snap.as_deref(), Some(&b"SNAPSHOT-STATE"[..]));
        assert_eq!(events, vec![ev(3)], "pre-checkpoint events dropped");
        // Old files physically gone.
        let files = c.list(&shard_prefix(srv, 0)).unwrap();
        assert_eq!(files.len(), 2, "one ckpt + one wal: {files:?}");
    }

    #[test]
    fn torn_wal_tail_is_ignored() {
        let c = cluster();
        let srv = ServerId::from_raw(7);
        let mut log = ServerLog::open(srv, 0, &c).unwrap();
        log.log(&c, &ev(1)).unwrap();
        // Simulate a torn record: append garbage.
        c.append(&wal_path(srv, 0, 0), &[9, 1, 2], Timestamp::MIN)
            .unwrap();
        let (_, events) = ServerLog::recover(srv, 0, &c).unwrap();
        assert_eq!(events, vec![ev(1)]);
    }

    #[test]
    fn reopen_starts_new_epoch() {
        let c = cluster();
        let srv = ServerId::from_raw(8);
        let mut log1 = ServerLog::open(srv, 0, &c).unwrap();
        log1.log(&c, &ev(1)).unwrap();
        let mut log2 = ServerLog::open(srv, 0, &c).unwrap();
        log2.log(&c, &ev(2)).unwrap();
        let (_, events) = ServerLog::recover(srv, 0, &c).unwrap();
        assert_eq!(events, vec![ev(1), ev(2)]);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_previous_intact_one() {
        let c = cluster();
        let srv = ServerId::from_raw(9);
        let mut log = ServerLog::open(srv, 0, &c).unwrap();
        log.checkpoint(&c, b"GOOD").unwrap();
        // A newer bogus checkpoint (as if the server died after a torn
        // checkpoint append) must not poison recovery.
        let bogus_path = checkpoint_path(srv, 0, 99);
        c.append(&bogus_path, &[0xFF; 10], Timestamp::MIN).unwrap();
        let (snap, _) = ServerLog::recover(srv, 0, &c).unwrap();
        assert_eq!(snap.as_deref(), Some(&b"GOOD"[..]));
    }

    #[test]
    fn torn_checkpoint_tail_recovers_previous_state() {
        let c = cluster();
        let srv = ServerId::from_raw(10);
        let mut log = ServerLog::open(srv, 0, &c).unwrap();
        log.log(&c, &ev(1)).unwrap();
        log.checkpoint(&c, b"FIRST").unwrap();
        log.log(&c, &ev(2)).unwrap();
        // The next checkpoint append tears: only a prefix lands, and the
        // checkpoint call fails *before* GC runs, so the first
        // checkpoint and its newer WAL records survive.
        c.faults().set_torn_seed(7);
        c.faults().torn_next_appends(1);
        assert!(log.checkpoint(&c, b"SECOND").is_err());
        let (snap, events) = ServerLog::recover(srv, 0, &c).unwrap();
        assert_eq!(snap.as_deref(), Some(&b"FIRST"[..]));
        assert_eq!(events, vec![ev(2)], "post-checkpoint events replayed");
    }

    #[test]
    fn all_checkpoints_torn_recovers_from_wal_alone() {
        let c = cluster();
        let srv = ServerId::from_raw(11);
        let mut log = ServerLog::open(srv, 0, &c).unwrap();
        log.log(&c, &ev(1)).unwrap();
        // The very first checkpoint tears: there is no older intact one,
        // so recovery behaves as if no checkpoint was ever taken.
        c.faults().set_torn_seed(3);
        c.faults().torn_next_appends(1);
        assert!(log.checkpoint(&c, b"ONLY").is_err());
        let (snap, events) = ServerLog::recover(srv, 0, &c).unwrap();
        assert!(snap.is_none());
        assert_eq!(events, vec![ev(1)]);
    }

    #[test]
    fn batch_is_one_record_and_roundtrips() {
        let c = cluster();
        let srv = ServerId::from_raw(12);
        let mut log = ServerLog::open(srv, 0, &c).unwrap();
        let group = vec![ev(1), ev(2), ev(3)];
        log.log_batch(&c, &group).unwrap();
        // One record-aligned frame: a single uvarint length covers the
        // whole group's bytes, then one CRC trailer.
        let data = c.read_all(&wal_path(srv, 0, 0)).unwrap().data;
        let mut pos = 0usize;
        let n = get_uvarint(&data, &mut pos).unwrap() as usize;
        assert_eq!(pos + n + 4, data.len(), "exactly one frame in the file");
        let (_, events) = ServerLog::recover(srv, 0, &c).unwrap();
        assert_eq!(events, group, "all of the group's events replay");
    }

    #[test]
    fn torn_group_truncates_to_whole_group_prefix() {
        let c = cluster();
        let srv = ServerId::from_raw(13);
        let mut log = ServerLog::open(srv, 0, &c).unwrap();
        let group_a = vec![ev(1), ev(2)];
        log.log_batch(&c, &group_a).unwrap();
        // The next group's append tears mid-record: a prefix of its
        // bytes lands, the CRC frame cannot validate, and recovery must
        // truncate to the whole-group prefix — group A intact, nothing
        // of group B, never a partial group.
        c.faults().set_torn_seed(11);
        c.faults().torn_next_appends(1);
        let group_b = vec![ev(3), ev(4), ev(5)];
        assert!(log.log_batch(&c, &group_b).is_err());
        let (_, events) = ServerLog::recover(srv, 0, &c).unwrap();
        assert_eq!(events, group_a, "whole-group prefix, no partial group");
        // A later group on the same epoch still lands and replays after
        // the torn frame is skipped... the torn bytes sit mid-file, so
        // recovery stops at them: epoch hygiene means a real restart
        // would open a fresh epoch. Verify the stop is at the group
        // boundary by appending on a NEW epoch (fresh open).
        let mut log2 = ServerLog::open(srv, 0, &c).unwrap();
        log2.log_batch(&c, &[ev(6)]).unwrap();
        let (_, events) = ServerLog::recover(srv, 0, &c).unwrap();
        assert_eq!(events, vec![ev(1), ev(2), ev(6)]);
    }

    #[test]
    fn shards_present_lists_every_shard_dir() {
        let c = cluster();
        let srv = ServerId::from_raw(14);
        for shard in [0u32, 1, 3] {
            let mut log = ServerLog::open(srv, shard, &c).unwrap();
            log.log(&c, &ev(u64::from(shard) + 1)).unwrap();
        }
        assert_eq!(shards_present(srv, &c).unwrap(), vec![0, 1, 3]);
        // Shard logs are isolated: each recovers only its own events.
        let (_, events) = ServerLog::recover(srv, 1, &c).unwrap();
        assert_eq!(events, vec![ev(2)]);
    }
}
