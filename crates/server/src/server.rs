//! The Stream Server task: hosts streamlets, serves appends/flushes,
//! produces heartbeats, and persists its metadata (§5.3, §5.5).
//!
//! Since the shard-per-core refactor this type is a thin, lock-free
//! facade: streamlet state lives on shard threads ([`crate::shard`]),
//! each owned by exactly one thread, and every operation is a message
//! routed to the owning shard (streamlet id modulo shard count). The
//! append hot path touches only atomics (flow control), a bounded
//! mailbox post, and a park on the reply slot — no mutex, no shared
//! map — while shards coalesce queued appends into group commits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use vortex_colossus::StorageFleet;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{ClusterId, IdGen, ServerId, StreamletId, TableId};
use vortex_common::mailbox::{mailbox, MailboxReceiver, MailboxSender, PostError, ReplySlot};
use vortex_common::obs;
use vortex_common::row::RowSet;
use vortex_common::truetime::{Timestamp, TrueTime};
use vortex_sms::heartbeat::{HeartbeatReport, HeartbeatResponse};
use vortex_sms::server_ctl::{LoadReport, StreamServerApi, StreamletSpec};

use crate::shard::{AppendReq, CtlReq, Shard, ShardMsg};
use crate::wal::{self, ServerLog, WalEvent};

pub use crate::hosted::AppendAck;

/// How long one park on a reply slot lasts. Delivery unparks the waiter
/// immediately; the interval is only a safety net against lost tokens.
const REPLY_PARK: Duration = Duration::from_millis(1);
/// Park budget for append acks (~30s of virtual patience).
const APPEND_MAX_PARKS: u32 = 30_000;
/// Park budget for control-plane replies (~60s).
const CTL_MAX_PARKS: u32 = 60_000;

/// Stream Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server's id.
    pub server: ServerId,
    /// Home cluster (metadata log lives here; placement prefers servers
    /// in a table's primary cluster).
    pub cluster: ClusterId,
    /// Max bytes per data block (§5.4.4's 2 MB write buffer).
    pub block_buffer_bytes: usize,
    /// Max logical fragment size before rotation (§5.3).
    pub fragment_max_bytes: u64,
    /// Idle period after which a lone commit record is written (§7.1).
    pub commit_idle_micros: u64,
    /// Flow-control cap on in-flight (admitted, unacked) bytes (§5.4.2).
    pub flow_control_bytes: u64,
    /// Shard threads (single-writer streamlet owners). Streamlets are
    /// routed by id modulo this count.
    pub shards: u32,
    /// Max appends coalesced into one group commit.
    pub group_max_appends: usize,
    /// Max bytes coalesced into one group commit.
    pub group_max_bytes: u64,
    /// Bounded depth of each shard's data-plane mailbox; posts beyond it
    /// are shed as retryable backpressure.
    pub shard_queue_depth: usize,
}

impl ServerConfig {
    /// Paper-shaped defaults.
    pub fn new(server: ServerId, cluster: ClusterId) -> Self {
        ServerConfig {
            server,
            cluster,
            block_buffer_bytes: vortex_wos::DEFAULT_BLOCK_BUFFER_BYTES,
            fragment_max_bytes: vortex_wos::DEFAULT_FRAGMENT_MAX_BYTES,
            commit_idle_micros: 100_000, // 100ms of virtual inactivity
            flow_control_bytes: 256 << 20,
            shards: 4,
            group_max_appends: 64,
            group_max_bytes: 8 << 20,
            shard_queue_depth: 1024,
        }
    }
}

/// A running Stream Server: a lock-free facade over its shard threads.
pub struct StreamServer {
    cfg: ServerConfig,
    tt: TrueTime,
    /// One mailbox per shard thread, in shard-index order.
    shards: Vec<MailboxSender<ShardMsg>>,
    /// Per-shard writable-streamlet counts, published by the shards.
    writable_counts: Vec<Arc<AtomicU64>>,
    joins: Vec<JoinHandle<()>>,
    /// Streamlets a *previous incarnation* of this server hosted,
    /// replayed from its WAL + checkpoint on [`StreamServer::recover`]:
    /// (table, rows-at-crash). Never writable again — the SMS reconciles
    /// their true committed lengths from Colossus (§7.1) and places new
    /// streamlets elsewhere — but the identity lets the restarted server
    /// answer metadata probes for them. Immutable after construction, so
    /// no lock guards it.
    recovered: HashMap<StreamletId, (TableId, u64)>,
    quarantined: AtomicBool,
    in_flight_bytes: AtomicU64,
    bytes_since_heartbeat: AtomicU64,
    last_heartbeat_at: AtomicU64,
}

impl StreamServer {
    /// Starts a server: opens one metadata-log epoch per shard and spawns
    /// the shard threads.
    pub fn new(
        cfg: ServerConfig,
        fleet: StorageFleet,
        tt: TrueTime,
        ids: Arc<IdGen>,
    ) -> VortexResult<Arc<Self>> {
        // lint:allow(L010, cold construction — once per server lifetime)
        Self::start(cfg, fleet, tt, ids, HashMap::new())
    }

    /// Starts a replacement instance after a process death, rebuilding
    /// from durable state ONLY: the dead incarnation's per-shard
    /// checkpoints + WALs are replayed into the
    /// [recovered-streamlet map](Self::recover_summary) and fresh log
    /// epochs are opened. Nothing of the dead instance's memory survives
    /// — recovered streamlets are identity-only (never writable); the
    /// SMS's reconciliation protocol (§5.6, §7.1) re-derives exact
    /// committed lengths from Colossus.
    pub fn recover(
        cfg: ServerConfig,
        fleet: StorageFleet,
        tt: TrueTime,
        ids: Arc<IdGen>,
    ) -> VortexResult<Arc<Self>> {
        let summary = Self::recover_summary(&cfg, &fleet)?;
        let mut recovered = HashMap::new();
        for (table, slid, rows) in summary {
            recovered.insert(slid, (table, rows));
        }
        Self::start(cfg, fleet, tt, ids, recovered)
    }

    fn start(
        cfg: ServerConfig,
        fleet: StorageFleet,
        tt: TrueTime,
        ids: Arc<IdGen>,
        recovered: HashMap<StreamletId, (TableId, u64)>,
    ) -> VortexResult<Arc<Self>> {
        let nshards = cfg.shards.max(1) as usize;
        let mut senders = Vec::with_capacity(nshards); // lint:allow(L010, cold construction)
        let mut writable_counts = Vec::with_capacity(nshards); // lint:allow(L010, cold construction)
        let mut joins = Vec::with_capacity(nshards); // lint:allow(L010, cold construction)
        let spawn = |idx: usize| -> VortexResult<(
            MailboxSender<ShardMsg>,
            Arc<AtomicU64>,
            JoinHandle<()>,
        )> {
            let home = fleet.get(cfg.cluster)?;
            let log = ServerLog::open(cfg.server, idx as u32, home)?;
            let (tx, rx) = mailbox::<ShardMsg>(cfg.shard_queue_depth);
            let w = Arc::new(AtomicU64::new(0)); // lint:allow(L010, cold construction)
            let shard = Shard::new(
                idx as u32,
                cfg.clone(), // lint:allow(L010, cold construction)
                fleet.clone(), // lint:allow(L010, cold construction)
                tt.clone(), // lint:allow(L010, cold construction)
                Arc::clone(&ids),
                log,
                Arc::clone(&w),
            );
            // The shard loop runs on its own thread: blocking there never
            // blocks the spawner. The fn-pointer indirection marks that
            // thread boundary for the call-graph lint (whose reachability
            // is lexical); the loop's hot path is analyzed from its own
            // `lint:hotpath(shard_commit)` root instead.
            let entry: fn(Shard, MailboxReceiver<ShardMsg>) = Shard::run;
            let join = std::thread::Builder::new()
                .name(format!("vortex-shard-{:x}.{idx}", cfg.server.raw())) // lint:allow(L010, cold construction)
                .spawn(move || entry(shard, rx))
                .map_err(|e| VortexError::Internal(format!("spawn shard thread: {e}")))?; // lint:allow(L010, cold construction)
            Ok((tx, w, join))
        };
        for idx in 0..nshards {
            match spawn(idx) {
                Ok((tx, w, join)) => {
                    senders.push(tx); // lint:allow(L010, cold construction)
                    writable_counts.push(w); // lint:allow(L010, cold construction)
                    joins.push(join); // lint:allow(L010, cold construction)
                }
                Err(e) => {
                    // Unwind the shards already started.
                    for tx in &senders {
                        tx.close();
                    }
                    for j in joins {
                        let _ = j.join(); // lint:allow(L010, cold unwind — thread join, not string join)
                    }
                    return Err(e);
                }
            }
        }
        // lint:allow(L010, cold construction)
        Ok(Arc::new(Self {
            last_heartbeat_at: AtomicU64::new(tt.record_timestamp().0),
            cfg,
            tt,
            shards: senders,
            writable_counts,
            joins,
            recovered,
            quarantined: AtomicBool::new(false),
            in_flight_bytes: AtomicU64::new(0),
            bytes_since_heartbeat: AtomicU64::new(0),
        }))
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Marks the server quarantined (rollouts / scale-down, §5.5): it
    /// keeps serving existing streamlets but receives no new ones.
    pub fn set_quarantined(&self, v: bool) {
        self.quarantined.store(v, Ordering::SeqCst);
    }

    fn shard_of(&self, streamlet: StreamletId) -> &MailboxSender<ShardMsg> {
        &self.shards[streamlet.raw() as usize % self.shards.len()]
    }

    /// Posts a control request to a shard and parks for the reply.
    fn ctl_wait<T: Clone>(
        &self,
        shard: &MailboxSender<ShardMsg>,
        reply: &Arc<ReplySlot<T>>,
        msg: CtlReq,
    ) -> VortexResult<T> {
        if shard.post(ShardMsg::Ctl(msg)).is_err() {
            return Err(VortexError::Unavailable("server shutting down".into()));
        }
        match reply.await_reply(CTL_MAX_PARKS, REPLY_PARK) {
            Some(v) => Ok(v.clone()), // lint:allow(L010, control-plane reply copy)
            None => Err(VortexError::Unavailable(
                "shard did not answer control request".into(),
            )),
        }
    }

    /// Admits `bytes` under flow control, erroring with
    /// [`VortexError::Throttled`] when the in-flight cap is exceeded
    /// (§5.4.2: "flow control protects the Stream Server from running out
    /// of memory"). The returned guard releases on drop.
    pub fn admit(&self, bytes: u64) -> VortexResult<FlowGuard<'_>> {
        let prev = self.in_flight_bytes.fetch_add(bytes, Ordering::SeqCst);
        if prev + bytes > self.cfg.flow_control_bytes {
            self.in_flight_bytes.fetch_sub(bytes, Ordering::SeqCst);
            return Err(VortexError::Throttled {
                in_flight_bytes: prev + bytes,
                limit_bytes: self.cfg.flow_control_bytes,
            });
        }
        Ok(FlowGuard {
            server: self,
            bytes,
        })
    }

    /// Appends a row batch to a hosted streamlet: admit under flow
    /// control, route to the owning shard's bounded mailbox, park until
    /// the shard's group commit resolves the ack.
    ///
    /// `expected_stream_offset` is the optional `row_offset` of §4.2.2;
    /// `declared_schema_version` is the writer's schema version;
    /// `start` is the request's virtual send time (for latency
    /// accounting; pass `Timestamp::MIN` when not simulating time).
    // lint:hotpath(append) — facade leg: admit → mailbox post → park for group ack
    pub fn append(
        &self,
        streamlet: StreamletId,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
    ) -> VortexResult<AppendAck> {
        let bytes = rows.approx_bytes() as u64;
        let _guard = self.admit(bytes)?;
        let reply = ReplySlot::for_caller(); // lint:allow(L010, one-shot reply slot shared with the shard)
        let req = AppendReq {
            streamlet,
            rows: rows.clone(), // lint:allow(L010, ownership handoff into the share-nothing shard)
            declared_schema_version,
            expected_stream_offset,
            start,
            bytes,
            reply: Arc::clone(&reply),
        };
        match self.shard_of(streamlet).post_data(ShardMsg::Append(req)) {
            Ok(()) => {}
            Err(PostError::Full) => {
                obs::global().counter(obs::SHARD_MAILBOX_SHED).inc();
                // Same retryable backpressure signal as flow control —
                // and like it, allocation-free.
                return Err(VortexError::Throttled {
                    in_flight_bytes: bytes,
                    limit_bytes: self.cfg.shard_queue_depth as u64,
                });
            }
            Err(PostError::Closed) => {
                return Err(VortexError::Unavailable("server shutting down".into()));
                // lint:allow(L010, cold shutdown path)
            }
        }
        let ack = match reply.await_reply(APPEND_MAX_PARKS, REPLY_PARK) {
            // The ack is a small Copy struct; the slot keeps ownership.
            Some(res) => res.clone(), // lint:allow(L010, copying a Copy-sized ack out of the slot)
            None => Err(VortexError::Unavailable(
                // lint:allow(L010, cold timeout path)
                "append ack timed out".into(),
            )),
        };
        if ack.is_ok() {
            self.bytes_since_heartbeat
                .fetch_add(bytes, Ordering::Relaxed);
        }
        ack
    }

    /// Persists a flush watermark (streamlet-relative) to the log
    /// (§5.4.4). The SMS-side stream watermark is updated separately by
    /// the client library.
    pub fn flush(&self, streamlet: StreamletId, flush_row: u64) -> VortexResult<()> {
        let reply = ReplySlot::for_caller();
        self.ctl_wait(
            self.shard_of(streamlet),
            &reply,
            CtlReq::Flush {
                streamlet,
                flush_row,
                reply: Arc::clone(&reply),
            },
        )?
    }

    /// Finalizes a hosted streamlet (bloom + footer on the last
    /// fragment).
    pub fn finalize_streamlet(&self, streamlet: StreamletId) -> VortexResult<()> {
        let reply = ReplySlot::for_caller();
        self.ctl_wait(
            self.shard_of(streamlet),
            &reply,
            CtlReq::Finalize {
                streamlet,
                reply: Arc::clone(&reply),
            },
        )?
    }

    /// Idle tick: writes standalone commit records for streamlets whose
    /// tail has been quiet (§7.1). Broadcast to every shard.
    pub fn tick(&self) -> usize {
        let now = self.tt.record_timestamp();
        let mut committed = 0usize;
        for shard in &self.shards {
            let reply = ReplySlot::for_caller();
            if let Ok(n) = self.ctl_wait(
                shard,
                &reply,
                CtlReq::Tick {
                    now,
                    reply: Arc::clone(&reply),
                },
            ) {
                committed += n;
            }
        }
        committed
    }

    /// Builds the heartbeat report (§5.5): per-streamlet deltas (or full
    /// state) + load, merged across shards.
    pub fn build_heartbeat(&self, full_state: bool) -> HeartbeatReport {
        let mut deltas = Vec::new();
        for shard in &self.shards {
            let reply = ReplySlot::for_caller();
            if let Ok(part) = self.ctl_wait(
                shard,
                &reply,
                CtlReq::Heartbeat {
                    full: full_state,
                    reply: Arc::clone(&reply),
                },
            ) {
                deltas.extend(part);
            }
        }
        deltas.sort_by_key(|d| d.streamlet);
        HeartbeatReport {
            server: self.cfg.server,
            load: self.load(),
            streamlets: deltas,
            full_state,
        }
    }

    /// Applies the SMS's heartbeat response: schema updates, GC orders,
    /// and unknown-streamlet deletions (age-guarded, §5.4.3). Returns the
    /// GC acknowledgements to send back via
    /// [`vortex_sms::SmsTask::ack_gc`].
    pub fn apply_heartbeat_response(
        &self,
        resp: &HeartbeatResponse,
        min_orphan_age_micros: u64,
    ) -> VortexResult<Vec<(TableId, StreamletId, Vec<u32>)>> {
        for (table, version) in &resp.schema_updates {
            self.notify_schema_version(*table, *version);
        }
        let mut acks = Vec::new();
        for (table, streamlet, ordinals) in &resp.gc {
            match self.gc_fragments(*table, *streamlet, ordinals.clone()) {
                Ok(done) => acks.push((*table, *streamlet, done)),
                // Simulated process death mid-GC: unwind to the boundary
                // with the partial batch unacknowledged — the SMS
                // re-issues it next heartbeat (deletion is idempotent).
                Err(e @ VortexError::SimulatedCrash(_)) => return Err(e),
                // Transient storage error on one streamlet: skip its ack
                // and keep going (previous behavior).
                Err(_) => {}
            }
        }
        // Unknown streamlets: delete only if sufficiently old ("this
        // avoids any in-flight races", §5.4.3).
        let now = self.tt.record_timestamp();
        for slid in &resp.unknown_streamlets {
            let reply = ReplySlot::for_caller();
            if let Ok(Err(e @ VortexError::SimulatedCrash(_))) = self.ctl_wait(
                self.shard_of(*slid),
                &reply,
                CtlReq::GcUnknown {
                    streamlet: *slid,
                    now,
                    min_age_micros: min_orphan_age_micros,
                    reply: Arc::clone(&reply),
                },
            ) {
                return Err(e);
            }
        }
        Ok(acks)
    }

    /// Writes per-shard metadata checkpoints and truncates the WALs
    /// (§5.3).
    pub fn checkpoint(&self) -> VortexResult<()> {
        for shard in &self.shards {
            let reply = ReplySlot::for_caller();
            self.ctl_wait(
                shard,
                &reply,
                CtlReq::Checkpoint {
                    reply: Arc::clone(&reply),
                },
            )??;
        }
        Ok(())
    }

    /// Recovers hosted-streamlet *identity* from the metadata logs of a
    /// crashed instance: the returned streamlets are known (table, id,
    /// rows) tuples that the restarted server can heartbeat, but never
    /// writes to again (the SMS reconciles and re-places them). Merges
    /// every shard log the dead incarnation left behind.
    pub fn recover_summary(
        cfg: &ServerConfig,
        fleet: &StorageFleet,
    ) -> VortexResult<Vec<(TableId, StreamletId, u64)>> {
        let home = fleet.get(cfg.cluster)?;
        let mut known: HashMap<StreamletId, (TableId, u64)> = HashMap::new();
        for shard in wal::shards_present(cfg.server, home)? {
            let (snapshot, events) = ServerLog::recover(cfg.server, shard, home)?;
            if let Some(snap) = snapshot {
                use vortex_common::codec::get_uvarint;
                let mut pos = 0usize;
                let n = get_uvarint(&snap, &mut pos)? as usize;
                for _ in 0..n {
                    let slid = StreamletId::from_raw(get_uvarint(&snap, &mut pos)?);
                    let table = TableId::from_raw(get_uvarint(&snap, &mut pos)?);
                    let rows = get_uvarint(&snap, &mut pos)?;
                    let _nfrags = get_uvarint(&snap, &mut pos)?;
                    let _writable = snap.get(pos).copied().unwrap_or(0);
                    pos += 1;
                    known.insert(slid, (table, rows));
                }
            }
            for e in events {
                match e {
                    WalEvent::StreamletOpened {
                        table, streamlet, ..
                    } => {
                        known.entry(streamlet).or_insert((table, 0));
                    }
                    WalEvent::FragmentSealed {
                        streamlet,
                        rows,
                        ordinal,
                        ..
                    } => {
                        if let Some((_, r)) = known.get_mut(&streamlet) {
                            let _ = ordinal;
                            *r = (*r).max(rows);
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(known
            .into_iter()
            .map(|(slid, (t, rows))| (t, slid, rows))
            .collect())
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        for tx in &self.shards {
            tx.close();
        }
        for j in std::mem::take(&mut self.joins) {
            let _ = j.join(); // lint:allow(L010, cold teardown — thread join, not string join)
        }
    }
}

/// RAII guard for flow-control admission.
pub struct FlowGuard<'a> {
    server: &'a StreamServer,
    bytes: u64,
}

impl Drop for FlowGuard<'_> {
    fn drop(&mut self) {
        self.server
            .in_flight_bytes
            .fetch_sub(self.bytes, Ordering::SeqCst);
    }
}

impl StreamServerApi for StreamServer {
    fn server_id(&self) -> ServerId {
        self.cfg.server
    }

    fn cluster(&self) -> ClusterId {
        self.cfg.cluster
    }

    fn create_streamlet(&self, spec: StreamletSpec) -> VortexResult<()> {
        let reply = ReplySlot::for_caller();
        self.ctl_wait(
            self.shard_of(spec.streamlet),
            &reply,
            CtlReq::Open {
                spec,
                reply: Arc::clone(&reply),
            },
        )?
    }

    fn load(&self) -> LoadReport {
        let now = self.tt.record_timestamp().0;
        let last = self.last_heartbeat_at.load(Ordering::Relaxed);
        let dt = (now.saturating_sub(last)).max(1) as f64 / 1e6;
        LoadReport {
            streamlets: self
                .writable_counts
                .iter()
                .map(|w| w.load(Ordering::Acquire))
                .sum(),
            append_bytes_per_sec: self.bytes_since_heartbeat.load(Ordering::Relaxed) as f64 / dt,
            in_flight_bytes: self.in_flight_bytes.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
        }
    }

    fn streamlet_rows(&self, streamlet: StreamletId) -> Option<u64> {
        let reply = ReplySlot::for_caller();
        match self.ctl_wait(
            self.shard_of(streamlet),
            &reply,
            CtlReq::Rows {
                streamlet,
                reply: Arc::clone(&reply),
            },
        ) {
            Ok(Some(rows)) => Some(rows),
            // A previous incarnation's streamlet: report the rows its WAL
            // knew about (a lower bound; reconciliation reads the truth
            // from Colossus, §7.1).
            _ => self.recovered.get(&streamlet).map(|&(_, r)| r),
        }
    }

    fn notify_schema_version(&self, table: TableId, version: u32) {
        // Broadcast, fire-and-forget: mailbox FIFO guarantees any append
        // the same caller posts afterwards sees the new version.
        for shard in &self.shards {
            let _ = shard.post(ShardMsg::Ctl(CtlReq::SetSchema { table, version }));
        }
    }

    fn gc_fragments(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: Vec<u32>,
    ) -> VortexResult<Vec<u32>> {
        let reply = ReplySlot::for_caller();
        self.ctl_wait(
            self.shard_of(streamlet),
            &reply,
            CtlReq::Gc {
                table,
                streamlet,
                ordinals,
                reply: Arc::clone(&reply),
            },
        )?
    }

    fn revoke_streamlet(&self, streamlet: StreamletId) {
        let reply = ReplySlot::for_caller();
        let _ = self.ctl_wait(
            self.shard_of(streamlet),
            &reply,
            CtlReq::Revoke {
                streamlet,
                reply: Arc::clone(&reply),
            },
        );
    }

    fn finalize_streamlet_ctl(&self, streamlet: StreamletId) -> VortexResult<()> {
        self.finalize_streamlet(streamlet)
    }

    // Data plane and maintenance hooks: delegate to the inherent methods
    // above so direct (in-crate) callers and trait consumers share one
    // implementation.

    fn append(
        &self,
        streamlet: StreamletId,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
    ) -> VortexResult<AppendAck> {
        StreamServer::append(
            self,
            streamlet,
            rows,
            declared_schema_version,
            expected_stream_offset,
            start,
        )
    }

    fn flush(&self, streamlet: StreamletId, flush_row: u64) -> VortexResult<()> {
        StreamServer::flush(self, streamlet, flush_row)
    }

    fn tick(&self) -> usize {
        StreamServer::tick(self)
    }

    fn build_heartbeat(&self, full_state: bool) -> HeartbeatReport {
        StreamServer::build_heartbeat(self, full_state)
    }

    fn apply_heartbeat_response(
        &self,
        resp: &HeartbeatResponse,
        orphan_age_micros: u64,
    ) -> VortexResult<Vec<(TableId, StreamletId, Vec<u32>)>> {
        StreamServer::apply_heartbeat_response(self, resp, orphan_age_micros)
    }

    fn reset_heartbeat_window(&self) {
        StreamServer::reset_heartbeat_window(self)
    }

    fn set_quarantined(&self, quarantined: bool) {
        StreamServer::set_quarantined(self, quarantined)
    }
}

impl StreamServer {
    /// Resets the heartbeat throughput window (call after each heartbeat).
    pub fn reset_heartbeat_window(&self) {
        self.bytes_since_heartbeat.store(0, Ordering::Relaxed);
        self.last_heartbeat_at
            .store(self.tt.record_timestamp().0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for StreamServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamServer")
            .field("server", &self.cfg.server)
            .field("cluster", &self.cfg.cluster)
            .field("shards", &self.shards.len())
            .finish()
    }
}
