//! The Stream Server task: hosts streamlets, serves appends/flushes,
//! produces heartbeats, and persists its metadata (§5.3, §5.5).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use vortex_colossus::StorageFleet;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{ClusterId, IdGen, ServerId, StreamletId, TableId};
use vortex_common::row::RowSet;
use vortex_common::truetime::{Timestamp, TrueTime};
use vortex_sms::heartbeat::{HeartbeatReport, HeartbeatResponse};
use vortex_sms::meta::wos_path;
use vortex_sms::server_ctl::{LoadReport, StreamServerApi, StreamletSpec};

use crate::hosted::{HostedStreamlet, WriteTuning};
use crate::wal::{ServerLog, WalEvent};

pub use crate::hosted::AppendAck;

/// Stream Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server's id.
    pub server: ServerId,
    /// Home cluster (metadata log lives here; placement prefers servers
    /// in a table's primary cluster).
    pub cluster: ClusterId,
    /// Max bytes per data block (§5.4.4's 2 MB write buffer).
    pub block_buffer_bytes: usize,
    /// Max logical fragment size before rotation (§5.3).
    pub fragment_max_bytes: u64,
    /// Idle period after which a lone commit record is written (§7.1).
    pub commit_idle_micros: u64,
    /// Flow-control cap on in-flight (admitted, unacked) bytes (§5.4.2).
    pub flow_control_bytes: u64,
}

impl ServerConfig {
    /// Paper-shaped defaults.
    pub fn new(server: ServerId, cluster: ClusterId) -> Self {
        ServerConfig {
            server,
            cluster,
            block_buffer_bytes: vortex_wos::DEFAULT_BLOCK_BUFFER_BYTES,
            fragment_max_bytes: vortex_wos::DEFAULT_FRAGMENT_MAX_BYTES,
            commit_idle_micros: 100_000, // 100ms of virtual inactivity
            flow_control_bytes: 256 << 20,
        }
    }
}

/// A running Stream Server.
pub struct StreamServer {
    cfg: ServerConfig,
    fleet: StorageFleet,
    tt: TrueTime,
    ids: Arc<IdGen>,
    streamlets: RwLock<HashMap<StreamletId, Arc<Mutex<HostedStreamlet>>>>,
    /// Streamlets a *previous incarnation* of this server hosted,
    /// replayed from its WAL + checkpoint on [`StreamServer::recover`]:
    /// (table, rows-at-crash). Never writable again — the SMS reconciles
    /// their true committed lengths from Colossus (§7.1) and places new
    /// streamlets elsewhere — but the identity lets the restarted server
    /// answer metadata probes and execute GC orders for them.
    recovered: RwLock<HashMap<StreamletId, (TableId, u64)>>,
    latest_schema: RwLock<HashMap<TableId, u32>>,
    quarantined: AtomicBool,
    in_flight_bytes: AtomicU64,
    bytes_since_heartbeat: AtomicU64,
    last_heartbeat_at: AtomicU64,
    log: Mutex<ServerLog>,
}

impl StreamServer {
    /// Starts a server (opening a fresh metadata-log epoch).
    pub fn new(
        cfg: ServerConfig,
        fleet: StorageFleet,
        tt: TrueTime,
        ids: Arc<IdGen>,
    ) -> VortexResult<Arc<Self>> {
        let home = fleet.get(cfg.cluster)?;
        let log = ServerLog::open(cfg.server, home)?;
        Ok(Arc::new(Self {
            last_heartbeat_at: AtomicU64::new(tt.record_timestamp().0),
            cfg,
            fleet,
            tt,
            ids,
            streamlets: RwLock::new(HashMap::new()),
            recovered: RwLock::new(HashMap::new()),
            latest_schema: RwLock::new(HashMap::new()),
            quarantined: AtomicBool::new(false),
            in_flight_bytes: AtomicU64::new(0),
            bytes_since_heartbeat: AtomicU64::new(0),
            log: Mutex::new(log),
        }))
    }

    /// Starts a replacement instance after a process death, rebuilding
    /// from durable state ONLY: the dead incarnation's checkpoint + WAL
    /// are replayed into the [recovered-streamlet map](Self::recover_summary)
    /// and a fresh log epoch is opened. Nothing of the dead instance's
    /// memory survives — recovered streamlets are identity-only (never
    /// writable); the SMS's reconciliation protocol (§5.6, §7.1)
    /// re-derives exact committed lengths from Colossus.
    pub fn recover(
        cfg: ServerConfig,
        fleet: StorageFleet,
        tt: TrueTime,
        ids: Arc<IdGen>,
    ) -> VortexResult<Arc<Self>> {
        let summary = Self::recover_summary(&cfg, &fleet)?;
        let server = Self::new(cfg, fleet, tt, ids)?;
        let mut map = server.recovered.write();
        for (table, slid, rows) in summary {
            map.insert(slid, (table, rows));
        }
        drop(map);
        Ok(server)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Marks the server quarantined (rollouts / scale-down, §5.5): it
    /// keeps serving existing streamlets but receives no new ones.
    pub fn set_quarantined(&self, v: bool) {
        self.quarantined.store(v, Ordering::SeqCst);
    }

    fn tuning(&self) -> WriteTuning {
        WriteTuning {
            block_buffer_bytes: self.cfg.block_buffer_bytes,
            fragment_max_bytes: self.cfg.fragment_max_bytes,
        }
    }

    fn hosted(&self, streamlet: StreamletId) -> VortexResult<Arc<Mutex<HostedStreamlet>>> {
        self.streamlets
            .read()
            .get(&streamlet)
            .cloned()
            .ok_or_else(|| VortexError::NotFound(format!("streamlet {streamlet} not hosted")))
    }

    /// Data-plane lookup. A streamlet this incarnation does not host is
    /// reported as [`VortexError::StreamletFinalized`] — retryable and
    /// metadata-refreshing — because the writer's correct move is the
    /// same whether the streamlet was really finalized or its server
    /// restarted without in-memory write state (recovered streamlets are
    /// never writable): reconcile through the SMS and rotate to a
    /// successor streamlet (§5.6).
    fn hosted_for_write(
        &self,
        streamlet: StreamletId,
    ) -> VortexResult<Arc<Mutex<HostedStreamlet>>> {
        self.streamlets
            .read()
            .get(&streamlet)
            .cloned()
            .ok_or(VortexError::StreamletFinalized(streamlet))
    }

    /// Admits `bytes` under flow control, erroring with
    /// [`VortexError::Throttled`] when the in-flight cap is exceeded
    /// (§5.4.2: "flow control protects the Stream Server from running out
    /// of memory"). The returned guard releases on drop.
    pub fn admit(&self, bytes: u64) -> VortexResult<FlowGuard<'_>> {
        let prev = self.in_flight_bytes.fetch_add(bytes, Ordering::SeqCst);
        if prev + bytes > self.cfg.flow_control_bytes {
            self.in_flight_bytes.fetch_sub(bytes, Ordering::SeqCst);
            return Err(VortexError::Throttled {
                in_flight_bytes: prev + bytes,
                limit_bytes: self.cfg.flow_control_bytes,
            });
        }
        Ok(FlowGuard {
            server: self,
            bytes,
        })
    }

    /// Appends a row batch to a hosted streamlet.
    ///
    /// `expected_stream_offset` is the optional `row_offset` of §4.2.2;
    /// `declared_schema_version` is the writer's schema version;
    /// `start` is the request's virtual send time (for latency
    /// accounting; pass `Timestamp::MIN` when not simulating time).
    // lint:hotpath(append) — server leg: admit → streamlet lock → dual-replica write
    pub fn append(
        &self,
        streamlet: StreamletId,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
    ) -> VortexResult<AppendAck> {
        let bytes = rows.approx_bytes() as u64;
        let _guard = self.admit(bytes)?;
        let hosted = self.hosted_for_write(streamlet)?;
        // lint:allow(L005, the per-streamlet lock is what serializes appends to one streamlet (§4.2.2); only this streamlet's writers wait, never the server map)
        let mut sl = hosted.lock();
        let latest = self
            .latest_schema
            .read()
            .get(&sl.spec.table)
            .copied()
            .unwrap_or(sl.spec.schema.version);
        let ack = sl.append(
            rows,
            declared_schema_version,
            expected_stream_offset,
            start,
            latest,
            self.tuning(),
            &self.ids,
            &self.fleet,
            &self.tt,
        )?;
        // The rows are durable on both replicas but the client has not
        // seen the ack — the canonical ambiguous-ack instruction
        // (§4.2.2); the client's offset-based retry must dedup.
        vortex_common::crash_point!("server.append.pre_ack");
        self.bytes_since_heartbeat
            .fetch_add(bytes, Ordering::Relaxed);
        Ok(ack)
    }

    /// Persists a flush watermark (streamlet-relative) to the log
    /// (§5.4.4). The SMS-side stream watermark is updated separately by
    /// the client library.
    pub fn flush(&self, streamlet: StreamletId, flush_row: u64) -> VortexResult<()> {
        let hosted = self.hosted_for_write(streamlet)?;
        let mut sl = hosted.lock();
        sl.flush(flush_row, &self.ids, &self.fleet, &self.tt)
    }

    /// Finalizes a hosted streamlet (bloom + footer on the last
    /// fragment).
    pub fn finalize_streamlet(&self, streamlet: StreamletId) -> VortexResult<()> {
        let hosted = self.hosted(streamlet)?;
        let mut sl = hosted.lock();
        sl.finalize(&self.fleet, &self.tt)?;
        self.log_event(&WalEvent::StreamletFinalized { streamlet });
        Ok(())
    }

    /// Idle tick: writes standalone commit records for streamlets whose
    /// tail has been quiet (§7.1).
    pub fn tick(&self) -> usize {
        let now = self.tt.record_timestamp();
        let mut committed = 0;
        let all: Vec<_> = self.streamlets.read().values().cloned().collect();
        for h in all {
            let mut sl = h.lock();
            if sl
                .commit_if_idle(
                    now,
                    self.cfg.commit_idle_micros,
                    &self.ids,
                    &self.fleet,
                    &self.tt,
                )
                .unwrap_or(false)
            {
                committed += 1;
            }
        }
        committed
    }

    /// Builds the heartbeat report (§5.5): per-streamlet deltas (or full
    /// state) + load.
    pub fn build_heartbeat(&self, full_state: bool) -> HeartbeatReport {
        let mut deltas = Vec::new();
        let all: Vec<_> = self.streamlets.read().values().cloned().collect();
        for h in all {
            let mut sl = h.lock();
            if let Some(d) = sl.heartbeat_delta(full_state) {
                deltas.push(d);
            }
        }
        deltas.sort_by_key(|d| d.streamlet);
        HeartbeatReport {
            server: self.cfg.server,
            load: self.load(),
            streamlets: deltas,
            full_state,
        }
    }

    /// Applies the SMS's heartbeat response: schema updates, GC orders,
    /// and unknown-streamlet deletions (age-guarded, §5.4.3). Returns the
    /// GC acknowledgements to send back via
    /// [`vortex_sms::SmsTask::ack_gc`].
    pub fn apply_heartbeat_response(
        &self,
        resp: &HeartbeatResponse,
        min_orphan_age_micros: u64,
    ) -> VortexResult<Vec<(TableId, StreamletId, Vec<u32>)>> {
        for (table, version) in &resp.schema_updates {
            self.notify_schema_version(*table, *version);
        }
        let mut acks = Vec::new();
        for (table, streamlet, ordinals) in &resp.gc {
            match self.gc_fragments(*table, *streamlet, ordinals.clone()) {
                Ok(done) => acks.push((*table, *streamlet, done)),
                // Simulated process death mid-GC: unwind to the boundary
                // with the partial batch unacknowledged — the SMS
                // re-issues it next heartbeat (deletion is idempotent).
                Err(e @ VortexError::SimulatedCrash(_)) => return Err(e),
                // Transient storage error on one streamlet: skip its ack
                // and keep going (previous behavior).
                Err(_) => {}
            }
        }
        // Unknown streamlets: delete only if sufficiently old ("this
        // avoids any in-flight races", §5.4.3).
        let now = self.tt.record_timestamp();
        for slid in &resp.unknown_streamlets {
            let Ok(h) = self.hosted(*slid) else { continue };
            let age_ok = {
                let sl = h.lock();
                now.micros().saturating_sub(sl.spec_created_micros()) >= min_orphan_age_micros
            };
            if age_ok {
                let table = h.lock().spec.table;
                let ordinals: Vec<u32> = {
                    let sl = h.lock();
                    sl.done_fragments().iter().map(|d| d.ordinal).collect()
                };
                match self.gc_fragments(table, *slid, ordinals) {
                    Err(e @ VortexError::SimulatedCrash(_)) => return Err(e),
                    _ => {
                        self.streamlets.write().remove(slid);
                    }
                }
            }
        }
        Ok(acks)
    }

    /// Writes a metadata checkpoint and truncates the WAL (§5.3).
    pub fn checkpoint(&self) -> VortexResult<()> {
        let snapshot = self.snapshot_bytes();
        let home = self.fleet.get(self.cfg.cluster)?;
        self.log.lock().checkpoint(home, &snapshot)
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        use vortex_common::codec::put_uvarint;
        let mut out = Vec::new();
        let map = self.streamlets.read();
        put_uvarint(&mut out, map.len() as u64);
        for (slid, h) in map.iter() {
            let sl = h.lock();
            put_uvarint(&mut out, slid.raw());
            put_uvarint(&mut out, sl.spec.table.raw());
            put_uvarint(&mut out, sl.rows());
            put_uvarint(&mut out, sl.done_fragments().len() as u64);
            out.push(sl.is_writable() as u8);
        }
        out
    }

    /// Recovers hosted-streamlet *identity* from the metadata log of a
    /// crashed instance: the returned streamlets are known (table, id,
    /// rows) pairs that the restarted server can heartbeat and GC, but
    /// never writes to again (the SMS reconciles and re-places them).
    pub fn recover_summary(
        cfg: &ServerConfig,
        fleet: &StorageFleet,
    ) -> VortexResult<Vec<(TableId, StreamletId, u64)>> {
        let home = fleet.get(cfg.cluster)?;
        let (snapshot, events) = ServerLog::recover(cfg.server, home)?;
        let mut known: HashMap<StreamletId, (TableId, u64)> = HashMap::new();
        if let Some(snap) = snapshot {
            use vortex_common::codec::get_uvarint;
            let mut pos = 0usize;
            let n = get_uvarint(&snap, &mut pos)? as usize;
            for _ in 0..n {
                let slid = StreamletId::from_raw(get_uvarint(&snap, &mut pos)?);
                let table = TableId::from_raw(get_uvarint(&snap, &mut pos)?);
                let rows = get_uvarint(&snap, &mut pos)?;
                let _nfrags = get_uvarint(&snap, &mut pos)?;
                let _writable = snap.get(pos).copied().unwrap_or(0);
                pos += 1;
                known.insert(slid, (table, rows));
            }
        }
        for e in events {
            match e {
                WalEvent::StreamletOpened {
                    table, streamlet, ..
                } => {
                    known.entry(streamlet).or_insert((table, 0));
                }
                WalEvent::FragmentSealed {
                    streamlet,
                    rows,
                    ordinal,
                    ..
                } => {
                    if let Some((_, r)) = known.get_mut(&streamlet) {
                        let _ = ordinal;
                        *r = (*r).max(rows);
                    }
                }
                _ => {}
            }
        }
        Ok(known
            .into_iter()
            .map(|(slid, (t, rows))| (t, slid, rows))
            .collect())
    }
}

/// RAII guard for flow-control admission.
pub struct FlowGuard<'a> {
    server: &'a StreamServer,
    bytes: u64,
}

impl Drop for FlowGuard<'_> {
    fn drop(&mut self) {
        self.server
            .in_flight_bytes
            .fetch_sub(self.bytes, Ordering::SeqCst);
    }
}

impl HostedStreamlet {
    /// Creation time proxy used for the orphan age guard.
    fn spec_created_micros(&self) -> u64 {
        // The epoch in the spec is a counter, not a time; hosted
        // streamlets track no absolute creation instant, so treat epoch 0
        // as "old". For simulation purposes the age guard only needs to
        // distinguish "just created" from "long-lived": long-lived ones
        // have produced fragments.
        if self.done_fragments().is_empty() && self.rows() == 0 {
            u64::MAX // brand new: never old enough to delete
        } else {
            0
        }
    }
}

impl StreamServerApi for StreamServer {
    fn server_id(&self) -> ServerId {
        self.cfg.server
    }

    fn cluster(&self) -> ClusterId {
        self.cfg.cluster
    }

    fn create_streamlet(&self, spec: StreamletSpec) -> VortexResult<()> {
        let slid = spec.streamlet;
        let table = spec.table;
        let first = spec.first_stream_row;
        let hosted = HostedStreamlet::open(spec, &self.ids, &self.fleet, &self.tt)?;
        self.streamlets
            .write()
            .insert(slid, Arc::new(Mutex::new(hosted)));
        self.log_event(&WalEvent::StreamletOpened {
            table,
            streamlet: slid,
            first_stream_row: first,
        });
        Ok(())
    }

    fn load(&self) -> LoadReport {
        let now = self.tt.record_timestamp().0;
        let last = self.last_heartbeat_at.load(Ordering::Relaxed);
        let dt = (now.saturating_sub(last)).max(1) as f64 / 1e6;
        LoadReport {
            streamlets: self
                .streamlets
                .read()
                .values()
                .filter(|h| h.lock().is_writable())
                .count() as u64,
            append_bytes_per_sec: self.bytes_since_heartbeat.load(Ordering::Relaxed) as f64 / dt,
            in_flight_bytes: self.in_flight_bytes.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
        }
    }

    fn streamlet_rows(&self, streamlet: StreamletId) -> Option<u64> {
        self.streamlets
            .read()
            .get(&streamlet)
            .map(|h| h.lock().rows())
            // A previous incarnation's streamlet: report the rows its WAL
            // knew about (a lower bound; reconciliation reads the truth
            // from Colossus, §7.1).
            .or_else(|| self.recovered.read().get(&streamlet).map(|&(_, r)| r))
    }

    fn notify_schema_version(&self, table: TableId, version: u32) {
        let mut map = self.latest_schema.write();
        let e = map.entry(table).or_insert(version);
        *e = (*e).max(version);
    }

    fn gc_fragments(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: Vec<u32>,
    ) -> VortexResult<Vec<u32>> {
        let mut deleted = Vec::new();
        for ord in ordinals {
            // Mid-GC death: some fragments of the batch are deleted and
            // unacknowledged. Deletion is idempotent and the SMS re-issues
            // the work list on the next heartbeat (§5.5).
            vortex_common::crash_point!("server.gc.mid");
            let path = wos_path(table, streamlet, ord);
            let mut ok = true;
            for c in self.fleet.cluster_ids() {
                if let Ok(cluster) = self.fleet.get(c) {
                    if cluster.exists(&path) && cluster.delete(&path).is_err() {
                        ok = false;
                    }
                }
            }
            if ok {
                deleted.push(ord);
            }
        }
        if !deleted.is_empty() {
            self.log_event(&WalEvent::FragmentsDeleted {
                streamlet,
                ordinals: deleted.clone(),
            });
        }
        Ok(deleted)
    }

    fn revoke_streamlet(&self, streamlet: StreamletId) {
        if let Some(h) = self.streamlets.read().get(&streamlet) {
            h.lock().revoke();
        }
    }

    fn finalize_streamlet_ctl(&self, streamlet: StreamletId) -> VortexResult<()> {
        self.finalize_streamlet(streamlet)
    }

    // Data plane and maintenance hooks: delegate to the inherent methods
    // above so direct (in-crate) callers and trait consumers share one
    // implementation.

    fn append(
        &self,
        streamlet: StreamletId,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
    ) -> VortexResult<AppendAck> {
        StreamServer::append(
            self,
            streamlet,
            rows,
            declared_schema_version,
            expected_stream_offset,
            start,
        )
    }

    fn flush(&self, streamlet: StreamletId, flush_row: u64) -> VortexResult<()> {
        StreamServer::flush(self, streamlet, flush_row)
    }

    fn tick(&self) -> usize {
        StreamServer::tick(self)
    }

    fn build_heartbeat(&self, full_state: bool) -> HeartbeatReport {
        StreamServer::build_heartbeat(self, full_state)
    }

    fn apply_heartbeat_response(
        &self,
        resp: &HeartbeatResponse,
        orphan_age_micros: u64,
    ) -> VortexResult<Vec<(TableId, StreamletId, Vec<u32>)>> {
        StreamServer::apply_heartbeat_response(self, resp, orphan_age_micros)
    }

    fn reset_heartbeat_window(&self) {
        StreamServer::reset_heartbeat_window(self)
    }

    fn set_quarantined(&self, quarantined: bool) {
        StreamServer::set_quarantined(self, quarantined)
    }
}

impl StreamServer {
    fn log_event(&self, event: &WalEvent) {
        if let Ok(home) = self.fleet.get(self.cfg.cluster) {
            let _ = self.log.lock().log(home, event);
        }
    }

    /// Resets the heartbeat throughput window (call after each heartbeat).
    pub fn reset_heartbeat_window(&self) {
        self.bytes_since_heartbeat.store(0, Ordering::Relaxed);
        self.last_heartbeat_at
            .store(self.tt.record_timestamp().0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for StreamServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamServer")
            .field("server", &self.cfg.server)
            .field("cluster", &self.cfg.cluster)
            .field("streamlets", &self.streamlets.read().len())
            .finish()
    }
}
