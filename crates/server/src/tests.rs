//! Data-plane tests: append path, replication, error handling, rotation,
//! heartbeats, flow control, and recovery.

use std::sync::Arc;

use vortex_colossus::StorageFleet;
use vortex_common::crypt::Key;
use vortex_common::error::VortexError;
use vortex_common::ids::{ClusterId, IdGen, ServerId, StreamId, StreamletId, TableId};
use vortex_common::latency::WriteProfile;
use vortex_common::row::{Row, RowSet, Value};
use vortex_common::schema::{Field, FieldType, PartitionTransform, Schema};
use vortex_common::truetime::{SimClock, Timestamp, TrueTime};
use vortex_sms::meta::wos_path;
use vortex_sms::server_ctl::{StreamServerApi, StreamletSpec};
use vortex_wos::parse_fragment;

use crate::server::{ServerConfig, StreamServer};

struct Rig {
    server: Arc<StreamServer>,
    fleet: StorageFleet,
    clock: SimClock,
    key: Key,
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::required("day", FieldType::Int64),
        Field::required("customer", FieldType::String),
        Field::nullable("note", FieldType::String),
    ])
    .with_partition("day", PartitionTransform::Identity)
    .with_clustering(&["customer"])
}

fn rig() -> Rig {
    rig_with(|_| {})
}

fn rig_with(tweak: impl FnOnce(&mut ServerConfig)) -> Rig {
    let clock = SimClock::new(1_000_000);
    let tt = TrueTime::simulated(clock.clone(), 100, 0);
    let fleet = StorageFleet::with_mem_clusters(2, WriteProfile::instant(), 5);
    let ids = Arc::new(IdGen::new(1));
    let mut cfg = ServerConfig::new(ServerId::from_raw(1), ClusterId::from_raw(0));
    tweak(&mut cfg);
    let server = StreamServer::new(cfg, fleet.clone(), tt, ids).unwrap();
    Rig {
        server,
        fleet,
        clock,
        key: Key::derive_from_passphrase("tbl"),
    }
}

fn spec(r: &Rig, slid: u64, first_stream_row: u64) -> StreamletSpec {
    StreamletSpec {
        table: TableId::from_raw(1),
        stream: StreamId::from_raw(2),
        streamlet: StreamletId::from_raw(slid),
        clusters: [ClusterId::from_raw(0), ClusterId::from_raw(1)],
        schema: schema(),
        first_stream_row,
        key: r.key.clone(),
        epoch: 1,
    }
}

fn rows(start: i64, n: usize) -> RowSet {
    RowSet::new(
        (0..n)
            .map(|i| {
                Row::insert(vec![
                    Value::Int64((start + i as i64) % 30),
                    Value::String(format!("cust-{}", (start + i as i64) % 7)),
                    Value::Null,
                ])
            })
            .collect(),
    )
}

#[test]
fn append_replicates_to_both_clusters() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 10, 0)).unwrap();
    let ack = r
        .server
        .append(
            StreamletId::from_raw(10),
            &rows(0, 5),
            1,
            Some(0),
            Timestamp::MIN,
        )
        .unwrap();
    assert_eq!(ack.first_stream_row, 0);
    assert_eq!(ack.row_count, 5);
    let path = wos_path(TableId::from_raw(1), StreamletId::from_raw(10), 0);
    let a = r
        .fleet
        .get(ClusterId::from_raw(0))
        .unwrap()
        .read_all(&path)
        .unwrap()
        .data;
    let b = r
        .fleet
        .get(ClusterId::from_raw(1))
        .unwrap()
        .read_all(&path)
        .unwrap()
        .data;
    assert_eq!(a, b, "physical replication: byte-identical log files");
    let parsed = parse_fragment(&a, &r.key, None).unwrap();
    assert_eq!(parsed.total_rows(), 5);
}

#[test]
fn offset_validation_enforces_exactly_once() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 11, 100)).unwrap();
    let sl = StreamletId::from_raw(11);
    // First append at stream offset 100 (the streamlet's start).
    r.server
        .append(sl, &rows(0, 4), 1, Some(100), Timestamp::MIN)
        .unwrap();
    // Retry with the same offset (duplicate): rejected with the expected
    // offset in the error.
    match r
        .server
        .append(sl, &rows(0, 4), 1, Some(100), Timestamp::MIN)
    {
        Err(VortexError::OffsetMismatch {
            provided, expected, ..
        }) => {
            assert_eq!(provided, 100);
            assert_eq!(expected, 104);
        }
        other => panic!("expected OffsetMismatch, got {other:?}"),
    }
    // Out-of-order pipelined offset (too far ahead): also rejected.
    assert!(r
        .server
        .append(sl, &rows(0, 1), 1, Some(110), Timestamp::MIN)
        .is_err());
    // Correct next offset succeeds.
    r.server
        .append(sl, &rows(4, 2), 1, Some(104), Timestamp::MIN)
        .unwrap();
    // Omitting the offset = at-least-once append at current end.
    let ack = r
        .server
        .append(sl, &rows(6, 3), 1, None, Timestamp::MIN)
        .unwrap();
    assert_eq!(ack.first_stream_row, 106);
    assert_eq!(r.server.streamlet_rows(sl), Some(9));
}

#[test]
fn schema_version_mismatch_surfaces() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 12, 0)).unwrap();
    let sl = StreamletId::from_raw(12);
    r.server.notify_schema_version(TableId::from_raw(1), 3);
    match r.server.append(sl, &rows(0, 1), 1, None, Timestamp::MIN) {
        Err(VortexError::SchemaVersionMismatch {
            writer_version,
            current_version,
            ..
        }) => {
            assert_eq!(writer_version, 1);
            assert_eq!(current_version, 3);
        }
        other => panic!("expected SchemaVersionMismatch, got {other:?}"),
    }
    // A writer that already knows v3 is admitted (row validation skipped
    // since the server's spec still holds v1).
    r.server
        .append(sl, &rows(0, 1), 3, None, Timestamp::MIN)
        .unwrap();
}

#[test]
fn invalid_rows_rejected() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 13, 0)).unwrap();
    let bad = RowSet::new(vec![Row::insert(vec![Value::String("not-int".into())])]);
    assert!(matches!(
        r.server
            .append(StreamletId::from_raw(13), &bad, 1, None, Timestamp::MIN),
        Err(VortexError::SchemaViolation(_))
    ));
    let empty = RowSet::default();
    assert!(r
        .server
        .append(StreamletId::from_raw(13), &empty, 1, None, Timestamp::MIN)
        .is_err());
}

#[test]
fn large_batch_splits_into_blocks() {
    let r = rig_with(|c| c.block_buffer_bytes = 4 * 1024);
    r.server.create_streamlet(spec(&r, 14, 0)).unwrap();
    let sl = StreamletId::from_raw(14);
    // ~50 bytes/row × 1000 rows ≈ 50 KB → should split into many blocks.
    r.server
        .append(sl, &rows(0, 1000), 1, None, Timestamp::MIN)
        .unwrap();
    let path = wos_path(TableId::from_raw(1), sl, 0);
    let data = r
        .fleet
        .get(ClusterId::from_raw(0))
        .unwrap()
        .read_all(&path)
        .unwrap()
        .data;
    let parsed = parse_fragment(&data, &r.key, None).unwrap();
    assert!(
        parsed.blocks.len() >= 4,
        "got {} blocks",
        parsed.blocks.len()
    );
    assert_eq!(parsed.total_rows(), 1000);
    // All but the final block are committed by succession.
    assert_eq!(
        parsed.committed_rows(),
        1000 - parsed.blocks.last().unwrap().rows.len() as u64
    );
}

#[test]
fn fragment_rotation_at_max_size_writes_file_map() {
    let r = rig_with(|c| c.fragment_max_bytes = 1_000);
    r.server.create_streamlet(spec(&r, 15, 0)).unwrap();
    let sl = StreamletId::from_raw(15);
    for i in 0..20 {
        r.server
            .append(sl, &rows(i * 10, 10), 1, None, Timestamp::MIN)
            .unwrap();
    }
    let table = TableId::from_raw(1);
    let c0 = r.fleet.get(ClusterId::from_raw(0)).unwrap();
    // Multiple fragments exist.
    let files = c0.list(&format!("wos/t{:016x}/l{:016x}/", 1, 15)).unwrap();
    assert!(
        files.len() >= 3,
        "rotation should create fragments: {files:?}"
    );
    // A later fragment's File Map covers all previous ones with sizes.
    let last = files.last().unwrap();
    let parsed = parse_fragment(&c0.read_all(last).unwrap().data, &r.key, None).unwrap();
    assert_eq!(parsed.header.file_map.len(), files.len() - 1);
    for (i, e) in parsed.header.file_map.iter().enumerate() {
        assert_eq!(e.ordinal, i as u32);
        assert!(e.committed_size > 0);
        // The recorded committed size matches a parse of that fragment.
        let fdata = c0.read_all(&wos_path(table, sl, e.ordinal)).unwrap().data;
        let fparsed = parse_fragment(&fdata, &r.key, Some(e.committed_size)).unwrap();
        assert_eq!(fparsed.total_rows(), e.row_count);
        assert!(fparsed.is_finalized(), "rotated fragments get footers");
        assert!(fparsed.bloom.is_some());
    }
    // Total rows preserved across fragments.
    let total: u64 = files
        .iter()
        .map(|f| {
            parse_fragment(&c0.read_all(f).unwrap().data, &r.key, None)
                .unwrap()
                .total_rows()
        })
        .sum();
    assert_eq!(total, 200);
}

#[test]
fn replica_failure_rotates_fragment_and_retries() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 16, 0)).unwrap();
    let sl = StreamletId::from_raw(16);
    r.server
        .append(sl, &rows(0, 5), 1, None, Timestamp::MIN)
        .unwrap();
    // Fail the next append on cluster 1 only.
    r.fleet
        .get(ClusterId::from_raw(1))
        .unwrap()
        .faults()
        .fail_next_appends(1);
    let ack = r
        .server
        .append(sl, &rows(5, 3), 1, None, Timestamp::MIN)
        .unwrap();
    assert_eq!(ack.first_stream_row, 5);
    assert_eq!(r.server.streamlet_rows(sl), Some(8));
    // Fragment 1 exists and holds the retried rows; its File Map records
    // fragment 0's committed size (excluding the failed block).
    let c0 = r.fleet.get(ClusterId::from_raw(0)).unwrap();
    let f1 = c0
        .read_all(&wos_path(TableId::from_raw(1), sl, 1))
        .unwrap()
        .data;
    let parsed = parse_fragment(&f1, &r.key, None).unwrap();
    assert_eq!(parsed.total_rows(), 3);
    assert_eq!(parsed.header.first_row, 5);
    assert_eq!(parsed.header.file_map.len(), 1);
    let fm = parsed.header.file_map[0];
    assert_eq!(fm.row_count, 5);
    // Reading fragment 0 limited by the File Map yields exactly the acked
    // rows even though cluster 0 has the torn extra block.
    let f0 = c0
        .read_all(&wos_path(TableId::from_raw(1), sl, 0))
        .unwrap()
        .data;
    assert!(
        f0.len() as u64 > fm.committed_size,
        "cluster 0 kept the unacked block"
    );
    let p0 = parse_fragment(&f0, &r.key, Some(fm.committed_size)).unwrap();
    assert_eq!(p0.total_rows(), 5, "no duplicates via File Map limit");
}

#[test]
fn repeated_failures_finalize_streamlet() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 17, 0)).unwrap();
    let sl = StreamletId::from_raw(17);
    r.server
        .append(sl, &rows(0, 2), 1, None, Timestamp::MIN)
        .unwrap();
    // Fail everything on cluster 1 for a while (data write + rotation
    // header + retried data write).
    r.fleet
        .get(ClusterId::from_raw(1))
        .unwrap()
        .faults()
        .fail_next_appends(10);
    let err = r
        .server
        .append(sl, &rows(2, 2), 1, None, Timestamp::MIN)
        .unwrap_err();
    assert!(
        err.is_retryable(),
        "client should seek a new streamlet: {err}"
    );
    // Subsequent appends rejected.
    assert!(matches!(
        r.server.append(sl, &rows(2, 2), 1, None, Timestamp::MIN),
        Err(VortexError::StreamletFinalized(_))
    ));
    // The acked rows survive.
    assert_eq!(r.server.streamlet_rows(sl), Some(2));
}

#[test]
fn flush_record_persists_watermark() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 18, 0)).unwrap();
    let sl = StreamletId::from_raw(18);
    r.server
        .append(sl, &rows(0, 10), 1, None, Timestamp::MIN)
        .unwrap();
    r.server.flush(sl, 7).unwrap();
    // Flush beyond length rejected.
    assert!(r.server.flush(sl, 11).is_err());
    let path = wos_path(TableId::from_raw(1), sl, 0);
    let data = r
        .fleet
        .get(ClusterId::from_raw(0))
        .unwrap()
        .read_all(&path)
        .unwrap()
        .data;
    let parsed = parse_fragment(&data, &r.key, None).unwrap();
    assert_eq!(parsed.max_flush_row(), Some(7));
    // The flush record also commits the preceding data.
    assert_eq!(parsed.committed_rows(), 10);
}

#[test]
fn idle_tick_writes_commit_record() {
    let r = rig_with(|c| c.commit_idle_micros = 1_000);
    r.server.create_streamlet(spec(&r, 19, 0)).unwrap();
    let sl = StreamletId::from_raw(19);
    r.server
        .append(sl, &rows(0, 3), 1, None, Timestamp::MIN)
        .unwrap();
    // Not idle yet.
    assert_eq!(r.server.tick(), 0);
    r.clock.advance(10_000);
    assert_eq!(r.server.tick(), 1);
    // Idempotent: already committed.
    assert_eq!(r.server.tick(), 0);
    let path = wos_path(TableId::from_raw(1), sl, 0);
    let data = r
        .fleet
        .get(ClusterId::from_raw(0))
        .unwrap()
        .read_all(&path)
        .unwrap()
        .data;
    let parsed = parse_fragment(&data, &r.key, None).unwrap();
    assert_eq!(parsed.committed_rows(), 3, "commit record seals the tail");
}

#[test]
fn heartbeat_reports_deltas_then_goes_quiet() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 20, 0)).unwrap();
    let sl = StreamletId::from_raw(20);
    r.server
        .append(sl, &rows(0, 4), 1, None, Timestamp::MIN)
        .unwrap();
    let hb = r.server.build_heartbeat(false);
    assert_eq!(hb.streamlets.len(), 1);
    let d = &hb.streamlets[0];
    assert_eq!(d.row_count, 4);
    assert_eq!(d.fragments.len(), 1);
    assert!(!d.fragments[0].finalized);
    assert!(!d.fragments[0].stats.is_empty(), "column properties flow");
    // No changes → no delta.
    let hb2 = r.server.build_heartbeat(false);
    assert!(hb2.streamlets.is_empty());
    // Full state reports everything regardless.
    let hb3 = r.server.build_heartbeat(true);
    assert_eq!(hb3.streamlets.len(), 1);
    assert!(hb3.full_state);
}

#[test]
fn finalize_streamlet_writes_footer_and_blocks_appends() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 21, 0)).unwrap();
    let sl = StreamletId::from_raw(21);
    r.server
        .append(sl, &rows(0, 6), 1, None, Timestamp::MIN)
        .unwrap();
    r.server.finalize_streamlet(sl).unwrap();
    assert!(matches!(
        r.server.append(sl, &rows(6, 1), 1, None, Timestamp::MIN),
        Err(VortexError::StreamletFinalized(_))
    ));
    let path = wos_path(TableId::from_raw(1), sl, 0);
    let data = r
        .fleet
        .get(ClusterId::from_raw(0))
        .unwrap()
        .read_all(&path)
        .unwrap()
        .data;
    let parsed = parse_fragment(&data, &r.key, None).unwrap();
    assert!(parsed.is_finalized());
    // Bloom covers clustering keys that were written.
    let bloom = parsed.bloom.unwrap();
    assert!(bloom.may_contain(&Value::String("cust-1".into()).encode_key()));
    assert!(!bloom.may_contain(&Value::String("cust-404".into()).encode_key()));
}

#[test]
fn revoked_streamlet_rejects_appends() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 22, 0)).unwrap();
    let sl = StreamletId::from_raw(22);
    r.server.revoke_streamlet(sl);
    assert!(matches!(
        r.server.append(sl, &rows(0, 1), 1, None, Timestamp::MIN),
        Err(VortexError::StreamletFinalized(_))
    ));
}

#[test]
fn flow_control_throttles_oversized_admission() {
    let r = rig_with(|c| c.flow_control_bytes = 100);
    r.server.create_streamlet(spec(&r, 23, 0)).unwrap();
    let big = rows(0, 50); // ≫ 100 bytes
    match r
        .server
        .append(StreamletId::from_raw(23), &big, 1, None, Timestamp::MIN)
    {
        Err(VortexError::Throttled { limit_bytes, .. }) => assert_eq!(limit_bytes, 100),
        other => panic!("expected Throttled, got {other:?}"),
    }
    // Small appends still pass, and the guard releases (no leak).
    let small = rows(0, 1);
    for _ in 0..5 {
        r.server
            .append(StreamletId::from_raw(23), &small, 1, None, Timestamp::MIN)
            .unwrap();
    }
}

#[test]
fn load_reflects_streamlets_and_quarantine() {
    let r = rig();
    assert_eq!(r.server.load().streamlets, 0);
    r.server.create_streamlet(spec(&r, 24, 0)).unwrap();
    r.server.create_streamlet(spec(&r, 25, 0)).unwrap();
    assert_eq!(r.server.load().streamlets, 2);
    r.server
        .finalize_streamlet(StreamletId::from_raw(24))
        .unwrap();
    assert_eq!(r.server.load().streamlets, 1, "finalized not writable");
    r.server.set_quarantined(true);
    assert!(r.server.load().quarantined);
}

#[test]
fn gc_fragments_deletes_files_from_all_clusters() {
    let r = rig_with(|c| c.fragment_max_bytes = 1_000);
    r.server.create_streamlet(spec(&r, 26, 0)).unwrap();
    let sl = StreamletId::from_raw(26);
    for i in 0..10 {
        r.server
            .append(sl, &rows(i * 10, 10), 1, None, Timestamp::MIN)
            .unwrap();
    }
    let table = TableId::from_raw(1);
    let deleted = r.server.gc_fragments(table, sl, vec![0, 1]).unwrap();
    assert_eq!(deleted, vec![0, 1]);
    for c in [0u64, 1] {
        let cluster = r.fleet.get(ClusterId::from_raw(c)).unwrap();
        assert!(!cluster.exists(&wos_path(table, sl, 0)));
        assert!(!cluster.exists(&wos_path(table, sl, 1)));
    }
}

#[test]
fn checkpoint_and_recovery_restore_streamlet_identities() {
    let r = rig();
    r.server.create_streamlet(spec(&r, 27, 0)).unwrap();
    r.server.create_streamlet(spec(&r, 28, 0)).unwrap();
    r.server
        .append(
            StreamletId::from_raw(27),
            &rows(0, 5),
            1,
            None,
            Timestamp::MIN,
        )
        .unwrap();
    r.server.checkpoint().unwrap();
    r.server
        .finalize_streamlet(StreamletId::from_raw(28))
        .unwrap();
    // "Crash" and recover from the metadata log.
    let cfg = r.server.config().clone();
    let summary = StreamServer::recover_summary(&cfg, &r.fleet).unwrap();
    let mut ids: Vec<u64> = summary.iter().map(|(_, s, _)| s.raw()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![27, 28]);
}

#[test]
fn concurrent_appends_to_distinct_streamlets() {
    let r = rig();
    for i in 0..4 {
        r.server.create_streamlet(spec(&r, 30 + i, 0)).unwrap();
    }
    let mut handles = vec![];
    for i in 0..4u64 {
        let server = Arc::clone(&r.server);
        handles.push(std::thread::spawn(move || {
            for j in 0..25 {
                server
                    .append(
                        StreamletId::from_raw(30 + i),
                        &rows(j * 4, 4),
                        1,
                        None,
                        Timestamp::MIN,
                    )
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for i in 0..4u64 {
        assert_eq!(
            r.server.streamlet_rows(StreamletId::from_raw(30 + i)),
            Some(100)
        );
    }
}
