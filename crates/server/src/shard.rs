//! Shard-per-core Stream Server internals: single-writer shard threads.
//!
//! The server partitions its hosted streamlets across a fixed set of
//! shard threads (streamlet id modulo shard count). Each
//! [`HostedStreamlet`] is owned by exactly one shard — there is no lock
//! around per-streamlet state, because only its owner thread ever
//! touches it. Appends are routed to shards over bounded mailboxes
//! ([`vortex_common::mailbox`]); the shard coalesces whatever is queued
//! into a size/time-bounded **group commit**: one dual-replica Colossus
//! write per streamlet run and one WAL record per group, amortizing the
//! fixed write overhead (§5.6's ~600µs base service) across every append
//! in the group. Per-append acks resolve through [`ReplySlot`]s after
//! the whole group is durable.
//!
//! Crash semantics move to group granularity: `server.append.pre_ack`
//! fires once per group, after the group's rows and WAL record are
//! durable; every append in the group then observes the simulated death
//! (no acks escape a dead server). A crash during a replica write aborts
//! the rest of the group the same way.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vortex_colossus::StorageFleet;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{IdGen, StreamletId, TableId};
use vortex_common::mailbox::{MailboxReceiver, Pulled, ReplySlot};
use vortex_common::obs::{self, Counter, Histogram};
use vortex_common::row::RowSet;
use vortex_common::truetime::{Timestamp, TrueTime};
use vortex_sms::heartbeat::StreamletDelta;
use vortex_sms::meta::wos_path;
use vortex_sms::server_ctl::StreamletSpec;

use crate::hosted::{AppendAck, GroupAppend, GroupScratch, HostedStreamlet, WriteTuning};
use crate::server::ServerConfig;
use crate::wal::{ServerLog, WalEvent};

/// How long an idle shard parks between mailbox polls.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// One append routed to a shard. The rows are owned: the facade clones
/// them out of the caller's request so the shard shares nothing with
/// other threads.
pub(crate) struct AppendReq {
    pub streamlet: StreamletId,
    pub rows: RowSet,
    pub declared_schema_version: u32,
    pub expected_stream_offset: Option<u64>,
    pub start: Timestamp,
    pub bytes: u64,
    pub reply: Arc<ReplySlot<VortexResult<AppendAck>>>,
}

/// Control-plane requests: rare, never shed, always processed in posting
/// order relative to appends from the same caller.
pub(crate) enum CtlReq {
    Open {
        spec: StreamletSpec,
        reply: Arc<ReplySlot<VortexResult<()>>>,
    },
    Flush {
        streamlet: StreamletId,
        flush_row: u64,
        reply: Arc<ReplySlot<VortexResult<()>>>,
    },
    Finalize {
        streamlet: StreamletId,
        reply: Arc<ReplySlot<VortexResult<()>>>,
    },
    Revoke {
        streamlet: StreamletId,
        reply: Arc<ReplySlot<()>>,
    },
    SetSchema {
        table: TableId,
        version: u32,
    },
    Tick {
        now: Timestamp,
        reply: Arc<ReplySlot<usize>>,
    },
    Heartbeat {
        full: bool,
        reply: Arc<ReplySlot<Vec<StreamletDelta>>>,
    },
    Gc {
        table: TableId,
        streamlet: StreamletId,
        ordinals: Vec<u32>,
        reply: Arc<ReplySlot<VortexResult<Vec<u32>>>>,
    },
    GcUnknown {
        streamlet: StreamletId,
        now: Timestamp,
        min_age_micros: u64,
        reply: Arc<ReplySlot<VortexResult<bool>>>,
    },
    Rows {
        streamlet: StreamletId,
        reply: Arc<ReplySlot<Option<u64>>>,
    },
    Checkpoint {
        reply: Arc<ReplySlot<VortexResult<()>>>,
    },
}

/// A message in a shard's mailbox.
pub(crate) enum ShardMsg {
    Append(AppendReq),
    Ctl(CtlReq),
}

/// The ambiguous-ack crash point, at group granularity: the group's rows
/// and WAL record are durable on both replicas, but no caller has seen
/// an ack yet (§4.2.2). A fire here fails *every* append in the group —
/// a dead server sends no acks — and the clients' offset-based retries
/// must dedup.
fn group_pre_ack() -> VortexResult<()> {
    vortex_common::crash_point!("server.append.pre_ack");
    Ok(())
}

/// Everything one shard thread owns. Nothing in here is shared: the
/// streamlet map, WAL epoch, schema cache, and scratch arenas belong to
/// this thread alone (the one exception, `writable`, is an atomic the
/// facade reads for load reports).
pub(crate) struct Shard {
    cfg: ServerConfig,
    tuning: WriteTuning,
    fleet: StorageFleet,
    tt: TrueTime,
    ids: Arc<IdGen>,
    log: ServerLog,
    streamlets: HashMap<StreamletId, HostedStreamlet>,
    latest_schema: HashMap<TableId, u32>,
    /// Writable-streamlet count, published for the facade's LoadReport.
    writable: Arc<AtomicU64>,
    /// Group-commit arenas, allocated once and reused for every group.
    scratch: GroupScratch,
    batch: Vec<AppendReq>,
    results: Vec<VortexResult<AppendAck>>,
    wal_events: Vec<WalEvent>,
    /// Metric handles interned at spawn; the hot path never formats
    /// names or takes the registry lock.
    m_group_appends: Arc<Histogram>,
    m_group_bytes: Arc<Histogram>,
    m_groups: Arc<Counter>,
    m_shard_appends: Arc<Counter>,
}

impl Shard {
    pub(crate) fn new(
        idx: u32,
        cfg: ServerConfig,
        fleet: StorageFleet,
        tt: TrueTime,
        ids: Arc<IdGen>,
        log: ServerLog,
        writable: Arc<AtomicU64>,
    ) -> Self {
        let m = obs::global();
        let tuning = WriteTuning {
            block_buffer_bytes: cfg.block_buffer_bytes,
            fragment_max_bytes: cfg.fragment_max_bytes,
        };
        Shard {
            m_group_appends: m.histogram(obs::GROUP_COMMIT_APPENDS),
            m_group_bytes: m.histogram(obs::GROUP_COMMIT_BYTES),
            m_groups: m.counter(obs::GROUP_COMMIT_GROUPS),
            // lint:allow(L010, cold construction — once per shard lifetime)
            m_shard_appends: m.counter(&format!("{}{idx:02}.appends", obs::SHARD_APPENDS_PREFIX)),
            cfg,
            tuning,
            fleet,
            tt,
            ids,
            log,
            streamlets: HashMap::new(), // lint:allow(L010, cold construction)
            latest_schema: HashMap::new(), // lint:allow(L010, cold construction)
            writable,
            scratch: GroupScratch::new(),
            batch: Vec::new(),      // lint:allow(L010, cold construction)
            results: Vec::new(),    // lint:allow(L010, cold construction)
            wal_events: Vec::new(), // lint:allow(L010, cold construction)
        }
    }

    /// The shard main loop: pull → greedily coalesce a group → commit →
    /// resolve acks → handle any control message that closed the group.
    /// Exits when the facade closes the mailbox.
    pub(crate) fn run(mut self, mut rx: MailboxReceiver<ShardMsg>) {
        loop {
            match rx.pull(IDLE_PARK) {
                Pulled::Msg(ShardMsg::Append(first)) => {
                    let mut group_bytes = first.bytes;
                    self.batch.push(first);
                    // Greedy drain up to the group bounds; stop at the
                    // first control message so posting order is kept.
                    let mut pending_ctl = None;
                    while self.batch.len() < self.cfg.group_max_appends
                        && group_bytes < self.cfg.group_max_bytes
                    {
                        match rx.try_pull() {
                            Some(ShardMsg::Append(r)) => {
                                group_bytes += r.bytes;
                                self.batch.push(r);
                            }
                            Some(ShardMsg::Ctl(c)) => {
                                pending_ctl = Some(c);
                                break;
                            }
                            None => break,
                        }
                    }
                    self.commit_group(group_bytes);
                    if let Some(c) = pending_ctl {
                        self.handle_ctl(c);
                    }
                }
                Pulled::Msg(ShardMsg::Ctl(c)) => self.handle_ctl(c),
                Pulled::Idle => {}
                Pulled::Closed => break,
            }
        }
    }

    /// Commits one group: sorts the batch into per-streamlet runs
    /// (stable, so per-streamlet arrival order is preserved), lands each
    /// run through [`HostedStreamlet::append_group`], writes ONE WAL
    /// record covering every fragment sealed by the group, checks the
    /// group-granularity ambiguous-ack crash point, and only then
    /// resolves the acks.
    // lint:hotpath(shard_commit) — shard leg: group commit → dual-replica write → ack fan-out
    fn commit_group(&mut self, group_bytes: u64) {
        let mut batch = std::mem::take(&mut self.batch);
        let mut results = std::mem::take(&mut self.results);
        let mut wal_events = std::mem::take(&mut self.wal_events);
        results.clear();
        wal_events.clear();
        batch.sort_by_key(|r| r.streamlet);

        let mut crashed: Option<VortexError> = None;
        let mut i = 0usize;
        while i < batch.len() {
            let slid = batch[i].streamlet;
            let mut j = i + 1;
            while j < batch.len() && batch[j].streamlet == slid {
                j += 1;
            }
            if let Some(e) = &crashed {
                // A crash earlier in the group: the server is dead at
                // that instruction; no later run executes.
                for _ in i..j {
                    results.push(Err(e.clone())); // lint:allow(L010, cold crash path)
                }
                i = j;
                continue;
            }
            match self.streamlets.get_mut(&slid) {
                None => {
                    // Not hosted by this incarnation: same retryable
                    // signal the facade uses (reconcile + rotate, §5.6).
                    for _ in i..j {
                        results.push(Err(VortexError::StreamletFinalized(slid)));
                        // lint:allow(L010, results arena reuse)
                    }
                }
                Some(sl) => {
                    let latest = self
                        .latest_schema
                        .get(&sl.spec.table)
                        .copied()
                        .unwrap_or(sl.spec.schema.version);
                    // Borrow the run's rows into a bounded entry list
                    // (≤ group_max_appends, usually a handful).
                    let mut entries = Vec::with_capacity(j - i); // lint:allow(L010, bounded per-run entry list)
                    for r in &batch[i..j] {
                        // lint:allow(L010, bounded per-run entry list)
                        entries.push(GroupAppend {
                            rows: &r.rows,
                            declared_schema_version: r.declared_schema_version,
                            expected_stream_offset: r.expected_stream_offset,
                            start: r.start,
                        });
                    }
                    let before = results.len();
                    sl.append_group(
                        &entries,
                        latest,
                        self.tuning,
                        &self.ids,
                        &self.fleet,
                        &self.tt,
                        &mut self.scratch,
                        &mut results,
                    );
                    sl.drain_unlogged_seals(&mut wal_events);
                    if let Some(e) = results[before..]
                        .iter()
                        .filter_map(|r| r.as_ref().err())
                        .find(|e| matches!(e, VortexError::SimulatedCrash(_)))
                    {
                        crashed = Some(e.clone()); // lint:allow(L010, cold crash path)
                    }
                }
            }
            i = j;
        }

        if crashed.is_none() {
            // One WAL record for the whole group: every fragment sealed
            // while committing it (best-effort, like the old per-event
            // log). Record-aligned framing means a torn tail truncates
            // to a whole-group prefix on recovery.
            if !wal_events.is_empty() {
                if let Ok(home) = self.fleet.get(self.cfg.cluster) {
                    let _ = self.log.log_batch(home, &wal_events);
                }
            }
            if let Err(e) = group_pre_ack() {
                crashed = Some(e);
            }
        }
        if let Some(e) = crashed {
            // Group-granularity death: a dead server acks nothing, even
            // appends whose rows are already durable — the canonical
            // ambiguous ack, absorbed by client-side offset dedup.
            for r in results.iter_mut() {
                *r = Err(e.clone()); // lint:allow(L010, cold crash path)
            }
        }

        for (req, res) in batch.iter().zip(results.drain(..)) {
            req.reply.deliver(res);
        }
        self.m_group_appends.record(batch.len() as u64);
        self.m_group_bytes.record(group_bytes);
        self.m_groups.inc();
        self.m_shard_appends.add(batch.len() as u64);
        self.publish_writable();

        batch.clear();
        self.batch = batch;
        self.results = results;
        wal_events.clear();
        self.wal_events = wal_events;
    }

    fn publish_writable(&self) {
        let n = self.streamlets.values().filter(|s| s.is_writable()).count() as u64;
        self.writable.store(n, Ordering::Release);
    }

    fn log_one(&mut self, ev: WalEvent) {
        if let Ok(home) = self.fleet.get(self.cfg.cluster) {
            let _ = self.log.log(home, &ev);
        }
    }

    fn handle_ctl(&mut self, c: CtlReq) {
        match c {
            CtlReq::Open { spec, reply } => {
                let slid = spec.streamlet;
                let table = spec.table;
                let first = spec.first_stream_row;
                let res = HostedStreamlet::open(spec, &self.ids, &self.fleet, &self.tt).map(|sl| {
                    self.streamlets.insert(slid, sl);
                });
                if res.is_ok() {
                    self.log_one(WalEvent::StreamletOpened {
                        table,
                        streamlet: slid,
                        first_stream_row: first,
                    });
                }
                self.publish_writable();
                reply.deliver(res);
            }
            CtlReq::Flush {
                streamlet,
                flush_row,
                reply,
            } => {
                let res = match self.streamlets.get_mut(&streamlet) {
                    None => Err(VortexError::StreamletFinalized(streamlet)),
                    Some(sl) => sl.flush(flush_row, &self.ids, &self.fleet, &self.tt),
                };
                reply.deliver(res);
            }
            CtlReq::Finalize { streamlet, reply } => {
                let res = match self.streamlets.get_mut(&streamlet) {
                    None => Err(VortexError::NotFound(format!(
                        "streamlet {streamlet} not hosted"
                    ))),
                    Some(sl) => sl.finalize(&self.fleet, &self.tt),
                };
                if res.is_ok() {
                    self.log_one(WalEvent::StreamletFinalized { streamlet });
                }
                self.publish_writable();
                reply.deliver(res);
            }
            CtlReq::Revoke { streamlet, reply } => {
                if let Some(sl) = self.streamlets.get_mut(&streamlet) {
                    sl.revoke();
                }
                self.publish_writable();
                reply.deliver(());
            }
            CtlReq::SetSchema { table, version } => {
                let e = self.latest_schema.entry(table).or_insert(version);
                *e = (*e).max(version);
            }
            CtlReq::Tick { now, reply } => {
                let mut committed = 0usize;
                for sl in self.streamlets.values_mut() {
                    if sl
                        .commit_if_idle(
                            now,
                            self.cfg.commit_idle_micros,
                            &self.ids,
                            &self.fleet,
                            &self.tt,
                        )
                        .unwrap_or(false)
                    {
                        committed += 1;
                    }
                }
                reply.deliver(committed);
            }
            CtlReq::Heartbeat { full, reply } => {
                let mut deltas = Vec::new();
                for sl in self.streamlets.values_mut() {
                    if let Some(d) = sl.heartbeat_delta(full) {
                        deltas.push(d);
                    }
                }
                reply.deliver(deltas);
            }
            CtlReq::Gc {
                table,
                streamlet,
                ordinals,
                reply,
            } => {
                let res = self.gc_run(table, streamlet, &ordinals);
                reply.deliver(res);
            }
            CtlReq::GcUnknown {
                streamlet,
                now,
                min_age_micros,
                reply,
            } => {
                let res = self.gc_unknown(streamlet, now, min_age_micros);
                reply.deliver(res);
            }
            CtlReq::Rows { streamlet, reply } => {
                reply.deliver(self.streamlets.get(&streamlet).map(|sl| sl.rows()));
            }
            CtlReq::Checkpoint { reply } => {
                let snapshot = self.snapshot_bytes();
                let res = match self.fleet.get(self.cfg.cluster) {
                    Ok(home) => self.log.checkpoint(home, &snapshot),
                    Err(e) => Err(e),
                };
                reply.deliver(res);
            }
        }
    }

    /// Deletes fragment files for one GC order (§5.5). Deletion is
    /// idempotent; a partial batch is simply unacknowledged and the SMS
    /// re-issues it next heartbeat.
    fn gc_run(
        &mut self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: &[u32],
    ) -> VortexResult<Vec<u32>> {
        let mut deleted = Vec::new();
        for ord in ordinals {
            // Mid-GC death: some fragments of the batch are deleted and
            // unacknowledged; the SMS re-issues the work list (§5.5).
            vortex_common::crash_point!("server.gc.mid");
            let path = wos_path(table, streamlet, *ord);
            let mut ok = true;
            for c in self.fleet.cluster_ids() {
                if let Ok(cluster) = self.fleet.get(c) {
                    if cluster.exists(&path) && cluster.delete(&path).is_err() {
                        ok = false;
                    }
                }
            }
            if ok {
                deleted.push(*ord);
            }
        }
        if !deleted.is_empty() {
            self.log_one(WalEvent::FragmentsDeleted {
                streamlet,
                ordinals: deleted.clone(),
            });
        }
        Ok(deleted)
    }

    /// Deletes a streamlet the SMS does not know, but only if it is old
    /// enough ("this avoids any in-flight races", §5.4.3). Returns
    /// whether the streamlet was removed.
    fn gc_unknown(
        &mut self,
        streamlet: StreamletId,
        now: Timestamp,
        min_age_micros: u64,
    ) -> VortexResult<bool> {
        let Some(sl) = self.streamlets.get(&streamlet) else {
            return Ok(false);
        };
        if now.micros().saturating_sub(sl.spec_created_micros()) < min_age_micros {
            return Ok(false);
        }
        let table = sl.spec.table;
        let ordinals: Vec<u32> = sl.done_fragments().iter().map(|d| d.ordinal).collect();
        match self.gc_run(table, streamlet, &ordinals) {
            Err(e @ VortexError::SimulatedCrash(_)) => Err(e),
            _ => {
                self.streamlets.remove(&streamlet);
                self.publish_writable();
                Ok(true)
            }
        }
    }

    /// This shard's slice of the metadata snapshot: same format the old
    /// single-log server wrote, restricted to the shard's streamlets.
    fn snapshot_bytes(&self) -> Vec<u8> {
        use vortex_common::codec::put_uvarint;
        let mut out = Vec::new();
        put_uvarint(&mut out, self.streamlets.len() as u64);
        for (slid, sl) in self.streamlets.iter() {
            put_uvarint(&mut out, slid.raw());
            put_uvarint(&mut out, sl.spec.table.raw());
            put_uvarint(&mut out, sl.rows());
            put_uvarint(&mut out, sl.done_fragments().len() as u64);
            out.push(sl.is_writable() as u8);
        }
        out
    }
}

impl HostedStreamlet {
    /// Creation time proxy used for the orphan age guard.
    fn spec_created_micros(&self) -> u64 {
        // The epoch in the spec is a counter, not a time; hosted
        // streamlets track no absolute creation instant, so treat epoch 0
        // as "old". For simulation purposes the age guard only needs to
        // distinguish "just created" from "long-lived": long-lived ones
        // have produced fragments.
        if self.done_fragments().is_empty() && self.rows() == 0 {
            u64::MAX // brand new: never old enough to delete
        } else {
            0
        }
    }
}
