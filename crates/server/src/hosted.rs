//! Per-streamlet write state: the heart of the data plane.
//!
//! A [`HostedStreamlet`] owns the current fragment's [`FragmentWriter`],
//! performs the dual-cluster synchronous writes, accumulates column
//! properties and bloom keys, and runs the paper's error path: failed
//! replica write → close fragment → retry on the next fragment → on
//! repeated failure, finalize the streamlet (§5.3, §5.6).

use std::collections::HashSet;

use vortex_colossus::StorageFleet;
use vortex_common::bloom::BloomFilter;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{FragmentId, IdGen};
use vortex_common::obs;
use vortex_common::row::{Row, RowSet};
use vortex_common::schema::FieldMode;
use vortex_common::stats::ColumnStats;
use vortex_common::truetime::{Timestamp, TrueTime};
use vortex_sms::heartbeat::{FragmentDelta, StreamletDelta};
use vortex_sms::meta::wos_path;
use vortex_sms::server_ctl::StreamletSpec;
use vortex_wos::{FileMapEntry, FragmentConfig, FragmentWriter};

use crate::wal::WalEvent;

pub use vortex_sms::server_ctl::AppendAck;

/// State of one fragment currently being written.
struct CurrentFragment {
    writer: FragmentWriter,
    fragment: FragmentId,
    ordinal: u32,
    path: String,
    stats: Vec<(usize, String, ColumnStats)>,
    bloom_keys: HashSet<Vec<u8>>,
    ts_range: Option<(Timestamp, Timestamp)>,
    dirty: bool,
    /// Expected log-file length per replica cluster. The server assumes
    /// it is the sole writer; a length mismatch after an append means a
    /// foreign record (a reconciliation sentinel, §5.6) landed in the
    /// file — ownership is relinquished immediately.
    expected_lens: [u64; 2],
}

/// A fragment this streamlet finished writing.
#[derive(Debug, Clone)]
pub struct DoneFragment {
    /// Fragment id.
    pub fragment: FragmentId,
    /// Ordinal within the streamlet.
    pub ordinal: u32,
    /// Streamlet-relative first row.
    pub first_row: u64,
    /// Committed rows.
    pub row_count: u64,
    /// Committed (logical) byte size.
    pub committed_size: u64,
    /// Column properties at finalization.
    pub stats: Vec<(String, ColumnStats)>,
    /// Record timestamp range.
    pub ts_range: Option<(Timestamp, Timestamp)>,
    /// Whether this fragment still needs to appear in a heartbeat.
    pub dirty: bool,
}

/// Tunables shared with the server.
#[derive(Debug, Clone, Copy)]
pub struct WriteTuning {
    /// Max bytes of rows per data block (§5.4.4's 2 MB buffer).
    pub block_buffer_bytes: usize,
    /// Max logical fragment size before rotation (§5.3).
    pub fragment_max_bytes: u64,
}

/// One streamlet hosted by a Stream Server.
pub struct HostedStreamlet {
    /// The creation spec (table, stream, clusters, schema, key, epoch).
    pub spec: StreamletSpec,
    current: Option<CurrentFragment>,
    done: Vec<DoneFragment>,
    rows_acked: u64,
    finalized: bool,
    revoked: bool,
    max_flush_row: Option<u64>,
    flush_dirty: bool,
    rows_dirty: bool,
    /// True when the last log record is a data block (commit piggyback
    /// pending, §7.1).
    uncommitted_tail: bool,
    last_append_at: Timestamp,
    /// (column index, name) pairs eligible for zone-map stats, computed
    /// once at open — the spec is immutable for the streamlet's life, so
    /// the append path never re-derives (or re-allocates) this.
    tracked_cols: Vec<(usize, String)>,
    /// Partition + clustering column indexes, computed once at open.
    key_cols: Vec<usize>,
    /// How many entries of `done` have already been handed to the WAL
    /// (see [`HostedStreamlet::drain_unlogged_seals`]).
    wal_logged_seals: usize,
}

/// Columns eligible for per-fragment zone-map stats: scalar, non-repeated.
fn tracked_columns(spec: &StreamletSpec) -> Vec<(usize, String)> {
    spec.schema
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !matches!(f.ftype, vortex_common::schema::FieldType::Struct(_))
                && f.mode != FieldMode::Repeated
        })
        .map(|(i, f)| (i, f.name.clone()))
        .collect()
}

/// Partition column followed by clustering columns, deduplicated.
fn key_columns(spec: &StreamletSpec) -> Vec<usize> {
    let schema = &spec.schema;
    let mut cols = Vec::new();
    if let Some(p) = &schema.partition {
        if let Some(i) = schema.column_index(&p.column) {
            cols.push(i);
        }
    }
    for c in &schema.clustering {
        if let Some(i) = schema.column_index(c) {
            if !cols.contains(&i) {
                cols.push(i);
            }
        }
    }
    cols
}

/// One append inside a shard group commit: a borrowed view of the
/// caller's rows plus the per-append protocol fields of §4.2.2/§5.4.1.
pub struct GroupAppend<'a> {
    /// Rows to append (borrowed from the request; never cloned).
    pub rows: &'a RowSet,
    /// The writer's declared schema version (§5.4.1 schema relay).
    pub declared_schema_version: u32,
    /// The §4.2.2 offset-idempotency token, when the writer sent one.
    pub expected_stream_offset: Option<u64>,
    /// Virtual send time; ack latency is measured from here.
    pub start: Timestamp,
}

/// A staged encoded block: `entry`'s rows `[lo, hi)`, encoded at `ts`,
/// sitting in the group arena awaiting the next flush.
struct StagedChunk {
    entry: usize,
    lo: usize,
    hi: usize,
    ts: Timestamp,
}

/// Per-entry accumulator while a group commit is in flight.
#[derive(Default)]
struct EntryAcc {
    first_stream_row: u64,
    total_rows: u64,
    flushed_rows: u64,
    service_us: u64,
    completion: Timestamp,
    failed: Option<VortexError>,
}

/// Reusable group-commit arenas: a shard allocates one of these at spawn
/// and threads it through every [`HostedStreamlet::append_group`] call,
/// so the steady-state append hot path performs no heap allocation for
/// staging (buffers are cleared, never shrunk).
#[derive(Default)]
pub struct GroupScratch {
    staged: Vec<u8>,
    chunks: Vec<StagedChunk>,
    acc: Vec<EntryAcc>,
}

impl GroupScratch {
    /// A fresh arena set (empty; grows to the shard's working set).
    pub fn new() -> Self {
        Self::default()
    }
}

impl HostedStreamlet {
    /// Opens the streamlet: creates fragment 0 by writing its header to
    /// both replica clusters.
    pub fn open(
        spec: StreamletSpec,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<Self> {
        let tracked_cols = tracked_columns(&spec);
        let key_cols = key_columns(&spec);
        let mut sl = Self {
            spec,
            current: None,
            done: vec![],
            rows_acked: 0,
            finalized: false,
            revoked: false,
            max_flush_row: None,
            flush_dirty: false,
            rows_dirty: false,
            uncommitted_tail: false,
            last_append_at: Timestamp::MIN,
            tracked_cols,
            key_cols,
            wal_logged_seals: 0,
        };
        sl.open_fragment(0, ids, fleet, tt)?;
        Ok(sl)
    }

    fn open_fragment(
        &mut self,
        ordinal: u32,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<()> {
        let fragment = ids.next_fragment();
        let cfg = FragmentConfig {
            streamlet: self.spec.streamlet,
            fragment,
            ordinal,
            schema_version: self.spec.schema.version,
            key: self.spec.key.clone(),
        };
        let file_map: Vec<FileMapEntry> = self
            .done
            .iter()
            .map(|d| FileMapEntry {
                ordinal: d.ordinal,
                fragment: d.fragment,
                committed_size: d.committed_size,
                first_row: d.first_row,
                row_count: d.row_count,
            })
            .collect();
        let (writer, header) =
            FragmentWriter::new(cfg, self.rows_acked, file_map, tt.record_timestamp());
        let path = wos_path(self.spec.table, self.spec.streamlet, ordinal);
        let header_len = header.len() as u64;
        let (_, _, lens) = self.write_both(fleet, &path, &header, Timestamp::MIN)?;
        // A fresh fragment file must contain exactly our header; anything
        // else means a previous incarnation (or a zombie) owns the path.
        if lens != [header_len, header_len] {
            return Err(VortexError::LeaseLost(format!(
                "fragment file {path} not empty at open: {lens:?}"
            )));
        }
        let stats = self
            .tracked_cols
            .iter()
            .map(|(i, n)| (*i, n.clone(), ColumnStats::new()))
            .collect();
        self.current = Some(CurrentFragment {
            writer,
            fragment,
            ordinal,
            path,
            stats,
            bloom_keys: HashSet::new(),
            ts_range: None,
            dirty: true,
            expected_lens: [header_len, header_len],
        });
        Ok(())
    }

    /// Appends `bytes` to the same path in both replica clusters —
    /// physical replication (§5.6). Returns (service_us, completion).
    fn write_both(
        &self,
        fleet: &StorageFleet,
        path: &str,
        bytes: &[u8],
        start: Timestamp,
    ) -> VortexResult<(u64, Timestamp, [u64; 2])> {
        let mut completion = Timestamp::MIN;
        // The two replica writes happen in parallel in production; the
        // latency is their max, which is what the virtual clock records.
        let mut max_service = 0u64;
        let mut lens = [0u64; 2];
        for (i, c) in self.spec.clusters.into_iter().enumerate() {
            if i == 1 {
                // One replica now has the bytes and the other does not —
                // the §5.6 worst-case instruction for a process death;
                // reconciliation must converge on the common prefix.
                vortex_common::crash_point!("server.replica.mid_write");
            }
            let cluster = fleet.get(c)?;
            let out = cluster.append(path, bytes, start)?;
            max_service = max_service.max(out.service_us);
            completion = completion.max(out.completion);
            lens[i] = out.new_len;
        }
        // Colossus replica-write leg of the append span: the max of the
        // two synchronous replica writes (§5.6) is what the ack waits on.
        obs::global()
            .histogram("append.server.replica_write_us")
            .record(max_service);
        Ok((max_service, completion, lens))
    }

    /// Dual write with the sole-writer check: the append only counts if
    /// BOTH files grew by exactly our bytes from the expected lengths —
    /// otherwise a sentinel (or any foreign writer) got in and ownership
    /// is gone (§5.6: the sentinel "causes it to relinquish ownership").
    fn write_owned(
        &mut self,
        fleet: &StorageFleet,
        bytes: &[u8],
        start: Timestamp,
    ) -> VortexResult<(u64, Timestamp)> {
        let cur = self
            .current
            .as_ref()
            .ok_or(VortexError::StreamletFinalized(self.spec.streamlet))?;
        let expected = cur.expected_lens;
        let (svc, done, lens) = self.write_both(fleet, &cur.path, bytes, start)?;
        let want = [
            expected[0] + bytes.len() as u64,
            expected[1] + bytes.len() as u64,
        ];
        if lens != want {
            let path = self
                .current
                .as_ref()
                .map(|c| c.path.as_str())
                .unwrap_or("<closed>");
            return Err(VortexError::LeaseLost(format!(
                "foreign bytes in {path}: expected lens {want:?}, observed {lens:?}"
            )));
        }
        if let Some(cur) = self.current.as_mut() {
            cur.expected_lens = want;
        }
        Ok((svc, done))
    }

    /// Rotates to the next fragment: records the current one as done
    /// (optionally writing bloom + footer) and opens the next with a File
    /// Map covering all previous fragments.
    fn rotate(
        &mut self,
        write_footer: bool,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<()> {
        let cur = self
            .current
            .take()
            .ok_or_else(|| VortexError::Internal("rotate without current fragment".into()))?;
        let done = self.seal_fragment(cur, write_footer, fleet, tt);
        let next_ordinal = done.ordinal + 1;
        self.done.push(done);
        self.open_fragment(next_ordinal, ids, fleet, tt)
    }

    /// Seals a fragment: writes bloom + footer when asked (and possible),
    /// and produces its [`DoneFragment`] record.
    fn seal_fragment(
        &mut self,
        mut cur: CurrentFragment,
        write_footer: bool,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> DoneFragment {
        let first_row = cur.writer.first_row();
        let row_count = cur.writer.rows_written();
        let mut committed_size = cur.writer.logical_size();
        if write_footer {
            let mut bloom = BloomFilter::with_capacity(cur.bloom_keys.len().max(16), 0.01);
            for k in &cur.bloom_keys {
                bloom.insert(k);
            }
            if let Ok(chunk) = cur.writer.finalize(&bloom, tt.record_timestamp()) {
                // Best-effort, but still length-checked: a poisoned file
                // must not have its committed size extended.
                let want = [
                    cur.expected_lens[0] + chunk.len() as u64,
                    cur.expected_lens[1] + chunk.len() as u64,
                ];
                if let Ok((_, _, lens)) = self.write_both(fleet, &cur.path, &chunk, Timestamp::MIN)
                {
                    if lens == want {
                        cur.expected_lens = want;
                        committed_size = cur.writer.logical_size();
                        self.uncommitted_tail = false;
                    }
                }
            }
        }
        DoneFragment {
            fragment: cur.fragment,
            ordinal: cur.ordinal,
            first_row,
            row_count,
            committed_size,
            stats: cur.stats.drain(..).map(|(_, n, s)| (n, s)).collect(),
            ts_range: cur.ts_range,
            dirty: true,
        }
    }

    /// The append path. `expected_stream_offset` implements the offset
    /// idempotency check of §4.2.2; `declared_schema_version` implements
    /// the schema relay of §5.4.1 (`latest_version` is the server's most
    /// recent knowledge for the table).
    ///
    /// Single-entry wrapper over [`HostedStreamlet::append_group`]: the
    /// shard commit loop is the real caller; this exists for tests and
    /// the locked baseline arm of the saturation bench.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &mut self,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
        latest_version: u32,
        tuning: WriteTuning,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<AppendAck> {
        let entry = GroupAppend {
            rows,
            declared_schema_version,
            expected_stream_offset,
            start,
        };
        let mut out = Vec::with_capacity(1); // lint:allow(L010, wrapper scratch; the shard path reuses arenas)
        let mut scratch = GroupScratch::new();
        self.append_group(
            std::slice::from_ref(&entry),
            latest_version,
            tuning,
            ids,
            fleet,
            tt,
            &mut scratch,
            &mut out,
        );
        match out.pop() {
            Some(res) => res,
            None => Err(VortexError::Internal(
                "append_group produced no result".into(),
            )),
        }
    }

    /// Group commit (§5.3 re-architected): lands a run of appends for this
    /// streamlet with as few Colossus writes as possible. All entries'
    /// data blocks are staged into one arena and written with a single
    /// dual-replica append per fragment extent, so the ~600µs Colossus
    /// base overhead is charged once per *group* instead of once per
    /// append. Pushes exactly one result per entry onto `results`, in
    /// entry order.
    ///
    /// Entries are validated against the streamlet state *as if* all
    /// earlier entries in the group had already landed (offset checks see
    /// staged rows), so a writer pipelining appends through one shard
    /// observes the same semantics as the old serial path. A terminal
    /// failure (lease loss, repeated write failure, simulated crash)
    /// fails every entry whose rows were not yet durable; entries that
    /// already flushed keep their acks — the shard layer decides whether
    /// a simulated crash widens to the whole group.
    #[allow(clippy::too_many_arguments)]
    pub fn append_group(
        &mut self,
        entries: &[GroupAppend<'_>],
        latest_version: u32,
        tuning: WriteTuning,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
        scratch: &mut GroupScratch,
        results: &mut Vec<VortexResult<AppendAck>>,
    ) {
        scratch.staged.clear();
        scratch.chunks.clear();
        scratch.acc.clear();
        scratch.acc.resize_with(entries.len(), EntryAcc::default);
        let GroupScratch {
            staged,
            chunks: staged_chunks,
            acc,
        } = scratch;
        let mut staged_rows: u64 = 0;
        // Acked fragment extent excluding staged-but-unflushed blocks: a
        // failed group write force-closes the fragment here.
        let mut stage_base = self.stage_base();
        // Virtual write start chains across flushes the way the old
        // per-chunk path chained completions.
        let mut write_start: Option<Timestamp> = None;
        // Terminal error: everything staged or later-arriving fails with
        // (a clone of) this.
        let mut dead: Option<VortexError> = None;

        for (i, entry) in entries.iter().enumerate() {
            if let Some(e) = &dead {
                acc[i].failed = Some(e.clone()); // lint:allow(L010, cold terminal-error path)
                continue;
            }
            if self.revoked || self.finalized {
                acc[i].failed = Some(VortexError::StreamletFinalized(self.spec.streamlet));
                continue;
            }
            if entry.rows.is_empty() {
                acc[i].failed = Some(VortexError::InvalidArgument("empty append".into()));
                continue;
            }
            if entry.declared_schema_version < latest_version {
                acc[i].failed = Some(VortexError::SchemaVersionMismatch {
                    table: self.spec.table,
                    writer_version: entry.declared_schema_version,
                    current_version: latest_version,
                });
                continue;
            }
            // Offset check sees staged rows: earlier group entries count
            // as landed for idempotency purposes.
            let next_offset = self.spec.first_stream_row + self.rows_acked + staged_rows;
            if let Some(expected) = entry.expected_stream_offset {
                if expected != next_offset {
                    acc[i].failed = Some(VortexError::OffsetMismatch {
                        stream: self.spec.stream,
                        provided: expected,
                        expected: next_offset,
                    });
                    continue;
                }
            }
            // Row validation against the schema the server holds (when
            // the writer speaks the same version).
            if entry.declared_schema_version == self.spec.schema.version {
                let mut bad = None;
                for r in &entry.rows.rows {
                    if let Err(e) = self.spec.schema.validate_row(r) {
                        bad = Some(e);
                        break;
                    }
                }
                if let Some(e) = bad {
                    acc[i].failed = Some(e);
                    continue;
                }
            }
            acc[i].first_stream_row = next_offset;
            acc[i].total_rows = entry.rows.len() as u64;
            acc[i].completion = entry.start;
            if write_start.is_none() {
                write_start = Some(entry.start);
            }

            // Chunk into ≤ block_buffer_bytes blocks (§5.4.4) and stage
            // each encoded block into the group arena. Chunks are index
            // ranges over the caller's rows — the hot path borrows slices
            // instead of cloning rows into scratch RowSets.
            let all = &entry.rows.rows[..];
            let mut lo = 0usize;
            while lo < all.len() {
                let mut hi = lo;
                let mut acc_bytes = 0usize;
                while hi < all.len() {
                    let rb = all[hi].approx_bytes();
                    if hi > lo && acc_bytes + rb > tuning.block_buffer_bytes {
                        break;
                    }
                    acc_bytes += rb;
                    hi += 1;
                }
                let ts = tt.record_timestamp();
                let Some(cur) = self.current.as_mut() else {
                    acc[i].failed = Some(VortexError::StreamletFinalized(self.spec.streamlet));
                    break;
                };
                match cur.writer.data_block(&all[lo..hi], ts) {
                    Ok(block) => staged.extend_from_slice(&block), // lint:allow(L010, group arena reuse)
                    Err(e) => {
                        acc[i].failed = Some(e);
                        break;
                    }
                }
                staged_chunks.push(StagedChunk {
                    entry: i,
                    lo,
                    hi,
                    ts,
                }); // lint:allow(L010, chunk-index arena reuse)
                staged_rows += (hi - lo) as u64;
                lo = hi;
                // Rotate when the fragment hits its max size: flush the
                // staged arena first so the sealed fragment carries it.
                let needs_rotate = self
                    .current
                    .as_ref()
                    .map(|c| c.writer.logical_size() >= tuning.fragment_max_bytes)
                    .unwrap_or(false);
                if needs_rotate {
                    let ws = write_start.unwrap_or(entry.start);
                    match self.flush_staged_group(
                        fleet,
                        ids,
                        tt,
                        entries,
                        staged,
                        staged_chunks,
                        acc.as_mut_slice(),
                        &mut stage_base,
                        ws,
                    ) {
                        Ok(Some(done_at)) => {
                            staged_rows = 0;
                            write_start = Some(done_at);
                        }
                        Ok(None) => {}
                        Err(e) => {
                            dead = Some(e);
                            break;
                        }
                    }
                    if dead.is_none() {
                        if let Err(e) = self.rotate(true, ids, fleet, tt) {
                            dead = Some(e);
                            break;
                        }
                        stage_base = self.stage_base();
                    }
                }
            }
            if dead.is_some() {
                continue;
            }
        }

        // Land whatever is still staged.
        if dead.is_none() && !staged_chunks.is_empty() {
            let ws = write_start.unwrap_or(Timestamp::MIN);
            match self.flush_staged_group(
                fleet,
                ids,
                tt,
                entries,
                staged,
                staged_chunks,
                acc.as_mut_slice(),
                &mut stage_base,
                ws,
            ) {
                Ok(_) => {}
                Err(e) => dead = Some(e),
            }
        }
        if let Some(e) = &dead {
            // Unflushed staged entries (and any entry not yet failed but
            // not fully flushed) inherit the terminal error.
            for c in staged_chunks.iter() {
                if acc[c.entry].failed.is_none() {
                    acc[c.entry].failed = Some(e.clone()); // lint:allow(L010, cold terminal-error path)
                }
            }
        }

        // Resolve per-entry results, in order, and record metrics for the
        // entries that fully landed.
        let m = obs::global();
        let mut group_rows = 0u64;
        for (i, a) in acc.iter_mut().enumerate() {
            if let Some(e) = a.failed.take() {
                results.push(Err(e)); // lint:allow(L010, results arena reuse)
                continue;
            }
            if a.flushed_rows != a.total_rows {
                // A terminal error stopped the group before this entry's
                // rows became durable (covered above unless the entry
                // staged nothing at all).
                let e = dead
                    .clone() // lint:allow(L010, cold terminal-error path)
                    .unwrap_or(VortexError::StreamletFinalized(self.spec.streamlet));
                results.push(Err(e)); // lint:allow(L010, results arena reuse)
                continue;
            }
            group_rows += a.total_rows;
            m.histogram("append.server.service_us").record(a.service_us);
            obs::Span::begin("append.server", entries[i].start).end(a.completion);
            // lint:allow(L010, results arena reuse)
            results.push(Ok(AppendAck {
                first_stream_row: a.first_stream_row,
                row_count: a.total_rows,
                completion: a.completion,
                service_us: a.service_us,
            }));
        }
        if group_rows > 0 {
            m.counter("append.server.rows").add(group_rows);
        }
    }

    /// Acked extent of the current fragment (size, rows), excluding any
    /// blocks staged in the writer but not yet durable.
    fn stage_base(&self) -> (u64, u64) {
        self.current
            .as_ref()
            .map(|c| (c.writer.logical_size(), c.writer.rows_written()))
            .unwrap_or((0, 0))
    }

    /// Lands the staged arena with one dual-replica write, running the
    /// §5.3 error path on failure: close the fragment at its pre-group
    /// extent, re-encode the staged chunks on the next fragment, retry
    /// once; a second failure finalizes the streamlet. Returns the write
    /// completion (None when nothing was staged); a terminal error fails
    /// the rest of the group.
    #[allow(clippy::too_many_arguments)]
    fn flush_staged_group(
        &mut self,
        fleet: &StorageFleet,
        ids: &IdGen,
        tt: &TrueTime,
        entries: &[GroupAppend<'_>],
        staged: &mut Vec<u8>,
        staged_chunks: &mut Vec<StagedChunk>,
        acc: &mut [EntryAcc],
        stage_base: &mut (u64, u64),
        start: Timestamp,
    ) -> VortexResult<Option<Timestamp>> {
        if staged_chunks.is_empty() {
            return Ok(None);
        }
        for attempt in 0..2 {
            if self.current.is_none() {
                return Err(VortexError::StreamletFinalized(self.spec.streamlet));
            }
            match self.write_owned(fleet, staged, start) {
                Ok((svc, done_at)) => {
                    let m = obs::global();
                    m.counter("append.server.chunks")
                        .add(staged_chunks.len() as u64);
                    let mut last_entry = usize::MAX;
                    for c in staged_chunks.drain(..) {
                        let rows = (c.hi - c.lo) as u64;
                        self.rows_acked += rows;
                        self.rows_dirty = true;
                        self.uncommitted_tail = true;
                        self.last_append_at = c.ts;
                        self.record_properties(&entries[c.entry].rows.rows[c.lo..c.hi], c.ts);
                        acc[c.entry].flushed_rows += rows;
                        acc[c.entry].completion = done_at;
                        // The group's single write is charged once per
                        // participating entry's ack (each waited on it).
                        if c.entry != last_entry {
                            acc[c.entry].service_us += svc;
                            last_entry = c.entry;
                        }
                    }
                    staged.clear();
                    *stage_base = self.stage_base();
                    return Ok(Some(done_at));
                }
                Err(e @ VortexError::LeaseLost(_)) => {
                    // A reconciler poisoned the log (§5.6): relinquish
                    // ownership immediately — never retry on a new
                    // fragment, the SMS owns this streamlet's fate now.
                    self.finalized = true;
                    self.revoked = true;
                    return Err(VortexError::Unavailable(format!(
                        "streamlet {} relinquished: {e}",
                        self.spec.streamlet
                    )));
                }
                Err(e @ VortexError::SimulatedCrash(_)) => {
                    // A crash point fired: this server is dead at this
                    // instruction. No §5.3 local recovery — the error
                    // unwinds to the service boundary untouched.
                    return Err(e);
                }
                Err(e) if attempt == 0 => {
                    // First failure: the group write may be torn in one
                    // replica. Close this fragment at its pre-group acked
                    // extent, open the next one, and re-encode the staged
                    // chunks there (§5.3); the new fragment's File Map
                    // records the committed size of this one.
                    let _ = e;
                    self.force_close_current(fleet, tt, stage_base.0, stage_base.1);
                    self.open_fragment_after_failure(ids, fleet, tt)?;
                    *stage_base = self.stage_base();
                    staged.clear();
                    for c in staged_chunks.iter() {
                        let cur = self
                            .current
                            .as_mut()
                            .ok_or(VortexError::StreamletFinalized(self.spec.streamlet))?;
                        let block = cur
                            .writer
                            .data_block(&entries[c.entry].rows.rows[c.lo..c.hi], c.ts)?;
                        staged.extend_from_slice(&block); // lint:allow(L010, group arena reuse)
                    }
                }
                Err(e) => {
                    // Second failure: finalize the streamlet; the client
                    // reconciles with the SMS and writes elsewhere (§5.3).
                    self.finalized = true;
                    return Err(VortexError::Unavailable(format!(
                        "streamlet {} finalized after repeated write failures: {e}",
                        self.spec.streamlet
                    )));
                }
            }
        }
        unreachable!("loop returns or errors");
    }

    /// WAL events for fragments sealed since the last drain. The shard
    /// commit loop folds these into the group's single WAL record so a
    /// rotation inside a group costs no extra log write.
    pub fn drain_unlogged_seals(&mut self, out: &mut Vec<WalEvent>) {
        while self.wal_logged_seals < self.done.len() {
            let d = &self.done[self.wal_logged_seals];
            out.push(WalEvent::FragmentSealed {
                streamlet: self.spec.streamlet,
                ordinal: d.ordinal,
                committed_size: d.committed_size,
                rows: d.first_row + d.row_count,
            });
            self.wal_logged_seals += 1;
        }
    }

    fn force_close_current(
        &mut self,
        fleet: &StorageFleet,
        tt: &TrueTime,
        acked_size: u64,
        acked_rows: u64,
    ) {
        if let Some(cur) = self.current.take() {
            // The fragment is closed at its last *acked* extent; no footer
            // (a replica is failing). The next fragment's File Map records
            // the committed size (§5.6).
            let mut done = self.seal_fragment(cur, false, fleet, tt);
            done.committed_size = acked_size;
            done.row_count = acked_rows; // fragment-relative acked rows
            self.done.push(done);
        }
    }

    fn open_fragment_after_failure(
        &mut self,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<()> {
        let next = self.done.last().map(|d| d.ordinal + 1).unwrap_or(0);
        match self.open_fragment(next, ids, fleet, tt) {
            Err(e @ VortexError::LeaseLost(_)) => {
                // A reconciler fenced the next ordinal with a poison file
                // (§5.6): ownership is gone; relinquish instead of
                // retrying.
                self.finalized = true;
                self.revoked = true;
                Err(VortexError::Unavailable(format!(
                    "streamlet {} relinquished at rotation: {e}",
                    self.spec.streamlet
                )))
            }
            other => other,
        }
    }

    fn record_properties(&mut self, chunk: &[Row], ts: Timestamp) {
        let key_cols = &self.key_cols;
        let Some(cur) = self.current.as_mut() else {
            return;
        };
        for r in chunk {
            for (idx, _, s) in cur.stats.iter_mut() {
                if let Some(v) = r.values.get(*idx) {
                    s.observe(v);
                }
            }
            for k in key_cols {
                if let Some(v) = r.values.get(*k) {
                    cur.bloom_keys.insert(v.encode_key());
                }
            }
        }
        cur.ts_range = Some(match cur.ts_range {
            None => (ts, ts),
            Some((lo, hi)) => (lo.min(ts), hi.max(ts)),
        });
        cur.dirty = true;
    }

    /// Writes one metadata record (commit/flush) with the same error
    /// path data blocks use: a failed replica write closes the fragment
    /// at its pre-record extent and retries once on the next fragment; a
    /// second failure finalizes the streamlet (§5.3). Without this, the
    /// writer's logical offsets would drift ahead of the file and later
    /// committed-size reports would point past real bytes.
    fn write_meta_record(
        &mut self,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
        encode: impl Fn(&mut FragmentWriter, Timestamp) -> VortexResult<Vec<u8>>,
    ) -> VortexResult<()> {
        for attempt in 0..2 {
            let cur = self
                .current
                .as_mut()
                .ok_or(VortexError::StreamletFinalized(self.spec.streamlet))?;
            let pre_size = cur.writer.logical_size();
            let pre_rows = cur.writer.rows_written();
            let rec = encode(&mut cur.writer, tt.record_timestamp())?;
            match self.write_owned(fleet, &rec, Timestamp::MIN) {
                Ok(_) => return Ok(()),
                Err(e @ VortexError::LeaseLost(_)) => {
                    self.finalized = true;
                    self.revoked = true;
                    return Err(VortexError::Unavailable(format!(
                        "streamlet {} relinquished: {e}",
                        self.spec.streamlet
                    )));
                }
                Err(e @ VortexError::SimulatedCrash(_)) => {
                    // Simulated process death: unwind to the boundary.
                    return Err(e);
                }
                Err(e) if attempt == 0 => {
                    let _ = e;
                    self.force_close_current(fleet, tt, pre_size, pre_rows);
                    self.open_fragment_after_failure(ids, fleet, tt)?;
                }
                Err(e) => {
                    self.finalized = true;
                    return Err(VortexError::Unavailable(format!(
                        "streamlet {} finalized after repeated write failures: {e}",
                        self.spec.streamlet
                    )));
                }
            }
        }
        unreachable!("loop returns or errors");
    }

    /// Writes a commit record if the tail is uncommitted and the streamlet
    /// has been idle since `idle_after` (§7.1: "written after a small
    /// period of inactivity").
    pub fn commit_if_idle(
        &mut self,
        now: Timestamp,
        idle_micros: u64,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<bool> {
        if !self.uncommitted_tail || self.finalized || self.revoked {
            return Ok(false);
        }
        if now.micros().saturating_sub(self.last_append_at.micros()) < idle_micros {
            return Ok(false);
        }
        if self.current.is_none() {
            return Ok(false);
        }
        self.write_meta_record(ids, fleet, tt, |w, ts| w.commit_record(ts))?;
        self.uncommitted_tail = false;
        Ok(true)
    }

    /// Persists a `FlushStream` watermark (streamlet-relative rows) as a
    /// flush record in the log (§5.4.4).
    pub fn flush(
        &mut self,
        flush_row: u64,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<()> {
        if self.revoked {
            return Err(VortexError::StreamletFinalized(self.spec.streamlet));
        }
        if flush_row > self.rows_acked {
            return Err(VortexError::InvalidArgument(format!(
                "flush row {flush_row} exceeds streamlet length {}",
                self.rows_acked
            )));
        }
        if self.current.is_none() {
            return Err(VortexError::StreamletFinalized(self.spec.streamlet));
        }
        self.write_meta_record(ids, fleet, tt, |w, ts| w.flush_record(flush_row, ts))?;
        self.uncommitted_tail = false;
        self.max_flush_row = Some(self.max_flush_row.unwrap_or(0).max(flush_row));
        self.flush_dirty = true;
        Ok(())
    }

    /// Finalizes the streamlet: seals the current fragment with bloom +
    /// footer; no further appends are accepted.
    pub fn finalize(&mut self, fleet: &StorageFleet, tt: &TrueTime) -> VortexResult<()> {
        if self.finalized {
            return Ok(());
        }
        if let Some(cur) = self.current.take() {
            let done = self.seal_fragment(cur, true, fleet, tt);
            self.done.push(done);
        }
        self.finalized = true;
        self.rows_dirty = true;
        Ok(())
    }

    /// Marks the streamlet revoked (SMS reconciliation took ownership).
    pub fn revoke(&mut self) {
        self.revoked = true;
    }

    /// Whether the streamlet still accepts appends.
    pub fn is_writable(&self) -> bool {
        !self.finalized && !self.revoked
    }

    /// Committed streamlet-relative row count.
    pub fn rows(&self) -> u64 {
        self.rows_acked
    }

    /// Completed fragments (metadata view).
    pub fn done_fragments(&self) -> &[DoneFragment] {
        &self.done
    }

    /// Builds this streamlet's heartbeat delta. With `full`, reports all
    /// fragments; otherwise only dirty ones. Clears dirty flags.
    pub fn heartbeat_delta(&mut self, full: bool) -> Option<StreamletDelta> {
        let mut fragments = Vec::new();
        for d in self.done.iter_mut() {
            if full || d.dirty {
                fragments.push(FragmentDelta {
                    fragment: d.fragment,
                    ordinal: d.ordinal,
                    first_row: d.first_row,
                    row_count: d.row_count,
                    committed_size: d.committed_size,
                    finalized: true,
                    stats: d.stats.clone(),
                    ts_range: d.ts_range,
                });
                d.dirty = false;
            }
        }
        if let Some(cur) = self.current.as_mut() {
            if full || cur.dirty {
                fragments.push(FragmentDelta {
                    fragment: cur.fragment,
                    ordinal: cur.ordinal,
                    first_row: cur.writer.first_row(),
                    row_count: cur.writer.rows_written(),
                    committed_size: cur.writer.logical_size(),
                    finalized: false,
                    stats: cur
                        .stats
                        .iter()
                        .map(|(_, n, s)| (n.clone(), s.clone()))
                        .collect(),
                    ts_range: cur.ts_range,
                });
                cur.dirty = false;
            }
        }
        let rows_changed = std::mem::take(&mut self.rows_dirty);
        let flush_changed = std::mem::take(&mut self.flush_dirty);
        if fragments.is_empty() && !rows_changed && !flush_changed && !full {
            return None;
        }
        Some(StreamletDelta {
            table: self.spec.table,
            streamlet: self.spec.streamlet,
            fragments,
            row_count: self.rows_acked,
            max_flush_row: self.max_flush_row,
            finalized: self.finalized,
        })
    }
}
