//! Per-streamlet write state: the heart of the data plane.
//!
//! A [`HostedStreamlet`] owns the current fragment's [`FragmentWriter`],
//! performs the dual-cluster synchronous writes, accumulates column
//! properties and bloom keys, and runs the paper's error path: failed
//! replica write → close fragment → retry on the next fragment → on
//! repeated failure, finalize the streamlet (§5.3, §5.6).

use std::collections::HashSet;

use vortex_colossus::StorageFleet;
use vortex_common::bloom::BloomFilter;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{FragmentId, IdGen};
use vortex_common::obs;
use vortex_common::row::{Row, RowSet};
use vortex_common::schema::FieldMode;
use vortex_common::stats::ColumnStats;
use vortex_common::truetime::{Timestamp, TrueTime};
use vortex_sms::heartbeat::{FragmentDelta, StreamletDelta};
use vortex_sms::meta::wos_path;
use vortex_sms::server_ctl::StreamletSpec;
use vortex_wos::{FileMapEntry, FragmentConfig, FragmentWriter};

pub use vortex_sms::server_ctl::AppendAck;

/// State of one fragment currently being written.
struct CurrentFragment {
    writer: FragmentWriter,
    fragment: FragmentId,
    ordinal: u32,
    path: String,
    stats: Vec<(usize, String, ColumnStats)>,
    bloom_keys: HashSet<Vec<u8>>,
    ts_range: Option<(Timestamp, Timestamp)>,
    dirty: bool,
    /// Expected log-file length per replica cluster. The server assumes
    /// it is the sole writer; a length mismatch after an append means a
    /// foreign record (a reconciliation sentinel, §5.6) landed in the
    /// file — ownership is relinquished immediately.
    expected_lens: [u64; 2],
}

/// A fragment this streamlet finished writing.
#[derive(Debug, Clone)]
pub struct DoneFragment {
    /// Fragment id.
    pub fragment: FragmentId,
    /// Ordinal within the streamlet.
    pub ordinal: u32,
    /// Streamlet-relative first row.
    pub first_row: u64,
    /// Committed rows.
    pub row_count: u64,
    /// Committed (logical) byte size.
    pub committed_size: u64,
    /// Column properties at finalization.
    pub stats: Vec<(String, ColumnStats)>,
    /// Record timestamp range.
    pub ts_range: Option<(Timestamp, Timestamp)>,
    /// Whether this fragment still needs to appear in a heartbeat.
    pub dirty: bool,
}

/// Tunables shared with the server.
#[derive(Debug, Clone, Copy)]
pub struct WriteTuning {
    /// Max bytes of rows per data block (§5.4.4's 2 MB buffer).
    pub block_buffer_bytes: usize,
    /// Max logical fragment size before rotation (§5.3).
    pub fragment_max_bytes: u64,
}

/// One streamlet hosted by a Stream Server.
pub struct HostedStreamlet {
    /// The creation spec (table, stream, clusters, schema, key, epoch).
    pub spec: StreamletSpec,
    current: Option<CurrentFragment>,
    done: Vec<DoneFragment>,
    rows_acked: u64,
    finalized: bool,
    revoked: bool,
    max_flush_row: Option<u64>,
    flush_dirty: bool,
    rows_dirty: bool,
    /// True when the last log record is a data block (commit piggyback
    /// pending, §7.1).
    uncommitted_tail: bool,
    last_append_at: Timestamp,
    /// (column index, name) pairs eligible for zone-map stats, computed
    /// once at open — the spec is immutable for the streamlet's life, so
    /// the append path never re-derives (or re-allocates) this.
    tracked_cols: Vec<(usize, String)>,
    /// Partition + clustering column indexes, computed once at open.
    key_cols: Vec<usize>,
}

/// Columns eligible for per-fragment zone-map stats: scalar, non-repeated.
fn tracked_columns(spec: &StreamletSpec) -> Vec<(usize, String)> {
    spec.schema
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !matches!(f.ftype, vortex_common::schema::FieldType::Struct(_))
                && f.mode != FieldMode::Repeated
        })
        .map(|(i, f)| (i, f.name.clone()))
        .collect()
}

/// Partition column followed by clustering columns, deduplicated.
fn key_columns(spec: &StreamletSpec) -> Vec<usize> {
    let schema = &spec.schema;
    let mut cols = Vec::new();
    if let Some(p) = &schema.partition {
        if let Some(i) = schema.column_index(&p.column) {
            cols.push(i);
        }
    }
    for c in &schema.clustering {
        if let Some(i) = schema.column_index(c) {
            if !cols.contains(&i) {
                cols.push(i);
            }
        }
    }
    cols
}

impl HostedStreamlet {
    /// Opens the streamlet: creates fragment 0 by writing its header to
    /// both replica clusters.
    pub fn open(
        spec: StreamletSpec,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<Self> {
        let tracked_cols = tracked_columns(&spec);
        let key_cols = key_columns(&spec);
        let mut sl = Self {
            spec,
            current: None,
            done: vec![],
            rows_acked: 0,
            finalized: false,
            revoked: false,
            max_flush_row: None,
            flush_dirty: false,
            rows_dirty: false,
            uncommitted_tail: false,
            last_append_at: Timestamp::MIN,
            tracked_cols,
            key_cols,
        };
        sl.open_fragment(0, ids, fleet, tt)?;
        Ok(sl)
    }

    fn open_fragment(
        &mut self,
        ordinal: u32,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<()> {
        let fragment = ids.next_fragment();
        let cfg = FragmentConfig {
            streamlet: self.spec.streamlet,
            fragment,
            ordinal,
            schema_version: self.spec.schema.version,
            key: self.spec.key.clone(),
        };
        let file_map: Vec<FileMapEntry> = self
            .done
            .iter()
            .map(|d| FileMapEntry {
                ordinal: d.ordinal,
                fragment: d.fragment,
                committed_size: d.committed_size,
                first_row: d.first_row,
                row_count: d.row_count,
            })
            .collect();
        let (writer, header) =
            FragmentWriter::new(cfg, self.rows_acked, file_map, tt.record_timestamp());
        let path = wos_path(self.spec.table, self.spec.streamlet, ordinal);
        let header_len = header.len() as u64;
        let (_, _, lens) = self.write_both(fleet, &path, &header, Timestamp::MIN)?;
        // A fresh fragment file must contain exactly our header; anything
        // else means a previous incarnation (or a zombie) owns the path.
        if lens != [header_len, header_len] {
            return Err(VortexError::LeaseLost(format!(
                "fragment file {path} not empty at open: {lens:?}"
            )));
        }
        let stats = self
            .tracked_cols
            .iter()
            .map(|(i, n)| (*i, n.clone(), ColumnStats::new()))
            .collect();
        self.current = Some(CurrentFragment {
            writer,
            fragment,
            ordinal,
            path,
            stats,
            bloom_keys: HashSet::new(),
            ts_range: None,
            dirty: true,
            expected_lens: [header_len, header_len],
        });
        Ok(())
    }

    /// Appends `bytes` to the same path in both replica clusters —
    /// physical replication (§5.6). Returns (service_us, completion).
    fn write_both(
        &self,
        fleet: &StorageFleet,
        path: &str,
        bytes: &[u8],
        start: Timestamp,
    ) -> VortexResult<(u64, Timestamp, [u64; 2])> {
        let mut completion = Timestamp::MIN;
        // The two replica writes happen in parallel in production; the
        // latency is their max, which is what the virtual clock records.
        let mut max_service = 0u64;
        let mut lens = [0u64; 2];
        for (i, c) in self.spec.clusters.into_iter().enumerate() {
            if i == 1 {
                // One replica now has the bytes and the other does not —
                // the §5.6 worst-case instruction for a process death;
                // reconciliation must converge on the common prefix.
                vortex_common::crash_point!("server.replica.mid_write");
            }
            let cluster = fleet.get(c)?;
            let out = cluster.append(path, bytes, start)?;
            max_service = max_service.max(out.service_us);
            completion = completion.max(out.completion);
            lens[i] = out.new_len;
        }
        // Colossus replica-write leg of the append span: the max of the
        // two synchronous replica writes (§5.6) is what the ack waits on.
        obs::global()
            .histogram("append.server.replica_write_us")
            .record(max_service);
        Ok((max_service, completion, lens))
    }

    /// Dual write with the sole-writer check: the append only counts if
    /// BOTH files grew by exactly our bytes from the expected lengths —
    /// otherwise a sentinel (or any foreign writer) got in and ownership
    /// is gone (§5.6: the sentinel "causes it to relinquish ownership").
    fn write_owned(
        &mut self,
        fleet: &StorageFleet,
        bytes: &[u8],
        start: Timestamp,
    ) -> VortexResult<(u64, Timestamp)> {
        let (path, expected) = {
            let cur = self
                .current
                .as_ref()
                .ok_or(VortexError::StreamletFinalized(self.spec.streamlet))?;
            (cur.path.clone(), cur.expected_lens)
        };
        let (svc, done, lens) = self.write_both(fleet, &path, bytes, start)?;
        let want = [
            expected[0] + bytes.len() as u64,
            expected[1] + bytes.len() as u64,
        ];
        if lens != want {
            return Err(VortexError::LeaseLost(format!(
                "foreign bytes in {path}: expected lens {want:?}, observed {lens:?}"
            )));
        }
        if let Some(cur) = self.current.as_mut() {
            cur.expected_lens = want;
        }
        Ok((svc, done))
    }

    /// Rotates to the next fragment: records the current one as done
    /// (optionally writing bloom + footer) and opens the next with a File
    /// Map covering all previous fragments.
    fn rotate(
        &mut self,
        write_footer: bool,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<()> {
        let cur = self
            .current
            .take()
            .ok_or_else(|| VortexError::Internal("rotate without current fragment".into()))?;
        let done = self.seal_fragment(cur, write_footer, fleet, tt);
        let next_ordinal = done.ordinal + 1;
        self.done.push(done);
        self.open_fragment(next_ordinal, ids, fleet, tt)
    }

    /// Seals a fragment: writes bloom + footer when asked (and possible),
    /// and produces its [`DoneFragment`] record.
    fn seal_fragment(
        &mut self,
        mut cur: CurrentFragment,
        write_footer: bool,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> DoneFragment {
        let first_row = cur.writer.first_row();
        let row_count = cur.writer.rows_written();
        let mut committed_size = cur.writer.logical_size();
        if write_footer {
            let mut bloom = BloomFilter::with_capacity(cur.bloom_keys.len().max(16), 0.01);
            for k in &cur.bloom_keys {
                bloom.insert(k);
            }
            if let Ok(chunk) = cur.writer.finalize(&bloom, tt.record_timestamp()) {
                // Best-effort, but still length-checked: a poisoned file
                // must not have its committed size extended.
                let want = [
                    cur.expected_lens[0] + chunk.len() as u64,
                    cur.expected_lens[1] + chunk.len() as u64,
                ];
                if let Ok((_, _, lens)) = self.write_both(fleet, &cur.path, &chunk, Timestamp::MIN)
                {
                    if lens == want {
                        cur.expected_lens = want;
                        committed_size = cur.writer.logical_size();
                        self.uncommitted_tail = false;
                    }
                }
            }
        }
        DoneFragment {
            fragment: cur.fragment,
            ordinal: cur.ordinal,
            first_row,
            row_count,
            committed_size,
            stats: cur.stats.drain(..).map(|(_, n, s)| (n, s)).collect(),
            ts_range: cur.ts_range,
            dirty: true,
        }
    }

    /// The append path. `expected_stream_offset` implements the offset
    /// idempotency check of §4.2.2; `declared_schema_version` implements
    /// the schema relay of §5.4.1 (`latest_version` is the server's most
    /// recent knowledge for the table).
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &mut self,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
        latest_version: u32,
        tuning: WriteTuning,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<AppendAck> {
        if self.revoked || self.finalized {
            return Err(VortexError::StreamletFinalized(self.spec.streamlet));
        }
        if rows.is_empty() {
            return Err(VortexError::InvalidArgument("empty append".into()));
        }
        if declared_schema_version < latest_version {
            return Err(VortexError::SchemaVersionMismatch {
                table: self.spec.table,
                writer_version: declared_schema_version,
                current_version: latest_version,
            });
        }
        let next_offset = self.spec.first_stream_row + self.rows_acked;
        if let Some(expected) = expected_stream_offset {
            if expected != next_offset {
                return Err(VortexError::OffsetMismatch {
                    stream: self.spec.stream,
                    provided: expected,
                    expected: next_offset,
                });
            }
        }
        // Row validation against the schema the server holds (when the
        // writer speaks the same version).
        if declared_schema_version == self.spec.schema.version {
            for r in &rows.rows {
                self.spec.schema.validate_row(r)?;
            }
        }

        // Chunk into ≤ block_buffer_bytes blocks (§5.4.4). Chunks are
        // index ranges over the caller's rows — the hot path borrows
        // slices instead of cloning every row into scratch RowSets.
        let all = &rows.rows[..];
        let first_stream_row = next_offset;
        let mut total_service = 0u64;
        let mut completion = start;
        let mut chunk_count = 0u64;
        let mut lo = 0usize;
        while lo < all.len() {
            let mut hi = lo;
            let mut acc_bytes = 0usize;
            while hi < all.len() {
                let rb = all[hi].approx_bytes();
                if hi > lo && acc_bytes + rb > tuning.block_buffer_bytes {
                    break;
                }
                acc_bytes += rb;
                hi += 1;
            }
            let chunk = &all[lo..hi];
            lo = hi;
            chunk_count += 1;
            let ts = tt.record_timestamp();
            let (svc, done_at) = self.write_chunk(chunk, ts, completion, tuning, ids, fleet, tt)?;
            total_service += svc;
            completion = done_at;
            // Account the chunk only after both replicas acked.
            self.rows_acked += chunk.len() as u64;
            self.rows_dirty = true;
            self.uncommitted_tail = true;
            self.last_append_at = ts;
            self.record_properties(chunk, ts);
            // Rotate when the fragment hits its max size.
            let needs_rotate = self
                .current
                .as_ref()
                .map(|c| c.writer.logical_size() >= tuning.fragment_max_bytes)
                .unwrap_or(false);
            if needs_rotate {
                self.rotate(true, ids, fleet, tt)?;
            }
        }
        // Server leg of the append span (§4.2.2: request → both-replica
        // durable), plus data-plane counters for the unified registry.
        let m = obs::global();
        m.counter("append.server.chunks").add(chunk_count);
        m.counter("append.server.rows").add(rows.len() as u64);
        m.histogram("append.server.service_us")
            .record(total_service);
        obs::Span::begin("append.server", start).end(completion);
        Ok(AppendAck {
            first_stream_row,
            row_count: rows.len() as u64,
            completion,
            service_us: total_service,
        })
    }

    /// Writes one data block, running the §5.3 error path on failure:
    /// close the fragment, retry on the next one, finalize the streamlet
    /// if the retry fails too.
    #[allow(clippy::too_many_arguments)]
    fn write_chunk(
        &mut self,
        chunk: &[Row],
        ts: Timestamp,
        start: Timestamp,
        _tuning: WriteTuning,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<(u64, Timestamp)> {
        for attempt in 0..2 {
            let cur = self
                .current
                .as_mut()
                .ok_or(VortexError::StreamletFinalized(self.spec.streamlet))?;
            // Snapshot the acked extent BEFORE encoding: a failed block
            // must not count toward the fragment's committed size or rows.
            let pre_size = cur.writer.logical_size();
            let pre_rows = cur.writer.rows_written();
            let block = cur.writer.data_block(chunk, ts)?;
            match self.write_owned(fleet, &block, start) {
                Ok(out) => return Ok(out),
                Err(e @ VortexError::LeaseLost(_)) => {
                    // A reconciler poisoned the log (§5.6): relinquish
                    // ownership immediately — never retry on a new
                    // fragment, the SMS owns this streamlet's fate now.
                    self.finalized = true;
                    self.revoked = true;
                    return Err(VortexError::Unavailable(format!(
                        "streamlet {} relinquished: {e}",
                        self.spec.streamlet
                    )));
                }
                Err(e @ VortexError::SimulatedCrash(_)) => {
                    // A crash point fired: this server is dead at this
                    // instruction. No §5.3 local recovery — the error
                    // unwinds to the service boundary untouched.
                    return Err(e);
                }
                Err(e) if attempt == 0 => {
                    // First failure: the block may be torn in one replica.
                    // Close this fragment at its pre-failure extent and
                    // retry on the next one (§5.3); the new fragment's
                    // File Map records the committed size of this one.
                    let _ = e;
                    self.force_close_current(fleet, tt, pre_size, pre_rows);
                    self.open_fragment_after_failure(ids, fleet, tt)?;
                }
                Err(e) => {
                    // Second failure: finalize the streamlet; the client
                    // reconciles with the SMS and writes elsewhere (§5.3).
                    self.finalized = true;
                    return Err(VortexError::Unavailable(format!(
                        "streamlet {} finalized after repeated write failures: {e}",
                        self.spec.streamlet
                    )));
                }
            }
        }
        unreachable!("loop returns or errors");
    }

    fn force_close_current(
        &mut self,
        fleet: &StorageFleet,
        tt: &TrueTime,
        acked_size: u64,
        acked_rows: u64,
    ) {
        if let Some(cur) = self.current.take() {
            // The fragment is closed at its last *acked* extent; no footer
            // (a replica is failing). The next fragment's File Map records
            // the committed size (§5.6).
            let mut done = self.seal_fragment(cur, false, fleet, tt);
            done.committed_size = acked_size;
            done.row_count = acked_rows; // fragment-relative acked rows
            self.done.push(done);
        }
    }

    fn open_fragment_after_failure(
        &mut self,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<()> {
        let next = self.done.last().map(|d| d.ordinal + 1).unwrap_or(0);
        match self.open_fragment(next, ids, fleet, tt) {
            Err(e @ VortexError::LeaseLost(_)) => {
                // A reconciler fenced the next ordinal with a poison file
                // (§5.6): ownership is gone; relinquish instead of
                // retrying.
                self.finalized = true;
                self.revoked = true;
                Err(VortexError::Unavailable(format!(
                    "streamlet {} relinquished at rotation: {e}",
                    self.spec.streamlet
                )))
            }
            other => other,
        }
    }

    fn record_properties(&mut self, chunk: &[Row], ts: Timestamp) {
        let key_cols = &self.key_cols;
        let Some(cur) = self.current.as_mut() else {
            return;
        };
        for r in chunk {
            for (idx, _, s) in cur.stats.iter_mut() {
                if let Some(v) = r.values.get(*idx) {
                    s.observe(v);
                }
            }
            for k in key_cols {
                if let Some(v) = r.values.get(*k) {
                    cur.bloom_keys.insert(v.encode_key());
                }
            }
        }
        cur.ts_range = Some(match cur.ts_range {
            None => (ts, ts),
            Some((lo, hi)) => (lo.min(ts), hi.max(ts)),
        });
        cur.dirty = true;
    }

    /// Writes one metadata record (commit/flush) with the same error
    /// path data blocks use: a failed replica write closes the fragment
    /// at its pre-record extent and retries once on the next fragment; a
    /// second failure finalizes the streamlet (§5.3). Without this, the
    /// writer's logical offsets would drift ahead of the file and later
    /// committed-size reports would point past real bytes.
    fn write_meta_record(
        &mut self,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
        encode: impl Fn(&mut FragmentWriter, Timestamp) -> VortexResult<Vec<u8>>,
    ) -> VortexResult<()> {
        for attempt in 0..2 {
            let cur = self
                .current
                .as_mut()
                .ok_or(VortexError::StreamletFinalized(self.spec.streamlet))?;
            let pre_size = cur.writer.logical_size();
            let pre_rows = cur.writer.rows_written();
            let rec = encode(&mut cur.writer, tt.record_timestamp())?;
            match self.write_owned(fleet, &rec, Timestamp::MIN) {
                Ok(_) => return Ok(()),
                Err(e @ VortexError::LeaseLost(_)) => {
                    self.finalized = true;
                    self.revoked = true;
                    return Err(VortexError::Unavailable(format!(
                        "streamlet {} relinquished: {e}",
                        self.spec.streamlet
                    )));
                }
                Err(e @ VortexError::SimulatedCrash(_)) => {
                    // Simulated process death: unwind to the boundary.
                    return Err(e);
                }
                Err(e) if attempt == 0 => {
                    let _ = e;
                    self.force_close_current(fleet, tt, pre_size, pre_rows);
                    self.open_fragment_after_failure(ids, fleet, tt)?;
                }
                Err(e) => {
                    self.finalized = true;
                    return Err(VortexError::Unavailable(format!(
                        "streamlet {} finalized after repeated write failures: {e}",
                        self.spec.streamlet
                    )));
                }
            }
        }
        unreachable!("loop returns or errors");
    }

    /// Writes a commit record if the tail is uncommitted and the streamlet
    /// has been idle since `idle_after` (§7.1: "written after a small
    /// period of inactivity").
    pub fn commit_if_idle(
        &mut self,
        now: Timestamp,
        idle_micros: u64,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<bool> {
        if !self.uncommitted_tail || self.finalized || self.revoked {
            return Ok(false);
        }
        if now.micros().saturating_sub(self.last_append_at.micros()) < idle_micros {
            return Ok(false);
        }
        if self.current.is_none() {
            return Ok(false);
        }
        self.write_meta_record(ids, fleet, tt, |w, ts| w.commit_record(ts))?;
        self.uncommitted_tail = false;
        Ok(true)
    }

    /// Persists a `FlushStream` watermark (streamlet-relative rows) as a
    /// flush record in the log (§5.4.4).
    pub fn flush(
        &mut self,
        flush_row: u64,
        ids: &IdGen,
        fleet: &StorageFleet,
        tt: &TrueTime,
    ) -> VortexResult<()> {
        if self.revoked {
            return Err(VortexError::StreamletFinalized(self.spec.streamlet));
        }
        if flush_row > self.rows_acked {
            return Err(VortexError::InvalidArgument(format!(
                "flush row {flush_row} exceeds streamlet length {}",
                self.rows_acked
            )));
        }
        if self.current.is_none() {
            return Err(VortexError::StreamletFinalized(self.spec.streamlet));
        }
        self.write_meta_record(ids, fleet, tt, |w, ts| w.flush_record(flush_row, ts))?;
        self.uncommitted_tail = false;
        self.max_flush_row = Some(self.max_flush_row.unwrap_or(0).max(flush_row));
        self.flush_dirty = true;
        Ok(())
    }

    /// Finalizes the streamlet: seals the current fragment with bloom +
    /// footer; no further appends are accepted.
    pub fn finalize(&mut self, fleet: &StorageFleet, tt: &TrueTime) -> VortexResult<()> {
        if self.finalized {
            return Ok(());
        }
        if let Some(cur) = self.current.take() {
            let done = self.seal_fragment(cur, true, fleet, tt);
            self.done.push(done);
        }
        self.finalized = true;
        self.rows_dirty = true;
        Ok(())
    }

    /// Marks the streamlet revoked (SMS reconciliation took ownership).
    pub fn revoke(&mut self) {
        self.revoked = true;
    }

    /// Whether the streamlet still accepts appends.
    pub fn is_writable(&self) -> bool {
        !self.finalized && !self.revoked
    }

    /// Committed streamlet-relative row count.
    pub fn rows(&self) -> u64 {
        self.rows_acked
    }

    /// Completed fragments (metadata view).
    pub fn done_fragments(&self) -> &[DoneFragment] {
        &self.done
    }

    /// Builds this streamlet's heartbeat delta. With `full`, reports all
    /// fragments; otherwise only dirty ones. Clears dirty flags.
    pub fn heartbeat_delta(&mut self, full: bool) -> Option<StreamletDelta> {
        let mut fragments = Vec::new();
        for d in self.done.iter_mut() {
            if full || d.dirty {
                fragments.push(FragmentDelta {
                    fragment: d.fragment,
                    ordinal: d.ordinal,
                    first_row: d.first_row,
                    row_count: d.row_count,
                    committed_size: d.committed_size,
                    finalized: true,
                    stats: d.stats.clone(),
                    ts_range: d.ts_range,
                });
                d.dirty = false;
            }
        }
        if let Some(cur) = self.current.as_mut() {
            if full || cur.dirty {
                fragments.push(FragmentDelta {
                    fragment: cur.fragment,
                    ordinal: cur.ordinal,
                    first_row: cur.writer.first_row(),
                    row_count: cur.writer.rows_written(),
                    committed_size: cur.writer.logical_size(),
                    finalized: false,
                    stats: cur
                        .stats
                        .iter()
                        .map(|(_, n, s)| (n.clone(), s.clone()))
                        .collect(),
                    ts_range: cur.ts_range,
                });
                cur.dirty = false;
            }
        }
        let rows_changed = std::mem::take(&mut self.rows_dirty);
        let flush_changed = std::mem::take(&mut self.flush_dirty);
        if fragments.is_empty() && !rows_changed && !flush_changed && !full {
            return None;
        }
        Some(StreamletDelta {
            table: self.spec.table,
            streamlet: self.spec.streamlet,
            fragments,
            row_count: self.rows_acked,
            max_flush_row: self.max_flush_row,
            finalized: self.finalized,
        })
    }
}
