//! Service traits and channel wrappers: the in-process RPC boundary.
//!
//! [`SmsApi`] is the complete call surface of an [`SmsTask`]; every
//! consumer crate (client, query, optimizer, verify, connector, core)
//! holds an [`SmsHandle`] — normally an [`SmsChannel`] that routes each
//! method through a [`vortex_common::rpc::RpcChannel`], which injects
//! faults and latency, enforces deadlines, and records per-method
//! metrics. [`ServerChannel`] does the same for the Stream Server surface
//! ([`StreamServerApi`]); the SMS registers channel-wrapped server
//! handles, so the handles it embeds in [`StreamHandle`]s route client
//! appends through the same boundary.
//!
//! Each wrapped method declares its [`CallKind`]: re-executable methods
//! (reads, max-merge updates, token-keyed begin/end DML, rotation) are
//! `Idempotent`; methods whose re-execution would duplicate effects
//! (append, table DDL, conversion commits) are `NonIdempotent`, so an
//! ambiguous ack surfaces as retryable unavailability and the caller's
//! §5.4/§5.6 reconciliation decides what really happened.

use std::sync::Arc;

use vortex_common::error::VortexResult;
use vortex_common::ids::{
    ClusterId, FragmentId, ServerId, SmsTaskId, StreamId, StreamletId, TableId,
};
use vortex_common::mask::DeletionMask;
use vortex_common::row::RowSet;
use vortex_common::rpc::{CallKind, RpcChannel};
use vortex_common::schema::Schema;
use vortex_common::truetime::Timestamp;
use vortex_metastore::MetaStore;

use crate::bigmeta::BigMeta;
use crate::heartbeat::{HeartbeatReport, HeartbeatResponse};
use crate::meta::{FragmentMeta, StreamMeta, StreamType, StreamletMeta, TableMeta};
use crate::readset::ReadSet;
use crate::server_ctl::{AppendAck, LoadReport, ServerHandle, StreamServerApi, StreamletSpec};
use crate::sms::{DmlTicket, SmsTask, StreamHandle};

/// The complete SMS service surface, mirroring [`SmsTask`]'s methods.
///
/// Infrastructure accessors (`bigmeta`, `store`, `register_server`, the
/// listing diagnostics) are part of the trait so consumers never need the
/// concrete type, but channel wrappers treat them as local calls — they
/// model in-process state shared with the caller, not RPCs.
pub trait SmsApi: Send + Sync {
    /// This task's id.
    fn task_id(&self) -> SmsTaskId;
    /// The Big Metadata index this task maintains (§6.2).
    fn bigmeta(&self) -> &BigMeta;
    /// The shared metastore (used by verification pipelines).
    fn store(&self) -> &Arc<MetaStore>;
    /// Registers a Stream Server endpoint.
    fn register_server(&self, server: ServerHandle);
    /// A fresh snapshot timestamp guaranteeing read-after-write.
    fn read_snapshot(&self) -> Timestamp;
    /// Creates a table (§5.2.1 zone assignment included).
    fn create_table(&self, name: &str, schema: Schema) -> VortexResult<TableMeta>;
    /// Creates a BigLake Managed Table (§6.4).
    fn create_blmt_table(
        &self,
        name: &str,
        schema: Schema,
        bucket: &str,
    ) -> VortexResult<TableMeta>;
    /// Fetches a table by id at the latest snapshot.
    fn get_table(&self, table: TableId) -> VortexResult<TableMeta>;
    /// Resolves a table by name.
    fn get_table_by_name(&self, name: &str) -> VortexResult<TableMeta>;
    /// Applies a schema change (additive column).
    fn update_schema(&self, table: TableId, new_schema: Schema) -> VortexResult<TableMeta>;
    /// Swaps primary and secondary clusters (§5.2.1 failover).
    fn fail_over_table(&self, table: TableId) -> VortexResult<TableMeta>;
    /// Creates a Stream plus its first Streamlet (§4.2.1 / §5.2).
    fn create_stream(&self, table: TableId, stype: StreamType) -> VortexResult<StreamHandle>;
    /// Opens the next streamlet of a stream after the current one closed.
    fn rotate_streamlet(&self, table: TableId, stream: StreamId) -> VortexResult<StreamHandle>;
    /// Fetches a stream's metadata.
    fn get_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta>;
    /// Fetches a streamlet's metadata.
    fn get_streamlet(&self, table: TableId, streamlet: StreamletId) -> VortexResult<StreamletMeta>;
    /// Current committed length (rows) of a stream.
    fn stream_length(&self, table: TableId, stream: StreamId) -> VortexResult<u64>;
    /// `FlushStream` (§4.2.3).
    fn flush_stream(&self, table: TableId, stream: StreamId, row_offset: u64) -> VortexResult<()>;
    /// `FinalizeStream` (§4.2.5).
    fn finalize_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta>;
    /// `BatchCommitStreams` (§4.2.4).
    fn batch_commit_streams(&self, table: TableId, streams: &[StreamId])
        -> VortexResult<Timestamp>;
    /// Ingests a Stream Server heartbeat (§5.5).
    fn heartbeat(&self, report: &HeartbeatReport) -> VortexResult<HeartbeatResponse>;
    /// Acknowledges server-side fragment GC (§5.4.3).
    fn ack_gc(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: &[u32],
    ) -> VortexResult<usize>;
    /// The union of WOS and ROS visible at `snapshot` (§7).
    fn list_read_fragments(&self, table: TableId, snapshot: Timestamp) -> VortexResult<ReadSet>;
    /// Runs the reconciliation protocol on a streamlet (§5.6, §7.1).
    fn reconcile_streamlet(
        &self,
        table: TableId,
        streamlet: StreamletId,
    ) -> VortexResult<StreamletMeta>;
    /// Marks the start of a DML statement (§7.3); returns its ticket.
    fn begin_dml(&self, table: TableId) -> VortexResult<DmlTicket>;
    /// Marks the end of the DML statement holding `ticket`.
    fn end_dml(&self, table: TableId, ticket: DmlTicket) -> VortexResult<()>;
    /// Whether any DML statement is currently running on the table.
    fn dml_active(&self, table: TableId) -> bool;
    /// Atomically commits a WOS→ROS conversion or recluster merge (§6.1).
    fn commit_conversion(
        &self,
        table: TableId,
        sources: &[(FragmentId, usize)],
        replacements: Vec<FragmentMeta>,
        yield_to_dml: bool,
    ) -> VortexResult<Timestamp>;
    /// Atomically commits a DML statement's effects (§7.3).
    fn commit_dml(
        &self,
        table: TableId,
        fragment_masks: &[(FragmentId, DeletionMask)],
        tail_masks: &[(StreamletId, DeletionMask)],
        reinserted_streams: &[StreamId],
    ) -> VortexResult<Timestamp>;
    /// Physically deletes doomed fragments past the grace period (§5.4.3).
    fn run_gc(&self, table: TableId) -> VortexResult<usize>;
    /// Drops a table; its data becomes groomer-collectable orphans.
    fn drop_table(&self, table: TableId) -> VortexResult<()>;
    /// The groomer sweep over orphaned entities (§5.4.3).
    fn run_groomer(&self) -> VortexResult<(usize, usize)>;
    /// All fragment metadata of a table at a snapshot (diagnostics).
    fn list_fragments(&self, table: TableId, at: Timestamp) -> Vec<FragmentMeta>;
    /// All streamlet metadata of a table (diagnostics).
    fn list_streamlets(&self, table: TableId) -> Vec<StreamletMeta>;
}

/// A shareable handle to an SMS endpoint.
pub type SmsHandle = Arc<dyn SmsApi>;

impl SmsApi for SmsTask {
    fn task_id(&self) -> SmsTaskId {
        self.task_id()
    }
    fn bigmeta(&self) -> &BigMeta {
        self.bigmeta()
    }
    fn store(&self) -> &Arc<MetaStore> {
        self.store()
    }
    fn register_server(&self, server: ServerHandle) {
        self.register_server(server)
    }
    fn read_snapshot(&self) -> Timestamp {
        self.read_snapshot()
    }
    fn create_table(&self, name: &str, schema: Schema) -> VortexResult<TableMeta> {
        self.create_table(name, schema)
    }
    fn create_blmt_table(
        &self,
        name: &str,
        schema: Schema,
        bucket: &str,
    ) -> VortexResult<TableMeta> {
        self.create_blmt_table(name, schema, bucket)
    }
    fn get_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.get_table(table)
    }
    fn get_table_by_name(&self, name: &str) -> VortexResult<TableMeta> {
        self.get_table_by_name(name)
    }
    fn update_schema(&self, table: TableId, new_schema: Schema) -> VortexResult<TableMeta> {
        self.update_schema(table, new_schema)
    }
    fn fail_over_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.fail_over_table(table)
    }
    fn create_stream(&self, table: TableId, stype: StreamType) -> VortexResult<StreamHandle> {
        self.create_stream(table, stype)
    }
    fn rotate_streamlet(&self, table: TableId, stream: StreamId) -> VortexResult<StreamHandle> {
        self.rotate_streamlet(table, stream)
    }
    fn get_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.get_stream(table, stream)
    }
    fn get_streamlet(&self, table: TableId, streamlet: StreamletId) -> VortexResult<StreamletMeta> {
        self.get_streamlet(table, streamlet)
    }
    fn stream_length(&self, table: TableId, stream: StreamId) -> VortexResult<u64> {
        self.stream_length(table, stream)
    }
    fn flush_stream(&self, table: TableId, stream: StreamId, row_offset: u64) -> VortexResult<()> {
        self.flush_stream(table, stream, row_offset)
    }
    fn finalize_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.finalize_stream(table, stream)
    }
    fn batch_commit_streams(
        &self,
        table: TableId,
        streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        self.batch_commit_streams(table, streams)
    }
    fn heartbeat(&self, report: &HeartbeatReport) -> VortexResult<HeartbeatResponse> {
        self.heartbeat(report)
    }
    fn ack_gc(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: &[u32],
    ) -> VortexResult<usize> {
        self.ack_gc(table, streamlet, ordinals)
    }
    fn list_read_fragments(&self, table: TableId, snapshot: Timestamp) -> VortexResult<ReadSet> {
        self.list_read_fragments(table, snapshot)
    }
    fn reconcile_streamlet(
        &self,
        table: TableId,
        streamlet: StreamletId,
    ) -> VortexResult<StreamletMeta> {
        self.reconcile_streamlet(table, streamlet)
    }
    fn begin_dml(&self, table: TableId) -> VortexResult<DmlTicket> {
        self.begin_dml(table)
    }
    fn end_dml(&self, table: TableId, ticket: DmlTicket) -> VortexResult<()> {
        self.end_dml(table, ticket)
    }
    fn dml_active(&self, table: TableId) -> bool {
        self.dml_active(table)
    }
    fn commit_conversion(
        &self,
        table: TableId,
        sources: &[(FragmentId, usize)],
        replacements: Vec<FragmentMeta>,
        yield_to_dml: bool,
    ) -> VortexResult<Timestamp> {
        self.commit_conversion(table, sources, replacements, yield_to_dml)
    }
    fn commit_dml(
        &self,
        table: TableId,
        fragment_masks: &[(FragmentId, DeletionMask)],
        tail_masks: &[(StreamletId, DeletionMask)],
        reinserted_streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        self.commit_dml(table, fragment_masks, tail_masks, reinserted_streams)
    }
    fn run_gc(&self, table: TableId) -> VortexResult<usize> {
        self.run_gc(table)
    }
    fn drop_table(&self, table: TableId) -> VortexResult<()> {
        self.drop_table(table)
    }
    fn run_groomer(&self) -> VortexResult<(usize, usize)> {
        self.run_groomer()
    }
    fn list_fragments(&self, table: TableId, at: Timestamp) -> Vec<FragmentMeta> {
        self.list_fragments(table, at)
    }
    fn list_streamlets(&self, table: TableId) -> Vec<StreamletMeta> {
        self.list_streamlets(table)
    }
}

/// An [`SmsHandle`] whose every service call crosses an [`RpcChannel`].
pub struct SmsChannel {
    inner: Arc<SmsTask>,
    channel: Arc<RpcChannel>,
}

impl SmsChannel {
    /// Wraps an SMS task behind a channel.
    pub fn new(inner: Arc<SmsTask>, channel: Arc<RpcChannel>) -> Arc<Self> {
        Arc::new(SmsChannel { inner, channel })
    }

    /// The channel carrying this handle's traffic.
    pub fn channel(&self) -> &Arc<RpcChannel> {
        &self.channel
    }

    /// The wrapped task (rig plumbing; service calls go through the
    /// trait).
    pub fn inner(&self) -> &Arc<SmsTask> {
        &self.inner
    }
}

impl std::fmt::Debug for SmsChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmsChannel")
            .field("task", &self.inner.task_id())
            .finish_non_exhaustive()
    }
}

impl SmsApi for SmsChannel {
    // Shared in-process state, not RPCs: served locally.
    fn task_id(&self) -> SmsTaskId {
        self.inner.task_id()
    }
    fn bigmeta(&self) -> &BigMeta {
        self.inner.bigmeta()
    }
    fn store(&self) -> &Arc<MetaStore> {
        self.inner.store()
    }
    fn register_server(&self, server: ServerHandle) {
        self.inner.register_server(server)
    }
    fn read_snapshot(&self) -> Timestamp {
        self.inner.read_snapshot()
    }
    fn dml_active(&self, table: TableId) -> bool {
        self.inner.dml_active(table)
    }
    fn list_fragments(&self, table: TableId, at: Timestamp) -> Vec<FragmentMeta> {
        self.inner.list_fragments(table, at)
    }
    fn list_streamlets(&self, table: TableId) -> Vec<StreamletMeta> {
        self.inner.list_streamlets(table)
    }

    // DDL and conversion commits: re-execution would duplicate effects.
    fn create_table(&self, name: &str, schema: Schema) -> VortexResult<TableMeta> {
        self.channel
            .call("create_table", CallKind::NonIdempotent, || {
                self.inner.create_table(name, schema.clone())
            })
    }
    fn create_blmt_table(
        &self,
        name: &str,
        schema: Schema,
        bucket: &str,
    ) -> VortexResult<TableMeta> {
        self.channel
            .call("create_blmt_table", CallKind::NonIdempotent, || {
                self.inner.create_blmt_table(name, schema.clone(), bucket)
            })
    }
    fn update_schema(&self, table: TableId, new_schema: Schema) -> VortexResult<TableMeta> {
        self.channel
            .call("update_schema", CallKind::NonIdempotent, || {
                self.inner.update_schema(table, new_schema.clone())
            })
    }
    fn drop_table(&self, table: TableId) -> VortexResult<()> {
        self.channel
            .call("drop_table", CallKind::NonIdempotent, || {
                self.inner.drop_table(table)
            })
    }
    fn commit_conversion(
        &self,
        table: TableId,
        sources: &[(FragmentId, usize)],
        replacements: Vec<FragmentMeta>,
        yield_to_dml: bool,
    ) -> VortexResult<Timestamp> {
        self.channel
            .call("commit_conversion", CallKind::NonIdempotent, || {
                self.inner
                    .commit_conversion(table, sources, replacements.clone(), yield_to_dml)
            })
    }

    // Reads, max-merge mutations, and token-keyed calls: safe to
    // re-execute after an ambiguous ack.
    fn get_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.channel.call("get_table", CallKind::Idempotent, || {
            self.inner.get_table(table)
        })
    }
    fn get_table_by_name(&self, name: &str) -> VortexResult<TableMeta> {
        self.channel
            .call("get_table_by_name", CallKind::Idempotent, || {
                self.inner.get_table_by_name(name)
            })
    }
    fn fail_over_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.channel
            .call("fail_over_table", CallKind::Idempotent, || {
                self.inner.fail_over_table(table)
            })
    }
    fn create_stream(&self, table: TableId, stype: StreamType) -> VortexResult<StreamHandle> {
        // Re-execution strands an empty stream, which the groomer reaps;
        // the returned handle is the only one the caller writes to.
        self.channel
            .call("create_stream", CallKind::Idempotent, || {
                self.inner.create_stream(table, stype)
            })
    }
    fn rotate_streamlet(&self, table: TableId, stream: StreamId) -> VortexResult<StreamHandle> {
        self.channel
            .call("rotate_streamlet", CallKind::Idempotent, || {
                self.inner.rotate_streamlet(table, stream)
            })
    }
    fn get_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.channel.call("get_stream", CallKind::Idempotent, || {
            self.inner.get_stream(table, stream)
        })
    }
    fn get_streamlet(&self, table: TableId, streamlet: StreamletId) -> VortexResult<StreamletMeta> {
        self.channel
            .call("get_streamlet", CallKind::Idempotent, || {
                self.inner.get_streamlet(table, streamlet)
            })
    }
    fn stream_length(&self, table: TableId, stream: StreamId) -> VortexResult<u64> {
        self.channel
            .call("stream_length", CallKind::Idempotent, || {
                self.inner.stream_length(table, stream)
            })
    }
    fn flush_stream(&self, table: TableId, stream: StreamId, row_offset: u64) -> VortexResult<()> {
        self.channel.call("flush_stream", CallKind::Idempotent, || {
            self.inner.flush_stream(table, stream, row_offset)
        })
    }
    fn finalize_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.channel
            .call("finalize_stream", CallKind::Idempotent, || {
                self.inner.finalize_stream(table, stream)
            })
    }
    fn batch_commit_streams(
        &self,
        table: TableId,
        streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        self.channel
            .call("batch_commit_streams", CallKind::Idempotent, || {
                self.inner.batch_commit_streams(table, streams)
            })
    }
    fn heartbeat(&self, report: &HeartbeatReport) -> VortexResult<HeartbeatResponse> {
        self.channel.call("heartbeat", CallKind::Idempotent, || {
            self.inner.heartbeat(report)
        })
    }
    fn ack_gc(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: &[u32],
    ) -> VortexResult<usize> {
        self.channel.call("ack_gc", CallKind::Idempotent, || {
            self.inner.ack_gc(table, streamlet, ordinals)
        })
    }
    fn list_read_fragments(&self, table: TableId, snapshot: Timestamp) -> VortexResult<ReadSet> {
        self.channel
            .call("list_read_fragments", CallKind::Idempotent, || {
                self.inner.list_read_fragments(table, snapshot)
            })
    }
    fn reconcile_streamlet(
        &self,
        table: TableId,
        streamlet: StreamletId,
    ) -> VortexResult<StreamletMeta> {
        self.channel
            .call("reconcile_streamlet", CallKind::Idempotent, || {
                self.inner.reconcile_streamlet(table, streamlet)
            })
    }
    fn begin_dml(&self, table: TableId) -> VortexResult<DmlTicket> {
        // Token minted OUTSIDE the retry loop: every attempt writes the
        // same marker key, so an ambiguous ack cannot leak a lock.
        let token = self.inner.mint_dml_token();
        self.channel.call("begin_dml", CallKind::Idempotent, || {
            self.inner.begin_dml_with(table, token)
        })
    }
    fn end_dml(&self, table: TableId, ticket: DmlTicket) -> VortexResult<()> {
        self.channel.call("end_dml", CallKind::Idempotent, || {
            self.inner.end_dml(table, ticket)
        })
    }
    fn commit_dml(
        &self,
        table: TableId,
        fragment_masks: &[(FragmentId, DeletionMask)],
        tail_masks: &[(StreamletId, DeletionMask)],
        reinserted_streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        // Re-execution re-pushes the same masks at a later timestamp —
        // a union-idempotent effect — and overwrites `committed_at`
        // MVCC-safely, so the ledger a reader sees is unchanged.
        self.channel.call("commit_dml", CallKind::Idempotent, || {
            self.inner
                .commit_dml(table, fragment_masks, tail_masks, reinserted_streams)
        })
    }
    fn run_gc(&self, table: TableId) -> VortexResult<usize> {
        self.channel
            .call("run_gc", CallKind::Idempotent, || self.inner.run_gc(table))
    }
    fn run_groomer(&self) -> VortexResult<(usize, usize)> {
        self.channel.call("run_groomer", CallKind::Idempotent, || {
            self.inner.run_groomer()
        })
    }
}

/// A [`ServerHandle`] whose data-plane and control calls cross an
/// [`RpcChannel`]. Placement/introspection accessors stay local.
pub struct ServerChannel {
    inner: ServerHandle,
    channel: Arc<RpcChannel>,
}

impl ServerChannel {
    /// Wraps a server endpoint behind a channel.
    pub fn new(inner: ServerHandle, channel: Arc<RpcChannel>) -> Arc<Self> {
        Arc::new(ServerChannel { inner, channel })
    }

    /// Wraps and erases to a [`ServerHandle`] in one step.
    pub fn wrap(inner: ServerHandle, channel: Arc<RpcChannel>) -> ServerHandle {
        Self::new(inner, channel)
    }

    /// The channel carrying this handle's traffic.
    pub fn channel(&self) -> &Arc<RpcChannel> {
        &self.channel
    }
}

impl StreamServerApi for ServerChannel {
    fn server_id(&self) -> ServerId {
        self.inner.server_id()
    }
    fn cluster(&self) -> ClusterId {
        self.inner.cluster()
    }
    fn load(&self) -> LoadReport {
        self.inner.load()
    }
    fn streamlet_rows(&self, streamlet: StreamletId) -> Option<u64> {
        self.inner.streamlet_rows(streamlet)
    }
    fn notify_schema_version(&self, table: TableId, version: u32) {
        self.inner.notify_schema_version(table, version)
    }
    fn revoke_streamlet(&self, streamlet: StreamletId) {
        self.inner.revoke_streamlet(streamlet)
    }
    fn tick(&self) -> usize {
        self.inner.tick()
    }
    fn build_heartbeat(&self, full_state: bool) -> HeartbeatReport {
        self.inner.build_heartbeat(full_state)
    }
    fn apply_heartbeat_response(
        &self,
        resp: &HeartbeatResponse,
        orphan_age_micros: u64,
    ) -> Vec<(TableId, StreamletId, Vec<u32>)> {
        self.inner.apply_heartbeat_response(resp, orphan_age_micros)
    }
    fn reset_heartbeat_window(&self) {
        self.inner.reset_heartbeat_window()
    }
    fn set_quarantined(&self, quarantined: bool) {
        self.inner.set_quarantined(quarantined)
    }

    fn create_streamlet(&self, spec: StreamletSpec) -> VortexResult<()> {
        self.channel
            .call("create_streamlet", CallKind::NonIdempotent, || {
                self.inner.create_streamlet(spec.clone())
            })
    }
    fn gc_fragments(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: Vec<u32>,
    ) -> VortexResult<Vec<u32>> {
        self.channel.call("gc_fragments", CallKind::Idempotent, || {
            self.inner.gc_fragments(table, streamlet, ordinals.clone())
        })
    }
    fn finalize_streamlet_ctl(&self, streamlet: StreamletId) -> VortexResult<()> {
        self.channel
            .call("finalize_streamlet_ctl", CallKind::Idempotent, || {
                self.inner.finalize_streamlet_ctl(streamlet)
            })
    }
    fn append(
        &self,
        streamlet: StreamletId,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
    ) -> VortexResult<AppendAck> {
        // THE ambiguous-ack case (§4.2.2): re-executing would duplicate
        // rows, so a lost reply surfaces as retryable unavailability and
        // the writer's rotate-reconcile-dedup path resolves it.
        self.channel.call("append", CallKind::NonIdempotent, || {
            self.inner.append(
                streamlet,
                rows,
                declared_schema_version,
                expected_stream_offset,
                start,
            )
        })
    }
    fn flush(&self, streamlet: StreamletId, flush_row: u64) -> VortexResult<()> {
        self.channel.call("flush", CallKind::Idempotent, || {
            self.inner.flush(streamlet, flush_row)
        })
    }
}
