//! Service traits and channel wrappers: the in-process RPC boundary.
//!
//! [`SmsApi`] is the complete call surface of an [`SmsTask`]; every
//! consumer crate (client, query, optimizer, verify, connector, core)
//! holds an [`SmsHandle`] — normally an [`SmsChannel`] that routes each
//! method through a [`vortex_common::rpc::RpcChannel`], which injects
//! faults and latency, enforces deadlines, and records per-method
//! metrics. [`ServerChannel`] does the same for the Stream Server surface
//! ([`StreamServerApi`]); the SMS registers channel-wrapped server
//! handles, so the handles it embeds in [`StreamHandle`]s route client
//! appends through the same boundary.
//!
//! Each wrapped method declares its [`CallKind`]: re-executable methods
//! (reads, max-merge updates, token-keyed begin/end DML, rotation) are
//! `Idempotent`; methods whose re-execution would duplicate effects
//! (append, table DDL, conversion commits) are `NonIdempotent`, so an
//! ambiguous ack surfaces as retryable unavailability and the caller's
//! §5.4/§5.6 reconciliation decides what really happened.

use std::sync::Arc;

use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{
    ClusterId, FragmentId, ServerId, SmsTaskId, StreamId, StreamletId, TableId,
};
use vortex_common::mask::DeletionMask;
use vortex_common::row::RowSet;
use vortex_common::rpc::{CallKind, RpcChannel};
use vortex_common::schema::Schema;
use vortex_common::truetime::Timestamp;
use vortex_metastore::MetaStore;

use crate::bigmeta::BigMeta;
use crate::heartbeat::{HeartbeatReport, HeartbeatResponse};
use crate::meta::{FragmentMeta, StreamMeta, StreamType, StreamletMeta, TableMeta};
use crate::readset::ReadSet;
use crate::server_ctl::{AppendAck, LoadReport, ServerHandle, StreamServerApi, StreamletSpec};
use crate::sms::{DmlTicket, SmsTask, StreamHandle};

/// The complete SMS service surface, mirroring [`SmsTask`]'s methods.
///
/// Infrastructure accessors (`bigmeta`, `store`, `register_server`, the
/// listing diagnostics) are part of the trait so consumers never need the
/// concrete type, but channel wrappers treat them as local calls — they
/// model in-process state shared with the caller, not RPCs.
pub trait SmsApi: Send + Sync {
    /// This task's id.
    fn task_id(&self) -> SmsTaskId;
    /// The Big Metadata index this task maintains (§6.2). Owned so
    /// channel wrappers can swap the task behind a handle (kill/restart
    /// chaos) without dangling borrows.
    fn bigmeta(&self) -> Arc<BigMeta>;
    /// The shared metastore (used by verification pipelines).
    fn store(&self) -> Arc<MetaStore>;
    /// Registers a Stream Server endpoint.
    fn register_server(&self, server: ServerHandle);
    /// A fresh snapshot timestamp guaranteeing read-after-write.
    fn read_snapshot(&self) -> Timestamp;
    /// Creates a table (§5.2.1 zone assignment included).
    fn create_table(&self, name: &str, schema: Schema) -> VortexResult<TableMeta>;
    /// Creates a BigLake Managed Table (§6.4).
    fn create_blmt_table(
        &self,
        name: &str,
        schema: Schema,
        bucket: &str,
    ) -> VortexResult<TableMeta>;
    /// Fetches a table by id at the latest snapshot.
    fn get_table(&self, table: TableId) -> VortexResult<TableMeta>;
    /// Resolves a table by name.
    fn get_table_by_name(&self, name: &str) -> VortexResult<TableMeta>;
    /// Applies a schema change (additive column).
    fn update_schema(&self, table: TableId, new_schema: Schema) -> VortexResult<TableMeta>;
    /// Swaps primary and secondary clusters (§5.2.1 failover).
    fn fail_over_table(&self, table: TableId) -> VortexResult<TableMeta>;
    /// Creates a Stream plus its first Streamlet (§4.2.1 / §5.2).
    fn create_stream(&self, table: TableId, stype: StreamType) -> VortexResult<StreamHandle>;
    /// Opens the next streamlet of a stream after the current one closed.
    fn rotate_streamlet(&self, table: TableId, stream: StreamId) -> VortexResult<StreamHandle>;
    /// Fetches a stream's metadata.
    fn get_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta>;
    /// Fetches a streamlet's metadata.
    fn get_streamlet(&self, table: TableId, streamlet: StreamletId) -> VortexResult<StreamletMeta>;
    /// Current committed length (rows) of a stream.
    fn stream_length(&self, table: TableId, stream: StreamId) -> VortexResult<u64>;
    /// `FlushStream` (§4.2.3).
    fn flush_stream(&self, table: TableId, stream: StreamId, row_offset: u64) -> VortexResult<()>;
    /// `FinalizeStream` (§4.2.5).
    fn finalize_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta>;
    /// `BatchCommitStreams` (§4.2.4).
    fn batch_commit_streams(&self, table: TableId, streams: &[StreamId])
        -> VortexResult<Timestamp>;
    /// Ingests a Stream Server heartbeat (§5.5).
    fn heartbeat(&self, report: &HeartbeatReport) -> VortexResult<HeartbeatResponse>;
    /// Acknowledges server-side fragment GC (§5.4.3).
    fn ack_gc(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: &[u32],
    ) -> VortexResult<usize>;
    /// The union of WOS and ROS visible at `snapshot` (§7).
    fn list_read_fragments(&self, table: TableId, snapshot: Timestamp) -> VortexResult<ReadSet>;
    /// Runs the reconciliation protocol on a streamlet (§5.6, §7.1).
    fn reconcile_streamlet(
        &self,
        table: TableId,
        streamlet: StreamletId,
    ) -> VortexResult<StreamletMeta>;
    /// Marks the start of a DML statement (§7.3); returns its ticket.
    fn begin_dml(&self, table: TableId) -> VortexResult<DmlTicket>;
    /// Marks the end of the DML statement holding `ticket`.
    fn end_dml(&self, table: TableId, ticket: DmlTicket) -> VortexResult<()>;
    /// Whether any DML statement is currently running on the table.
    fn dml_active(&self, table: TableId) -> bool;
    /// Atomically commits a WOS→ROS conversion or recluster merge (§6.1).
    fn commit_conversion(
        &self,
        table: TableId,
        sources: &[(FragmentId, usize)],
        replacements: Vec<FragmentMeta>,
        yield_to_dml: bool,
    ) -> VortexResult<Timestamp>;
    /// Atomically commits a DML statement's effects (§7.3).
    fn commit_dml(
        &self,
        table: TableId,
        fragment_masks: &[(FragmentId, DeletionMask)],
        tail_masks: &[(StreamletId, DeletionMask)],
        reinserted_streams: &[StreamId],
    ) -> VortexResult<Timestamp>;
    /// Physically deletes doomed fragments past the grace period (§5.4.3).
    fn run_gc(&self, table: TableId) -> VortexResult<usize>;
    /// Drops a table; its data becomes groomer-collectable orphans.
    fn drop_table(&self, table: TableId) -> VortexResult<()>;
    /// The groomer sweep over orphaned entities (§5.4.3).
    fn run_groomer(&self) -> VortexResult<(usize, usize)>;
    /// All fragment metadata of a table at a snapshot (diagnostics).
    fn list_fragments(&self, table: TableId, at: Timestamp) -> Vec<FragmentMeta>;
    /// All streamlet metadata of a table (diagnostics).
    fn list_streamlets(&self, table: TableId) -> Vec<StreamletMeta>;
}

/// A shareable handle to an SMS endpoint.
pub type SmsHandle = Arc<dyn SmsApi>;

impl SmsApi for SmsTask {
    fn task_id(&self) -> SmsTaskId {
        self.task_id()
    }
    fn bigmeta(&self) -> Arc<BigMeta> {
        self.bigmeta_arc()
    }
    fn store(&self) -> Arc<MetaStore> {
        Arc::clone(self.store())
    }
    fn register_server(&self, server: ServerHandle) {
        self.register_server(server)
    }
    fn read_snapshot(&self) -> Timestamp {
        self.read_snapshot()
    }
    fn create_table(&self, name: &str, schema: Schema) -> VortexResult<TableMeta> {
        self.create_table(name, schema)
    }
    fn create_blmt_table(
        &self,
        name: &str,
        schema: Schema,
        bucket: &str,
    ) -> VortexResult<TableMeta> {
        self.create_blmt_table(name, schema, bucket)
    }
    fn get_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.get_table(table)
    }
    fn get_table_by_name(&self, name: &str) -> VortexResult<TableMeta> {
        self.get_table_by_name(name)
    }
    fn update_schema(&self, table: TableId, new_schema: Schema) -> VortexResult<TableMeta> {
        self.update_schema(table, new_schema)
    }
    fn fail_over_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.fail_over_table(table)
    }
    fn create_stream(&self, table: TableId, stype: StreamType) -> VortexResult<StreamHandle> {
        self.create_stream(table, stype)
    }
    fn rotate_streamlet(&self, table: TableId, stream: StreamId) -> VortexResult<StreamHandle> {
        self.rotate_streamlet(table, stream)
    }
    fn get_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.get_stream(table, stream)
    }
    fn get_streamlet(&self, table: TableId, streamlet: StreamletId) -> VortexResult<StreamletMeta> {
        self.get_streamlet(table, streamlet)
    }
    fn stream_length(&self, table: TableId, stream: StreamId) -> VortexResult<u64> {
        self.stream_length(table, stream)
    }
    fn flush_stream(&self, table: TableId, stream: StreamId, row_offset: u64) -> VortexResult<()> {
        self.flush_stream(table, stream, row_offset)
    }
    fn finalize_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.finalize_stream(table, stream)
    }
    fn batch_commit_streams(
        &self,
        table: TableId,
        streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        self.batch_commit_streams(table, streams)
    }
    fn heartbeat(&self, report: &HeartbeatReport) -> VortexResult<HeartbeatResponse> {
        self.heartbeat(report)
    }
    fn ack_gc(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: &[u32],
    ) -> VortexResult<usize> {
        self.ack_gc(table, streamlet, ordinals)
    }
    fn list_read_fragments(&self, table: TableId, snapshot: Timestamp) -> VortexResult<ReadSet> {
        self.list_read_fragments(table, snapshot)
    }
    fn reconcile_streamlet(
        &self,
        table: TableId,
        streamlet: StreamletId,
    ) -> VortexResult<StreamletMeta> {
        self.reconcile_streamlet(table, streamlet)
    }
    fn begin_dml(&self, table: TableId) -> VortexResult<DmlTicket> {
        self.begin_dml(table)
    }
    fn end_dml(&self, table: TableId, ticket: DmlTicket) -> VortexResult<()> {
        self.end_dml(table, ticket)
    }
    fn dml_active(&self, table: TableId) -> bool {
        self.dml_active(table)
    }
    fn commit_conversion(
        &self,
        table: TableId,
        sources: &[(FragmentId, usize)],
        replacements: Vec<FragmentMeta>,
        yield_to_dml: bool,
    ) -> VortexResult<Timestamp> {
        self.commit_conversion(table, sources, replacements, yield_to_dml)
    }
    fn commit_dml(
        &self,
        table: TableId,
        fragment_masks: &[(FragmentId, DeletionMask)],
        tail_masks: &[(StreamletId, DeletionMask)],
        reinserted_streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        self.commit_dml(table, fragment_masks, tail_masks, reinserted_streams)
    }
    fn run_gc(&self, table: TableId) -> VortexResult<usize> {
        self.run_gc(table)
    }
    fn drop_table(&self, table: TableId) -> VortexResult<()> {
        self.drop_table(table)
    }
    fn run_groomer(&self) -> VortexResult<(usize, usize)> {
        self.run_groomer()
    }
    fn list_fragments(&self, table: TableId, at: Timestamp) -> Vec<FragmentMeta> {
        self.list_fragments(table, at)
    }
    fn list_streamlets(&self, table: TableId) -> Vec<StreamletMeta> {
        self.list_streamlets(table)
    }
}

/// An [`SmsHandle`] whose every service call crosses an [`RpcChannel`].
///
/// The channel is also the task's *process boundary*: the wrapped task is
/// swappable (kill/restart chaos replaces a dead instance with one
/// rebuilt from the metastore), and a [`VortexError::SimulatedCrash`]
/// surfacing from any service call marks the instance dead — every
/// subsequent call fails with retryable unavailability until
/// [`SmsChannel::restart`] installs a replacement. Callers therefore keep
/// their handles across restarts, exactly like clients keep a service
/// address across task reschedules (§5.2.1).
pub struct SmsChannel {
    inner: parking_lot::RwLock<Arc<SmsTask>>,
    channel: Arc<RpcChannel>,
    dead: std::sync::atomic::AtomicBool,
}

impl SmsChannel {
    /// Wraps an SMS task behind a channel.
    pub fn new(inner: Arc<SmsTask>, channel: Arc<RpcChannel>) -> Arc<Self> {
        Arc::new(SmsChannel {
            inner: parking_lot::RwLock::new(inner),
            channel,
            dead: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The channel carrying this handle's traffic.
    pub fn channel(&self) -> &Arc<RpcChannel> {
        &self.channel
    }

    /// The wrapped task (rig plumbing; service calls go through the
    /// trait).
    pub fn task(&self) -> Arc<SmsTask> {
        Arc::clone(&self.inner.read())
    }

    /// Marks the instance dead: calls fail with retryable unavailability
    /// until [`SmsChannel::restart`].
    pub fn kill(&self) {
        self.dead.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether the wrapped instance is currently dead.
    pub fn is_dead(&self) -> bool {
        self.dead.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Installs a replacement task (rebuilt from durable state) and
    /// brings the endpoint back up.
    pub fn restart(&self, task: Arc<SmsTask>) {
        *self.inner.write() = task;
        self.dead.store(false, std::sync::atomic::Ordering::SeqCst);
    }

    /// Routes one service call, enforcing the process boundary: dead
    /// instances refuse, and a crash point firing inside the call kills
    /// the instance and surfaces as retryable unavailability (callers
    /// handle it like any other task death).
    fn service<T>(
        &self,
        method: &'static str,
        kind: CallKind,
        f: impl FnMut(&SmsTask) -> VortexResult<T>,
    ) -> VortexResult<T> {
        let mut f = f;
        if self.is_dead() {
            return Err(VortexError::Unavailable(format!(
                "sms task {} is down",
                self.task().task_id()
            )));
        }
        let task = self.task();
        match self.channel.call(method, kind, || f(&task)) {
            Err(VortexError::SimulatedCrash(point)) => {
                self.kill();
                Err(VortexError::Unavailable(format!(
                    "sms task {} died at crash point '{point}'",
                    task.task_id()
                )))
            }
            other => other,
        }
    }
}

impl std::fmt::Debug for SmsChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmsChannel")
            .field("task", &self.task().task_id())
            .field("dead", &self.is_dead())
            .finish_non_exhaustive()
    }
}

impl SmsApi for SmsChannel {
    // Shared in-process state, not RPCs: served locally (a dead task's
    // durable metadata remains inspectable, like the metastore itself).
    fn task_id(&self) -> SmsTaskId {
        self.task().task_id()
    }
    fn bigmeta(&self) -> Arc<BigMeta> {
        self.task().bigmeta_arc()
    }
    fn store(&self) -> Arc<MetaStore> {
        Arc::clone(self.task().store())
    }
    fn register_server(&self, server: ServerHandle) {
        self.task().register_server(server)
    }
    fn read_snapshot(&self) -> Timestamp {
        self.task().read_snapshot()
    }
    fn dml_active(&self, table: TableId) -> bool {
        self.task().dml_active(table)
    }
    fn list_fragments(&self, table: TableId, at: Timestamp) -> Vec<FragmentMeta> {
        self.task().list_fragments(table, at)
    }
    fn list_streamlets(&self, table: TableId) -> Vec<StreamletMeta> {
        self.task().list_streamlets(table)
    }

    // DDL and conversion commits: re-execution would duplicate effects.
    fn create_table(&self, name: &str, schema: Schema) -> VortexResult<TableMeta> {
        self.service("create_table", CallKind::NonIdempotent, |t| {
            t.create_table(name, schema.clone())
        })
    }
    fn create_blmt_table(
        &self,
        name: &str,
        schema: Schema,
        bucket: &str,
    ) -> VortexResult<TableMeta> {
        self.service("create_blmt_table", CallKind::NonIdempotent, |t| {
            t.create_blmt_table(name, schema.clone(), bucket)
        })
    }
    fn update_schema(&self, table: TableId, new_schema: Schema) -> VortexResult<TableMeta> {
        self.service("update_schema", CallKind::NonIdempotent, |t| {
            t.update_schema(table, new_schema.clone())
        })
    }
    fn drop_table(&self, table: TableId) -> VortexResult<()> {
        self.service("drop_table", CallKind::NonIdempotent, |t| {
            t.drop_table(table)
        })
    }
    fn commit_conversion(
        &self,
        table: TableId,
        sources: &[(FragmentId, usize)],
        replacements: Vec<FragmentMeta>,
        yield_to_dml: bool,
    ) -> VortexResult<Timestamp> {
        self.service("commit_conversion", CallKind::NonIdempotent, |t| {
            t.commit_conversion(table, sources, replacements.clone(), yield_to_dml)
        })
    }

    // Reads, max-merge mutations, and token-keyed calls: safe to
    // re-execute after an ambiguous ack.
    fn get_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.service("get_table", CallKind::Idempotent, |t| t.get_table(table))
    }
    fn get_table_by_name(&self, name: &str) -> VortexResult<TableMeta> {
        self.service("get_table_by_name", CallKind::Idempotent, |t| {
            t.get_table_by_name(name)
        })
    }
    fn fail_over_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.service("fail_over_table", CallKind::Idempotent, |t| {
            t.fail_over_table(table)
        })
    }
    fn create_stream(&self, table: TableId, stype: StreamType) -> VortexResult<StreamHandle> {
        // Re-execution strands an empty stream, which the groomer reaps;
        // the returned handle is the only one the caller writes to.
        self.service("create_stream", CallKind::Idempotent, |t| {
            t.create_stream(table, stype)
        })
    }
    fn rotate_streamlet(&self, table: TableId, stream: StreamId) -> VortexResult<StreamHandle> {
        self.service("rotate_streamlet", CallKind::Idempotent, |t| {
            t.rotate_streamlet(table, stream)
        })
    }
    fn get_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.service("get_stream", CallKind::Idempotent, |t| {
            t.get_stream(table, stream)
        })
    }
    fn get_streamlet(&self, table: TableId, streamlet: StreamletId) -> VortexResult<StreamletMeta> {
        self.service("get_streamlet", CallKind::Idempotent, |t| {
            t.get_streamlet(table, streamlet)
        })
    }
    fn stream_length(&self, table: TableId, stream: StreamId) -> VortexResult<u64> {
        self.service("stream_length", CallKind::Idempotent, |t| {
            t.stream_length(table, stream)
        })
    }
    fn flush_stream(&self, table: TableId, stream: StreamId, row_offset: u64) -> VortexResult<()> {
        self.service("flush_stream", CallKind::Idempotent, |t| {
            t.flush_stream(table, stream, row_offset)
        })
    }
    fn finalize_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.service("finalize_stream", CallKind::Idempotent, |t| {
            t.finalize_stream(table, stream)
        })
    }
    fn batch_commit_streams(
        &self,
        table: TableId,
        streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        self.service("batch_commit_streams", CallKind::Idempotent, |t| {
            t.batch_commit_streams(table, streams)
        })
    }
    fn heartbeat(&self, report: &HeartbeatReport) -> VortexResult<HeartbeatResponse> {
        self.service("heartbeat", CallKind::Idempotent, |t| t.heartbeat(report))
    }
    fn ack_gc(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: &[u32],
    ) -> VortexResult<usize> {
        self.service("ack_gc", CallKind::Idempotent, |t| {
            t.ack_gc(table, streamlet, ordinals)
        })
    }
    fn list_read_fragments(&self, table: TableId, snapshot: Timestamp) -> VortexResult<ReadSet> {
        self.service("list_read_fragments", CallKind::Idempotent, |t| {
            t.list_read_fragments(table, snapshot)
        })
    }
    fn reconcile_streamlet(
        &self,
        table: TableId,
        streamlet: StreamletId,
    ) -> VortexResult<StreamletMeta> {
        self.service("reconcile_streamlet", CallKind::Idempotent, |t| {
            t.reconcile_streamlet(table, streamlet)
        })
    }
    fn begin_dml(&self, table: TableId) -> VortexResult<DmlTicket> {
        // Token minted OUTSIDE the retry loop: every attempt writes the
        // same marker key, so an ambiguous ack cannot leak a lock.
        let token = self.task().mint_dml_token();
        self.service("begin_dml", CallKind::Idempotent, |t| {
            t.begin_dml_with(table, token)
        })
    }
    fn end_dml(&self, table: TableId, ticket: DmlTicket) -> VortexResult<()> {
        self.service("end_dml", CallKind::Idempotent, |t| {
            t.end_dml(table, ticket)
        })
    }
    fn commit_dml(
        &self,
        table: TableId,
        fragment_masks: &[(FragmentId, DeletionMask)],
        tail_masks: &[(StreamletId, DeletionMask)],
        reinserted_streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        // Re-execution re-pushes the same masks at a later timestamp —
        // a union-idempotent effect — and overwrites `committed_at`
        // MVCC-safely, so the ledger a reader sees is unchanged.
        self.service("commit_dml", CallKind::Idempotent, |t| {
            t.commit_dml(table, fragment_masks, tail_masks, reinserted_streams)
        })
    }
    fn run_gc(&self, table: TableId) -> VortexResult<usize> {
        self.service("run_gc", CallKind::Idempotent, |t| t.run_gc(table))
    }
    fn run_groomer(&self) -> VortexResult<(usize, usize)> {
        self.service("run_groomer", CallKind::Idempotent, |t| t.run_groomer())
    }
}

/// A [`ServerHandle`] whose data-plane and control calls cross an
/// [`RpcChannel`]. Placement/introspection accessors stay local.
///
/// Like [`SmsChannel`], this is the server's *process boundary*: the
/// wrapped instance is swappable (kill/restart chaos replaces a dead
/// server with one recovered from its WAL + checkpoint), and a
/// [`VortexError::SimulatedCrash`] surfacing from any call marks the
/// instance dead. A dead server answers no RPCs, reports itself
/// quarantined so placement skips it, and produces empty heartbeats —
/// until [`ServerChannel::restart`] installs the recovered instance.
pub struct ServerChannel {
    inner: parking_lot::RwLock<ServerHandle>,
    channel: Arc<RpcChannel>,
    dead: std::sync::atomic::AtomicBool,
}

impl ServerChannel {
    /// Wraps a server endpoint behind a channel.
    pub fn new(inner: ServerHandle, channel: Arc<RpcChannel>) -> Arc<Self> {
        Arc::new(ServerChannel {
            inner: parking_lot::RwLock::new(inner),
            channel,
            dead: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Wraps and erases to a [`ServerHandle`] in one step.
    pub fn wrap(inner: ServerHandle, channel: Arc<RpcChannel>) -> ServerHandle {
        Self::new(inner, channel)
    }

    /// The channel carrying this handle's traffic.
    pub fn channel(&self) -> &Arc<RpcChannel> {
        &self.channel
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> ServerHandle {
        Arc::clone(&self.inner.read())
    }

    /// Marks the instance dead: RPCs fail with retryable unavailability,
    /// placement sees a quarantined load, heartbeats go silent.
    pub fn kill(&self) {
        self.dead.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether the wrapped instance is currently dead.
    pub fn is_dead(&self) -> bool {
        self.dead.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Installs a replacement instance (recovered from durable state)
    /// and brings the endpoint back up.
    pub fn restart(&self, inner: ServerHandle) {
        *self.inner.write() = inner;
        self.dead.store(false, std::sync::atomic::Ordering::SeqCst);
    }

    /// Routes one service call across the process boundary (same
    /// contract as `SmsChannel::service`).
    fn service<T>(
        &self,
        method: &'static str,
        kind: CallKind,
        f: impl FnMut(&dyn StreamServerApi) -> VortexResult<T>,
    ) -> VortexResult<T> {
        self.service_sized(method, kind, 0, f)
    }

    /// [`ServerChannel::service`] with a declared payload size, charged
    /// against admission byte quotas (`append` is the only data-plane
    /// bulk mover on this hop).
    fn service_sized<T>(
        &self,
        method: &'static str,
        kind: CallKind,
        payload_bytes: u64,
        f: impl FnMut(&dyn StreamServerApi) -> VortexResult<T>,
    ) -> VortexResult<T> {
        let mut f = f;
        if self.is_dead() {
            return Err(VortexError::Unavailable(format!(
                "stream server {} is down",
                self.endpoint().server_id()
            )));
        }
        let inner = self.endpoint();
        match self
            .channel
            .call_sized(method, kind, payload_bytes, || f(inner.as_ref()))
        {
            Err(VortexError::SimulatedCrash(point)) => {
                self.kill();
                Err(VortexError::Unavailable(format!(
                    "stream server {} died at crash point '{point}'",
                    inner.server_id()
                )))
            }
            other => other,
        }
    }
}

impl StreamServerApi for ServerChannel {
    fn server_id(&self) -> ServerId {
        self.endpoint().server_id()
    }
    fn cluster(&self) -> ClusterId {
        self.endpoint().cluster()
    }
    fn load(&self) -> LoadReport {
        if self.is_dead() {
            // Placement must skip a dead server exactly like a
            // quarantined one (§5.5: "health characteristics").
            return LoadReport {
                quarantined: true,
                ..LoadReport::default()
            };
        }
        self.endpoint().load()
    }
    fn streamlet_rows(&self, streamlet: StreamletId) -> Option<u64> {
        if self.is_dead() {
            return None;
        }
        self.endpoint().streamlet_rows(streamlet)
    }
    fn notify_schema_version(&self, table: TableId, version: u32) {
        if self.is_dead() {
            return; // dead processes hear nothing
        }
        self.endpoint().notify_schema_version(table, version)
    }
    fn revoke_streamlet(&self, streamlet: StreamletId) {
        if self.is_dead() {
            return; // recovered streamlets come back revoked anyway
        }
        self.endpoint().revoke_streamlet(streamlet)
    }
    fn tick(&self) -> usize {
        if self.is_dead() {
            return 0;
        }
        self.endpoint().tick()
    }
    fn build_heartbeat(&self, full_state: bool) -> HeartbeatReport {
        let inner = self.endpoint();
        if self.is_dead() {
            // A dead process sends no heartbeats; an empty quarantined
            // report keeps drivers that poll unconditionally harmless.
            return HeartbeatReport {
                server: inner.server_id(),
                load: LoadReport {
                    quarantined: true,
                    ..LoadReport::default()
                },
                streamlets: Vec::new(),
                full_state,
            };
        }
        inner.build_heartbeat(full_state)
    }
    fn apply_heartbeat_response(
        &self,
        resp: &HeartbeatResponse,
        orphan_age_micros: u64,
    ) -> VortexResult<Vec<(TableId, StreamletId, Vec<u32>)>> {
        if self.is_dead() {
            return Err(VortexError::Unavailable(format!(
                "stream server {} is down",
                self.endpoint().server_id()
            )));
        }
        let inner = self.endpoint();
        match inner.apply_heartbeat_response(resp, orphan_age_micros) {
            Err(VortexError::SimulatedCrash(point)) => {
                self.kill();
                Err(VortexError::Unavailable(format!(
                    "stream server {} died at crash point '{point}'",
                    inner.server_id()
                )))
            }
            other => other,
        }
    }
    fn reset_heartbeat_window(&self) {
        if self.is_dead() {
            return;
        }
        self.endpoint().reset_heartbeat_window()
    }
    fn set_quarantined(&self, quarantined: bool) {
        if self.is_dead() {
            return;
        }
        self.endpoint().set_quarantined(quarantined)
    }

    fn create_streamlet(&self, spec: StreamletSpec) -> VortexResult<()> {
        self.service("create_streamlet", CallKind::NonIdempotent, |s| {
            s.create_streamlet(spec.clone())
        })
    }
    fn gc_fragments(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: Vec<u32>,
    ) -> VortexResult<Vec<u32>> {
        self.service("gc_fragments", CallKind::Idempotent, |s| {
            s.gc_fragments(table, streamlet, ordinals.clone())
        })
    }
    fn finalize_streamlet_ctl(&self, streamlet: StreamletId) -> VortexResult<()> {
        self.service("finalize_streamlet_ctl", CallKind::Idempotent, |s| {
            s.finalize_streamlet_ctl(streamlet)
        })
    }
    fn append(
        &self,
        streamlet: StreamletId,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
    ) -> VortexResult<AppendAck> {
        // THE ambiguous-ack case (§4.2.2): re-executing would duplicate
        // rows, so a lost reply surfaces as retryable unavailability and
        // the writer's rotate-reconcile-dedup path resolves it. The row
        // payload size is declared so admission byte quotas see volume.
        self.service_sized(
            "append",
            CallKind::NonIdempotent,
            rows.approx_bytes() as u64,
            |s| {
                s.append(
                    streamlet,
                    rows,
                    declared_schema_version,
                    expected_stream_offset,
                    start,
                )
            },
        )
    }
    fn flush(&self, streamlet: StreamletId, flush_row: u64) -> VortexResult<()> {
        self.service("flush", CallKind::Idempotent, |s| {
            s.flush(streamlet, flush_row)
        })
    }
}
