//! Big Metadata: the columnar index over fragment column properties
//! (§6.2, and the Big Metadata paper the authors cite as \[8\]).
//!
//! "As the storage optimizer moves data between the layers in the LSM
//! tree, BigQuery's highly scalable metadata management system, called
//! Big Metadata, manages fine grained column properties for accelerating
//! query performance. In steady state, there is a tail of the Fragment
//! and Streamlet metadata that may have not yet been indexed ... we
//! continuously compact the metadata entries ... by maintaining a
//! watermark which is the timestamp of the oldest live Fragment that has
//! not yet been optimized."
//!
//! Here the index is an in-memory per-table map from fragment id to its
//! column properties, fed by optimizer conversion commits. Fragments not
//! in the index (fresh WOS) form the **tail**; its length is an
//! observable metric (benchmarked in A3), and [`BigMeta::compact`]
//! advances the watermark and drops entries for deleted fragments.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use vortex_common::ids::{FragmentId, TableId};
use vortex_common::row::Value;
use vortex_common::stats::ColumnStats;
use vortex_common::truetime::Timestamp;

use crate::meta::FragmentMeta;

/// Indexed column properties of one (optimized) fragment.
#[derive(Debug, Clone)]
pub struct IndexedFragment {
    /// The fragment.
    pub fragment: FragmentId,
    /// When it became visible.
    pub created_at: Timestamp,
    /// When it was deleted (MAX while live).
    pub deleted_at: Timestamp,
    /// Column properties.
    pub stats: Vec<(String, ColumnStats)>,
    /// Partition key if the block is partition-split.
    pub partition_key: Option<i64>,
}

#[derive(Debug, Default)]
struct TableIndex {
    fragments: HashMap<FragmentId, IndexedFragment>,
    /// Timestamp of the oldest live fragment not yet optimized — the
    /// compaction watermark (§6.2).
    watermark: Timestamp,
    /// How many conversions fed this index (diagnostics).
    conversions: u64,
}

/// The Big Metadata index, shared by an SMS task.
#[derive(Debug, Default)]
pub struct BigMeta {
    tables: RwLock<HashMap<TableId, TableIndex>>,
}

impl BigMeta {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shareable handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Indexes freshly committed (ROS) fragments.
    pub fn index_fragments(&self, table: TableId, metas: &[FragmentMeta]) {
        let mut tables = self.tables.write();
        let idx = tables.entry(table).or_default();
        for m in metas {
            idx.fragments.insert(
                m.fragment,
                IndexedFragment {
                    fragment: m.fragment,
                    created_at: m.created_at,
                    deleted_at: m.deleted_at,
                    stats: m.stats.clone(),
                    partition_key: m.partition_key,
                },
            );
        }
    }

    /// Notes that source fragments were converted away (they leave the
    /// index at the next compaction).
    pub fn note_conversion(&self, table: TableId, sources: &[FragmentId]) {
        let mut tables = self.tables.write();
        let idx = tables.entry(table).or_default();
        idx.conversions += 1;
        for s in sources {
            if let Some(f) = idx.fragments.get_mut(s) {
                f.deleted_at = Timestamp::MIN; // tombstone for compaction
            }
        }
    }

    /// Number of indexed fragments for a table.
    pub fn indexed_count(&self, table: TableId) -> usize {
        self.tables
            .read()
            .get(&table)
            .map(|t| t.fragments.len())
            .unwrap_or(0)
    }

    /// The tail: live fragments of the table (from the metastore view the
    /// caller supplies) that are *not* indexed — scanning these adds
    /// latency to query processing (§6.2).
    pub fn tail_count(&self, table: TableId, live_fragments: &[FragmentMeta]) -> usize {
        let tables = self.tables.read();
        let idx = tables.get(&table);
        live_fragments
            .iter()
            .filter(|f| {
                idx.map(|i| !i.fragments.contains_key(&f.fragment))
                    .unwrap_or(true)
            })
            .count()
    }

    /// Advances the watermark and drops tombstoned entries. Returns how
    /// many entries were compacted away.
    pub fn compact(&self, table: TableId, watermark: Timestamp) -> usize {
        let mut tables = self.tables.write();
        let Some(idx) = tables.get_mut(&table) else {
            return 0;
        };
        let before = idx.fragments.len();
        idx.fragments
            .retain(|_, f| f.deleted_at > watermark || f.deleted_at == Timestamp::MAX);
        idx.watermark = idx.watermark.max(watermark);
        before - idx.fragments.len()
    }

    /// The current compaction watermark for a table.
    pub fn watermark(&self, table: TableId) -> Timestamp {
        self.tables
            .read()
            .get(&table)
            .map(|t| t.watermark)
            .unwrap_or(Timestamp::MIN)
    }

    /// Point-prune against the index: fragments whose stats could match
    /// `col == v`. Fragments without stats for the column are kept
    /// (cannot be pruned safely).
    pub fn prune_point(&self, table: TableId, col: &str, v: &Value) -> Option<Vec<FragmentId>> {
        let tables = self.tables.read();
        let idx = tables.get(&table)?;
        Some(
            idx.fragments
                .values()
                .filter(|f| f.deleted_at == Timestamp::MAX)
                .filter(|f| {
                    f.stats
                        .iter()
                        .find(|(n, _)| n == col)
                        .map(|(_, s)| s.may_contain_point(v))
                        .unwrap_or(true)
                })
                .map(|f| f.fragment)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{FragmentKind, FragmentState};
    use vortex_common::ids::{ClusterId, StreamletId};

    fn frag(id: u64, min: i64, max: i64) -> FragmentMeta {
        let mut s = ColumnStats::new();
        s.observe(&Value::Int64(min));
        s.observe(&Value::Int64(max));
        FragmentMeta {
            fragment: FragmentId::from_raw(id),
            table: TableId::from_raw(1),
            streamlet: StreamletId::from_raw(0),
            kind: FragmentKind::Ros,
            ordinal: 0,
            first_row: 0,
            row_count: 10,
            committed_size: 100,
            state: FragmentState::Finalized,
            created_at: Timestamp(10),
            deleted_at: Timestamp::MAX,
            clusters: [ClusterId::from_raw(0), ClusterId::from_raw(1)],
            path: format!("ros/b{id}"),
            stats: vec![("k".into(), s)],
            masks: vec![],
            partition_key: None,
            level: 1,
        }
    }

    #[test]
    fn index_and_prune() {
        let bm = BigMeta::new();
        let t = TableId::from_raw(1);
        bm.index_fragments(t, &[frag(1, 0, 10), frag(2, 20, 30), frag(3, 40, 50)]);
        assert_eq!(bm.indexed_count(t), 3);
        let hits = bm.prune_point(t, "k", &Value::Int64(25)).unwrap();
        assert_eq!(hits, vec![FragmentId::from_raw(2)]);
        let misses = bm.prune_point(t, "k", &Value::Int64(99)).unwrap();
        assert!(misses.is_empty());
        // Unknown column: nothing can be pruned.
        let all = bm.prune_point(t, "other", &Value::Int64(1)).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn tail_counts_unindexed_live_fragments() {
        let bm = BigMeta::new();
        let t = TableId::from_raw(1);
        bm.index_fragments(t, &[frag(1, 0, 10)]);
        let live = vec![frag(1, 0, 10), frag(2, 20, 30), frag(3, 40, 50)];
        assert_eq!(bm.tail_count(t, &live), 2);
        // Unknown table: everything is tail.
        assert_eq!(bm.tail_count(TableId::from_raw(9), &live), 3);
    }

    #[test]
    fn conversion_tombstones_then_compaction_drops() {
        let bm = BigMeta::new();
        let t = TableId::from_raw(1);
        bm.index_fragments(t, &[frag(1, 0, 10), frag(2, 20, 30)]);
        bm.note_conversion(t, &[FragmentId::from_raw(1)]);
        assert_eq!(bm.indexed_count(t), 2, "tombstoned, not yet compacted");
        let dropped = bm.compact(t, Timestamp(100));
        assert_eq!(dropped, 1);
        assert_eq!(bm.indexed_count(t), 1);
        assert_eq!(bm.watermark(t), Timestamp(100));
        // Pruning no longer returns the dropped fragment.
        let hits = bm.prune_point(t, "k", &Value::Int64(5)).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn compact_on_unknown_table_is_zero() {
        let bm = BigMeta::new();
        assert_eq!(bm.compact(TableId::from_raw(7), Timestamp(1)), 0);
        assert_eq!(bm.watermark(TableId::from_raw(7)), Timestamp::MIN);
    }
}
