//! Read-set metadata: what a processing engine gets when it asks the SMS
//! for "the partitioned metadata for the table as of a specific snapshot
//! read time" (§7).
//!
//! The answer is "the union of the data in WOS and ROS": the fragments
//! the SMS knows about, plus a spec per unfinalized streamlet telling the
//! reader where to look for the **tail** — data appended after the last
//! heartbeat, discoverable only by reading the log files themselves
//! (§7.1).

use vortex_common::ids::{ClusterId, StreamId, StreamletId};
use vortex_common::mask::DeletionMask;
use vortex_common::schema::Schema;
use vortex_common::truetime::Timestamp;

use crate::meta::{FragmentMeta, StreamType};

/// Visibility constraints a fragment's rows must additionally satisfy
/// (beyond the fragment-level `[created_at, deleted_at)` interval).
#[derive(Debug, Clone)]
pub struct RowVisibility {
    /// PENDING streams: rows only visible if the snapshot is at or past
    /// the stream's batch-commit time. `Timestamp::MIN` otherwise.
    pub visible_from: Timestamp,
    /// BUFFERED streams: only streamlet-relative rows below this offset
    /// are visible (stream flush watermark mapped into the streamlet).
    /// `None` = no flush limit (UNBUFFERED/PENDING).
    pub flush_limit: Option<u64>,
}

impl RowVisibility {
    /// Unconstrained visibility (UNBUFFERED streams).
    pub fn unconstrained() -> Self {
        RowVisibility {
            visible_from: Timestamp::MIN,
            flush_limit: None,
        }
    }
}

/// One fragment the reader must scan.
#[derive(Debug, Clone)]
pub struct FragmentReadSpec {
    /// The fragment's metadata (path, clusters, sizes, kind).
    pub meta: FragmentMeta,
    /// Effective deletion mask at the snapshot (fragment-relative rows).
    pub mask: DeletionMask,
    /// Stream-level visibility constraints.
    pub visibility: RowVisibility,
    /// Owning stream (WOS fragments; zero raw id for ROS blocks, whose
    /// rows carry their own provenance).
    pub stream: StreamId,
    /// Stream-level row offset where the owning streamlet begins, so a
    /// WOS row's stream offset is `streamlet_first_stream_row +
    /// fragment.first_row + index` (exactly-once verification, §6.3).
    pub streamlet_first_stream_row: u64,
}

/// One unfinalized streamlet whose tail may hold rows the SMS hasn't
/// heard about yet.
#[derive(Debug, Clone)]
pub struct TailReadSpec {
    /// The streamlet.
    pub streamlet: StreamletId,
    /// Its stream (for diagnostics / verification).
    pub stream: StreamId,
    /// Stream type driving visibility rules.
    pub stream_type: StreamType,
    /// Replica clusters holding the log files.
    pub clusters: [ClusterId; 2],
    /// First fragment ordinal the SMS has **no** metadata for: the reader
    /// probes log files from here (§7: "reads the ... portions of the
    /// unfinalized Streamlets that are not present in the list of
    /// Fragments").
    pub from_ordinal: u32,
    /// Streamlet-relative row offset where known fragments end; tail rows
    /// at or past this offset belong to the tail read.
    pub from_row: u64,
    /// Colossus path prefix of the streamlet's log files.
    pub path_prefix: String,
    /// Effective streamlet-level deletion mask at the snapshot
    /// (streamlet-relative rows, §7.3 tail deletes).
    pub mask: DeletionMask,
    /// Stream-level visibility constraints.
    pub visibility: RowVisibility,
    /// Ownership epoch (reconciliation bumps it).
    pub epoch: u64,
    /// Stream-level row offset where the streamlet begins.
    pub first_stream_row: u64,
    /// Committed streamlet-relative row end the SMS knew at the snapshot
    /// (heartbeat floor). A tail probe recovering fewer committed rows
    /// has read log files already collected past the snapshot's horizon
    /// — the read must fail as "snapshot too old" rather than silently
    /// under-count.
    pub expected_rows: u64,
}

/// Everything a query engine needs to read a table at a snapshot.
#[derive(Debug, Clone)]
pub struct ReadSet {
    /// The snapshot timestamp this read set is valid for.
    pub snapshot: Timestamp,
    /// Schema at the snapshot.
    pub schema: Schema,
    /// Fragments to scan (WOS and ROS, already visibility-filtered at the
    /// fragment level).
    pub fragments: Vec<FragmentReadSpec>,
    /// Unfinalized streamlet tails to probe.
    pub tails: Vec<TailReadSpec>,
}

impl ReadSet {
    /// Total committed rows the SMS knows about (pre-mask); the tail may
    /// add more.
    pub fn known_rows(&self) -> u64 {
        self.fragments.iter().map(|f| f.meta.row_count).sum()
    }
}
