//! Slicer-style assignment of tables to SMS tasks (§5.2.1).
//!
//! "Assignment of tables to SMS tasks is done by Slicer and is eventually
//! consistent — this means that there can be rare times when two SMS
//! tasks think that they both manage the table's metadata. Vortex is
//! resilient to such inconsistency ... achieved by the ACID semantics
//! offered by the Spanner transactions."
//!
//! This module reproduces exactly that hazard: assignment is a consistent
//! hash over the live task set, each task consults its own possibly-stale
//! *view* of the assignment map, and tests can freeze a task's view to
//! create double-ownership windows. Nothing here is a correctness
//! boundary — SMS operations stay correct because every mutation runs as
//! a serializable metastore transaction.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use vortex_common::ids::{SmsTaskId, TableId};

/// The authoritative (but asynchronously propagated) assignment map.
#[derive(Debug, Default)]
pub struct Slicer {
    inner: RwLock<SlicerState>,
}

#[derive(Debug, Default)]
struct SlicerState {
    tasks: Vec<SmsTaskId>,
    generation: u64,
    /// Explicit overrides (load-based moves).
    overrides: HashMap<TableId, SmsTaskId>,
}

impl Slicer {
    /// A slicer over the given task set.
    pub fn new(tasks: Vec<SmsTaskId>) -> Arc<Self> {
        Arc::new(Self {
            inner: RwLock::new(SlicerState {
                tasks,
                generation: 1,
                overrides: HashMap::new(),
            }),
        })
    }

    /// Current assignment of a table.
    pub fn assignment(&self, table: TableId) -> Option<SmsTaskId> {
        let st = self.inner.read();
        if let Some(t) = st.overrides.get(&table) {
            return Some(*t);
        }
        if st.tasks.is_empty() {
            return None;
        }
        // Multiplicative hash keeps assignment stable across lookups.
        let h = table.raw().wrapping_mul(0x9E3779B97F4A7C15);
        Some(st.tasks[(h % st.tasks.len() as u64) as usize])
    }

    /// Moves a table to a specific task (load redistribution: "Slicer
    /// redistributes the load by assigning the table to a new SMS task").
    pub fn reassign(&self, table: TableId, to: SmsTaskId) {
        let mut st = self.inner.write();
        st.overrides.insert(table, to);
        st.generation += 1;
    }

    /// Replaces the task set (tasks joining/leaving the pool).
    pub fn set_tasks(&self, tasks: Vec<SmsTaskId>) {
        let mut st = self.inner.write();
        st.tasks = tasks;
        st.generation += 1;
    }

    /// Monotone generation counter: views compare against it to detect
    /// staleness.
    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }
}

/// One SMS task's (possibly stale) view of the assignment map.
///
/// A refreshed view answers from the live slicer; a frozen view answers
/// from the snapshot it captured — that is the eventual-consistency
/// window in which two tasks both claim a table.
#[derive(Debug)]
pub struct SlicerView {
    slicer: Arc<Slicer>,
    me: SmsTaskId,
    frozen: RwLock<Option<HashMap<TableId, Option<SmsTaskId>>>>,
}

impl SlicerView {
    /// A live view for task `me`.
    pub fn new(slicer: Arc<Slicer>, me: SmsTaskId) -> Self {
        Self {
            slicer,
            me,
            frozen: RwLock::new(None),
        }
    }

    /// Whether this task believes it owns `table`.
    pub fn owns(&self, table: TableId) -> bool {
        if let Some(snapshot) = self.frozen.read().as_ref() {
            if let Some(owner) = snapshot.get(&table) {
                return *owner == Some(self.me);
            }
            // Not in the snapshot: a frozen view claims nothing new.
            return false;
        }
        self.slicer.assignment(table) == Some(self.me)
    }

    /// Freezes the view at the current assignment of the given tables —
    /// simulates a task that stopped receiving Slicer updates.
    pub fn freeze(&self, tables: &[TableId]) {
        let snapshot = tables
            .iter()
            .map(|t| (*t, self.slicer.assignment(*t)))
            .collect();
        *self.frozen.write() = Some(snapshot);
    }

    /// Unfreezes: resumes answering from the live slicer.
    pub fn refresh(&self) {
        *self.frozen.write() = None;
    }

    /// The task this view belongs to.
    pub fn task_id(&self) -> SmsTaskId {
        self.me
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: u64) -> Vec<SmsTaskId> {
        (0..n).map(SmsTaskId::from_raw).collect()
    }

    #[test]
    fn assignment_is_stable_and_covers_all_tasks() {
        let s = Slicer::new(tasks(4));
        let mut seen = std::collections::HashSet::new();
        for t in 0..100 {
            let a = s.assignment(TableId::from_raw(t)).unwrap();
            assert_eq!(s.assignment(TableId::from_raw(t)), Some(a));
            seen.insert(a);
        }
        assert_eq!(seen.len(), 4, "hash should spread tables over tasks");
    }

    #[test]
    fn empty_slicer_assigns_nothing() {
        let s = Slicer::new(vec![]);
        assert_eq!(s.assignment(TableId::from_raw(1)), None);
    }

    #[test]
    fn reassign_overrides_hash() {
        let s = Slicer::new(tasks(4));
        let t = TableId::from_raw(7);
        let target = SmsTaskId::from_raw(2);
        let gen_before = s.generation();
        s.reassign(t, target);
        assert_eq!(s.assignment(t), Some(target));
        assert!(s.generation() > gen_before);
    }

    #[test]
    fn frozen_view_creates_double_ownership_window() {
        let s = Slicer::new(tasks(2));
        let t = TableId::from_raw(3);
        let owner = s.assignment(t).unwrap();
        let other = if owner.raw() == 0 {
            SmsTaskId::from_raw(1)
        } else {
            SmsTaskId::from_raw(0)
        };
        let owner_view = SlicerView::new(Arc::clone(&s), owner);
        let other_view = SlicerView::new(Arc::clone(&s), other);
        assert!(owner_view.owns(t));
        assert!(!other_view.owns(t));
        // Old owner freezes its view, slicer moves the table: both claim it.
        owner_view.freeze(&[t]);
        s.reassign(t, other);
        assert!(owner_view.owns(t), "stale view still claims the table");
        assert!(other_view.owns(t), "new owner claims the table");
        // Refresh ends the window.
        owner_view.refresh();
        assert!(!owner_view.owns(t));
    }

    #[test]
    fn task_set_change_bumps_generation() {
        let s = Slicer::new(tasks(2));
        let g = s.generation();
        s.set_tasks(tasks(3));
        assert!(s.generation() > g);
    }
}
