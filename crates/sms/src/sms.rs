//! The Stream Metadata Server task: Vortex's control plane (§5.2).
//!
//! Every mutation is a serializable transaction against the Spanner-lite
//! metastore, which is what keeps the system correct when Slicer briefly
//! assigns a table to two tasks at once (§5.2.1) — the loser of any
//! conflicting commit simply retries against fresh state.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use vortex_colossus::StorageFleet;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{
    ClusterId, FragmentId, IdGen, ServerId, SmsTaskId, StreamId, StreamletId, TableId,
};
use vortex_common::mask::DeletionMask;
use vortex_common::schema::Schema;
use vortex_common::truetime::{Timestamp, TrueTime};
use vortex_metastore::MetaStore;
use vortex_wos::{parse_fragment, FragmentWriter};

use crate::bigmeta::BigMeta;
use crate::heartbeat::{HeartbeatReport, HeartbeatResponse};
use crate::meta::{
    self, dml_lock_prefix, dml_lock_token_key, fragment_key, fragment_prefix, stream_key,
    stream_prefix, streamlet_key, streamlet_prefix, table_key, wos_path, wos_streamlet_prefix,
    FragmentKind, FragmentMeta, FragmentState, StreamMeta, StreamType, StreamletMeta,
    StreamletState, TableMeta,
};
use crate::readset::{FragmentReadSpec, ReadSet, RowVisibility, TailReadSpec};
use crate::server_ctl::{ServerHandle, StreamletSpec};
use crate::slicer::SlicerView;

/// Static configuration of one SMS task.
#[derive(Debug, Clone)]
pub struct SmsConfig {
    /// This task's id.
    pub task: SmsTaskId,
    /// Cluster the task runs in.
    pub cluster: ClusterId,
    /// Grace period before logically-deleted fragments are physically
    /// GC'd ("kept sufficiently long to ensure that any active queries
    /// that are reading from them do not fail", §5.4.3).
    pub gc_grace_micros: u64,
    /// Transaction retry budget.
    pub txn_retries: usize,
}

impl SmsConfig {
    /// Defaults for tests and examples.
    pub fn new(task: SmsTaskId, cluster: ClusterId) -> Self {
        SmsConfig {
            task,
            cluster,
            gc_grace_micros: 10_000_000, // 10 virtual seconds
            txn_retries: 64,
        }
    }
}

/// A writable stream handle returned to clients: stream + its writable
/// streamlet + the server hosting it (§5.2: "the SMS then responds to the
/// client request with the Streamlet id and the address of the Stream
/// Server").
#[derive(Clone)]
pub struct StreamHandle {
    /// Owning table.
    pub table: TableId,
    /// Stream metadata.
    pub stream: StreamMeta,
    /// The writable streamlet.
    pub streamlet: StreamletMeta,
    /// Schema at handout time (carries the version).
    pub schema: Schema,
    /// The Stream Server hosting the streamlet.
    pub server: ServerHandle,
}

impl std::fmt::Debug for StreamHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHandle")
            .field("table", &self.table)
            .field("stream", &self.stream.stream)
            .field("streamlet", &self.streamlet.streamlet)
            .field("server", &self.server.server_id())
            .finish()
    }
}

/// A claim ticket for one running DML statement (§7.3). Minted by
/// [`SmsTask::begin_dml`] and surrendered to [`SmsTask::end_dml`]; the
/// token keys the statement's metastore marker, which makes both calls
/// idempotent per statement (safe to re-execute after an ambiguous ack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmlTicket(pub u64);

/// One Stream Metadata Server task.
pub struct SmsTask {
    cfg: SmsConfig,
    store: Arc<MetaStore>,
    fleet: StorageFleet,
    tt: TrueTime,
    ids: Arc<IdGen>,
    servers: RwLock<HashMap<ServerId, ServerHandle>>,
    bigmeta: Arc<BigMeta>,
    view: Option<SlicerView>,
}

impl SmsTask {
    /// Creates a task over shared infrastructure. `view` is the task's
    /// Slicer assignment view; `None` means "owns everything" (single-task
    /// deployments and tests).
    pub fn new(
        cfg: SmsConfig,
        store: Arc<MetaStore>,
        fleet: StorageFleet,
        tt: TrueTime,
        ids: Arc<IdGen>,
        view: Option<SlicerView>,
    ) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            store,
            fleet,
            tt,
            ids,
            servers: RwLock::new(HashMap::new()),
            bigmeta: Arc::new(BigMeta::new()),
            view,
        })
    }

    /// This task's id.
    pub fn task_id(&self) -> SmsTaskId {
        self.cfg.task
    }

    /// This task's static configuration (used to rebuild a replacement
    /// task after a simulated process death).
    pub fn config(&self) -> &SmsConfig {
        &self.cfg
    }

    /// The Big Metadata index this task maintains (§6.2).
    pub fn bigmeta(&self) -> &BigMeta {
        &self.bigmeta
    }

    /// Shared handle to the Big Metadata index (what [`crate::api::SmsApi`]
    /// hands out, so channel wrappers can swap tasks without dangling
    /// borrows).
    pub fn bigmeta_arc(&self) -> Arc<BigMeta> {
        Arc::clone(&self.bigmeta)
    }

    /// The shared metastore (used by verification pipelines).
    pub fn store(&self) -> &Arc<MetaStore> {
        &self.store
    }

    /// Registers a Stream Server control endpoint.
    pub fn register_server(&self, server: ServerHandle) {
        self.servers.write().insert(server.server_id(), server);
    }

    /// A fresh snapshot timestamp guaranteeing read-after-write: data
    /// whose append was acknowledged before this call is visible at it.
    pub fn read_snapshot(&self) -> Timestamp {
        // Covers both record timestamps (server TrueTime `latest`) and
        // metastore commit timestamps.
        Timestamp(self.tt.record_timestamp().0.max(self.store.now().0))
    }

    fn check_owns(&self, table: TableId) -> VortexResult<()> {
        if let Some(v) = &self.view {
            if !v.owns(table) {
                return Err(VortexError::Unavailable(format!(
                    "table {table} not assigned to SMS task {}",
                    self.cfg.task
                )));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Tables.
    // ------------------------------------------------------------------

    /// Creates a table, assigning it a primary/secondary cluster pair
    /// (§5.2.1's zone assignment).
    pub fn create_table(&self, name: &str, schema: Schema) -> VortexResult<TableMeta> {
        let clusters = self.fleet.cluster_ids();
        if clusters.len() < 2 {
            return Err(VortexError::InvalidArgument(
                "a region needs at least 2 clusters".into(),
            ));
        }
        let table = self.ids.next_table();
        let primary = clusters[(table.raw() as usize) % clusters.len()];
        let secondary = clusters[(table.raw() as usize + 1) % clusters.len()];
        let meta = TableMeta {
            table,
            name: name.to_string(),
            schema,
            primary,
            secondary,
            key_ref: format!("table-key-{}", table.raw()),
            created_at: self.tt.record_timestamp(),
            external_bucket: None,
        };
        let name_key = format!("tname/{name}");
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            if txn.get(&name_key).is_some() {
                return Err(VortexError::AlreadyExists(format!("table name {name}")));
            }
            txn.put(&name_key, meta.table.raw().to_le_bytes().to_vec());
            txn.put(&table_key(meta.table), meta.to_bytes());
            Ok(())
        })?;
        Ok(meta)
    }

    /// Creates a BigLake Managed Table (§6.4): identical to
    /// [`SmsTask::create_table`] except the optimizer writes ROS blocks
    /// into the named customer bucket; queries read the union of WOS in
    /// Colossus and the bucket's blocks.
    pub fn create_blmt_table(
        &self,
        name: &str,
        schema: Schema,
        bucket: &str,
    ) -> VortexResult<TableMeta> {
        let meta = self.create_table(name, schema)?;
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            let bytes = txn
                .get(&table_key(meta.table))
                .ok_or_else(|| VortexError::NotFound(format!("table {}", meta.table)))?;
            let mut m = TableMeta::from_bytes(&bytes)?;
            m.external_bucket = Some(bucket.to_string());
            txn.put(&table_key(meta.table), m.to_bytes());
            Ok(())
        })?;
        self.get_table(meta.table)
    }

    /// Fetches a table by id at the latest snapshot.
    pub fn get_table(&self, table: TableId) -> VortexResult<TableMeta> {
        let bytes = self
            .store
            .read_at(&table_key(table), self.store.now())
            .ok_or_else(|| VortexError::NotFound(format!("table {table}")))?;
        TableMeta::from_bytes(&bytes)
    }

    /// Resolves a table by name.
    pub fn get_table_by_name(&self, name: &str) -> VortexResult<TableMeta> {
        let bytes = self
            .store
            .read_at(&format!("tname/{name}"), self.store.now())
            .ok_or_else(|| VortexError::NotFound(format!("table '{name}'")))?;
        if bytes.len() != 8 {
            return Err(VortexError::Decode("table name index".into()));
        }
        self.get_table(TableId::from_raw(u64::from_le_bytes(
            // lint:allow(L002, length == 8 was just checked, so the conversion cannot fail)
            bytes.try_into().unwrap(),
        )))
    }

    /// Applies a schema change (additive column). Writers learn about it
    /// through the Stream Servers on their next append (§5.4.1).
    pub fn update_schema(&self, table: TableId, new_schema: Schema) -> VortexResult<TableMeta> {
        self.check_owns(table)?;
        let updated = self.store.with_txn(self.cfg.txn_retries, |txn| {
            let bytes = txn
                .get(&table_key(table))
                .ok_or_else(|| VortexError::NotFound(format!("table {table}")))?;
            let mut meta = TableMeta::from_bytes(&bytes)?;
            if new_schema.version <= meta.schema.version {
                return Err(VortexError::InvalidArgument(format!(
                    "schema version must increase: {} -> {}",
                    meta.schema.version, new_schema.version
                )));
            }
            meta.schema = new_schema.clone();
            txn.put(&table_key(table), meta.to_bytes());
            Ok(meta)
        })?;
        // Notify Stream Servers so they can fail stale-writer appends
        // with SchemaVersionMismatch (§5.4.1).
        for s in self.servers.read().values() {
            s.notify_schema_version(table, updated.schema.version);
        }
        Ok(updated)
    }

    /// Swaps primary and secondary clusters — the transparent failover of
    /// §5.2.1. New streamlets will be placed in the new primary.
    pub fn fail_over_table(&self, table: TableId) -> VortexResult<TableMeta> {
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            let bytes = txn
                .get(&table_key(table))
                .ok_or_else(|| VortexError::NotFound(format!("table {table}")))?;
            let mut meta = TableMeta::from_bytes(&bytes)?;
            std::mem::swap(&mut meta.primary, &mut meta.secondary);
            txn.put(&table_key(table), meta.to_bytes());
            Ok(meta)
        })
    }

    // ------------------------------------------------------------------
    // Streams and streamlets.
    // ------------------------------------------------------------------

    fn pick_server(&self, primary: ClusterId) -> VortexResult<ServerHandle> {
        let servers = self.servers.read();
        let best = servers
            .values()
            .filter(|s| s.cluster() == primary)
            .chain(servers.values().filter(|s| s.cluster() != primary))
            .map(|s| (s, s.load()))
            .filter(|(_, l)| !l.quarantined)
            .min_by(|(_, a), (_, b)| a.score().total_cmp(&b.score()))
            .map(|(s, _)| Arc::clone(s));
        best.ok_or_else(|| VortexError::Unavailable("no stream servers available".into()))
    }

    /// Creates a Stream of the given type plus its first Streamlet
    /// (§4.2.1 / §5.2).
    pub fn create_stream(&self, table: TableId, stype: StreamType) -> VortexResult<StreamHandle> {
        self.check_owns(table)?;
        let tmeta = self.get_table(table)?;
        let stream = StreamMeta {
            stream: self.ids.next_stream(),
            table,
            stype,
            finalized: false,
            committed_at: None,
            flushed_row: 0,
            created_at: self.tt.record_timestamp(),
            streamlet_count: 0,
        };
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            txn.put(&stream_key(table, stream.stream), stream.to_bytes());
            Ok(())
        })?;
        self.open_streamlet(&tmeta, stream, 0)
    }

    /// Opens the next streamlet of a stream after the current one closed
    /// (server restart, migration, irrecoverable write error — §5.2).
    /// Reconciles the previous streamlet first so the stream-level row
    /// offset of the new streamlet is exact.
    pub fn rotate_streamlet(&self, table: TableId, stream: StreamId) -> VortexResult<StreamHandle> {
        self.check_owns(table)?;
        let tmeta = self.get_table(table)?;
        let smeta = self.get_stream(table, stream)?;
        if smeta.finalized {
            return Err(VortexError::StreamFinalized(stream));
        }
        // Reconcile the last streamlet if it isn't finalized yet.
        let mut first_stream_row = 0u64;
        if let Some(last) = self.last_streamlet(table, stream)? {
            let reconciled = if last.state == StreamletState::Finalized {
                last
            } else {
                self.reconcile_streamlet(table, last.streamlet)?
            };
            first_stream_row = reconciled.first_stream_row + reconciled.row_count;
        }
        self.open_streamlet(&tmeta, smeta, first_stream_row)
    }

    fn open_streamlet(
        &self,
        tmeta: &TableMeta,
        mut stream: StreamMeta,
        first_stream_row: u64,
    ) -> VortexResult<StreamHandle> {
        let clusters = self.replica_pair(tmeta)?;
        let mut last_err = VortexError::Unavailable("no stream servers".into());
        for _attempt in 0..3 {
            let server = self.pick_server(tmeta.primary)?;
            let slmeta = StreamletMeta {
                streamlet: self.ids.next_streamlet(),
                stream: stream.stream,
                table: tmeta.table,
                ordinal: stream.streamlet_count,
                server: server.server_id(),
                clusters,
                state: StreamletState::Writable,
                first_stream_row,
                row_count: 0,
                known_fragments: 0,
                masks: vec![],
                epoch: 1,
            };
            let spec = StreamletSpec {
                table: tmeta.table,
                stream: stream.stream,
                streamlet: slmeta.streamlet,
                clusters,
                schema: tmeta.schema.clone(),
                first_stream_row,
                key: tmeta.encryption_key(),
                epoch: slmeta.epoch,
            };
            // Persist first, then instruct the server (§5.4.3: the SMS
            // "persist[s] it into Spanner", then RPCs the Stream Server).
            let stream_snapshot = stream.clone();
            let slmeta_snapshot = slmeta.clone();
            self.store.with_txn(self.cfg.txn_retries, move |txn| {
                let mut s = stream_snapshot.clone();
                s.streamlet_count += 1;
                txn.put(&stream_key(s.table, s.stream), s.to_bytes());
                txn.put(
                    &streamlet_key(slmeta_snapshot.table, slmeta_snapshot.streamlet),
                    slmeta_snapshot.to_bytes(),
                );
                Ok(())
            })?;
            stream.streamlet_count += 1;
            // A crash here leaves the streamlet row committed in the
            // metastore but the Stream Server never instructed: exactly
            // the orphan that reconcile_streamlet's Phase 1 poisons
            // (§5.2). Fires between txn commit and side effect, and
            // bypasses the retry loop below.
            vortex_common::crash_point!("sms.open_streamlet.post_txn");
            match server.create_streamlet(spec) {
                Ok(()) => {
                    return Ok(StreamHandle {
                        table: tmeta.table,
                        stream,
                        streamlet: slmeta,
                        schema: tmeta.schema.clone(),
                        server,
                    });
                }
                Err(e) => {
                    // Mark the stillborn streamlet finalized-empty and try
                    // another server.
                    let dead = slmeta.clone();
                    let _ = self.store.with_txn(self.cfg.txn_retries, move |txn| {
                        let mut m = dead.clone();
                        m.state = StreamletState::Finalized;
                        txn.put(&streamlet_key(m.table, m.streamlet), m.to_bytes());
                        Ok(())
                    });
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Picks the two clusters a new streamlet's log files will live in.
    /// Prefers the table's primary and secondary, but §5.1 allows "any 2
    /// clusters of all the available clusters in a region" — so an
    /// unavailable preferred cluster is replaced by the next healthy one.
    fn replica_pair(&self, tmeta: &TableMeta) -> VortexResult<[ClusterId; 2]> {
        let mut chosen: Vec<ClusterId> = Vec::with_capacity(2);
        let preferred = [tmeta.primary, tmeta.secondary];
        for c in preferred.into_iter().chain(self.fleet.cluster_ids()) {
            if chosen.contains(&c) {
                continue;
            }
            if let Ok(cluster) = self.fleet.get(c) {
                if !cluster.faults().is_unavailable() {
                    chosen.push(c);
                }
            }
            if chosen.len() == 2 {
                return Ok([chosen[0], chosen[1]]);
            }
        }
        Err(VortexError::Unavailable(
            "fewer than 2 healthy clusters in the region".into(),
        ))
    }

    /// Fetches a stream's metadata.
    pub fn get_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        let bytes = self
            .store
            .read_at(&stream_key(table, stream), self.store.now())
            .ok_or_else(|| VortexError::NotFound(format!("stream {stream}")))?;
        StreamMeta::from_bytes(&bytes)
    }

    /// Fetches a streamlet's metadata.
    pub fn get_streamlet(
        &self,
        table: TableId,
        streamlet: StreamletId,
    ) -> VortexResult<StreamletMeta> {
        let bytes = self
            .store
            .read_at(&streamlet_key(table, streamlet), self.store.now())
            .ok_or_else(|| VortexError::NotFound(format!("streamlet {streamlet}")))?;
        StreamletMeta::from_bytes(&bytes)
    }

    fn streamlets_of_stream(
        &self,
        table: TableId,
        stream: StreamId,
    ) -> VortexResult<Vec<StreamletMeta>> {
        let mut out: Vec<StreamletMeta> = self
            .store
            .scan_prefix_at(&streamlet_prefix(table), self.store.now())
            .into_iter()
            .map(|(_, v)| StreamletMeta::from_bytes(&v))
            .collect::<VortexResult<Vec<_>>>()?
            .into_iter()
            .filter(|m| m.stream == stream)
            .collect();
        out.sort_by_key(|m| m.ordinal);
        Ok(out)
    }

    fn last_streamlet(
        &self,
        table: TableId,
        stream: StreamId,
    ) -> VortexResult<Option<StreamletMeta>> {
        Ok(self.streamlets_of_stream(table, stream)?.into_iter().last())
    }

    /// Current committed length (rows) of a stream: finalized streamlets
    /// from the metastore plus live lengths from hosting servers.
    pub fn stream_length(&self, table: TableId, stream: StreamId) -> VortexResult<u64> {
        let mut total = 0u64;
        for sl in self.streamlets_of_stream(table, stream)? {
            let live = if sl.state == StreamletState::Finalized {
                sl.row_count
            } else {
                let from_server = self
                    .servers
                    .read()
                    .get(&sl.server)
                    .and_then(|h| h.streamlet_rows(sl.streamlet));
                from_server.unwrap_or(sl.row_count).max(sl.row_count)
            };
            total += live;
        }
        Ok(total)
    }

    /// `FlushStream` (§4.2.3): makes rows `[0, row_offset)` of a BUFFERED
    /// stream visible. Idempotent; errors if the stream is shorter than
    /// `row_offset`.
    pub fn flush_stream(
        &self,
        table: TableId,
        stream: StreamId,
        row_offset: u64,
    ) -> VortexResult<()> {
        self.check_owns(table)?;
        let smeta = self.get_stream(table, stream)?;
        if smeta.stype != StreamType::Buffered {
            return Err(VortexError::InvalidArgument(
                "FlushStream requires a BUFFERED stream".into(),
            ));
        }
        let length = self.stream_length(table, stream)?;
        if row_offset > length {
            return Err(VortexError::InvalidArgument(format!(
                "flush offset {row_offset} exceeds stream length {length}"
            )));
        }
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            let bytes = txn
                .get(&stream_key(table, stream))
                .ok_or_else(|| VortexError::NotFound(format!("stream {stream}")))?;
            let mut m = StreamMeta::from_bytes(&bytes)?;
            m.flushed_row = m.flushed_row.max(row_offset);
            txn.put(&stream_key(table, stream), m.to_bytes());
            Ok(())
        })
    }

    /// `FinalizeStream` (§4.2.5): prevents further appends; reconciles the
    /// writable streamlet so the stream's length becomes authoritative.
    pub fn finalize_stream(&self, table: TableId, stream: StreamId) -> VortexResult<StreamMeta> {
        self.check_owns(table)?;
        let out = self.store.with_txn(self.cfg.txn_retries, |txn| {
            let bytes = txn
                .get(&stream_key(table, stream))
                .ok_or_else(|| VortexError::NotFound(format!("stream {stream}")))?;
            let mut m = StreamMeta::from_bytes(&bytes)?;
            m.finalized = true;
            txn.put(&stream_key(table, stream), m.to_bytes());
            Ok(m)
        })?;
        if let Some(last) = self.last_streamlet(table, stream)? {
            if last.state != StreamletState::Finalized {
                self.reconcile_streamlet(table, last.streamlet)?;
            }
        }
        Ok(out)
    }

    /// `BatchCommitStreams` (§4.2.4): atomically makes a set of PENDING
    /// streams visible. Finalizes and reconciles them first so their
    /// contents are authoritative at commit.
    pub fn batch_commit_streams(
        &self,
        table: TableId,
        streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        self.check_owns(table)?;
        for &s in streams {
            self.finalize_stream(table, s)?;
        }
        let visible_from = self.tt.record_timestamp();
        let ((), commit_ts) = self.store.with_txn_at(self.cfg.txn_retries, |txn| {
            for &s in streams {
                let bytes = txn
                    .get(&stream_key(table, s))
                    .ok_or_else(|| VortexError::NotFound(format!("stream {s}")))?;
                let mut m = StreamMeta::from_bytes(&bytes)?;
                if m.stype != StreamType::Pending {
                    return Err(VortexError::InvalidArgument(format!(
                        "stream {s} is not PENDING"
                    )));
                }
                if m.committed_at.is_some() {
                    continue; // idempotent
                }
                m.committed_at = Some(visible_from);
                txn.put(&stream_key(table, s), m.to_bytes());
            }
            Ok(())
        })?;
        // Commit-wait so a read snapshot taken after this call observes
        // the data (TrueTime external consistency).
        self.tt.commit_wait(commit_ts);
        Ok(commit_ts)
    }

    // ------------------------------------------------------------------
    // Heartbeats (§5.5).
    // ------------------------------------------------------------------

    /// Ingests a Stream Server heartbeat: fragment deltas, row counts,
    /// load; answers with schema updates, GC work, and unknown streamlets.
    pub fn heartbeat(&self, report: &HeartbeatReport) -> VortexResult<HeartbeatResponse> {
        let mut resp = HeartbeatResponse::default();
        let now = self.store.now();
        for delta in &report.streamlets {
            let table = delta.table;
            let sl_key = streamlet_key(table, delta.streamlet);
            let Some(sl_bytes) = self.store.read_at(&sl_key, now) else {
                resp.unknown_streamlets.push(delta.streamlet);
                continue;
            };
            let slmeta = StreamletMeta::from_bytes(&sl_bytes)?;
            if slmeta.state == StreamletState::Finalized {
                // Reconciled already; a zombie server reporting stale state.
                continue;
            }
            let tmeta = self.get_table(table)?;
            let delta = delta.clone();
            let cfg_clusters = slmeta.clusters;
            self.store.with_txn(self.cfg.txn_retries, move |txn| {
                let Some(bytes) = txn.get(&sl_key) else {
                    return Ok(());
                };
                let mut sl = StreamletMeta::from_bytes(&bytes)?;
                if sl.state == StreamletState::Finalized {
                    return Ok(());
                }
                for f in &delta.fragments {
                    let fkey = fragment_key(table, f.fragment);
                    let mut fmeta = match txn.get(&fkey) {
                        Some(b) => FragmentMeta::from_bytes(&b)?,
                        None => FragmentMeta {
                            fragment: f.fragment,
                            table,
                            streamlet: delta.streamlet,
                            kind: FragmentKind::Wos,
                            ordinal: f.ordinal,
                            first_row: f.first_row,
                            row_count: 0,
                            committed_size: 0,
                            state: FragmentState::Active,
                            created_at: Timestamp::MIN,
                            deleted_at: Timestamp::MAX,
                            clusters: cfg_clusters,
                            path: wos_path(table, delta.streamlet, f.ordinal),
                            stats: vec![],
                            masks: vec![],
                            partition_key: None,
                            level: 0,
                        },
                    };
                    if fmeta.state == FragmentState::Deleted {
                        continue; // already converted; ignore stale delta
                    }
                    fmeta.row_count = fmeta.row_count.max(f.row_count);
                    fmeta.committed_size = fmeta.committed_size.max(f.committed_size);
                    fmeta.stats = f.stats.clone();
                    if f.finalized && fmeta.state == FragmentState::Active {
                        fmeta.state = FragmentState::Finalized;
                        // Map streamlet tail masks onto the now-known
                        // fragment (§7.3).
                        for (mts, m) in &sl.masks {
                            let local = m.slice_rebased(f.first_row, f.first_row + f.row_count);
                            if !local.is_empty() {
                                fmeta.masks.push((*mts, local));
                            }
                        }
                    }
                    txn.put(&fkey, fmeta.to_bytes());
                }
                sl.row_count = sl.row_count.max(delta.row_count);
                let max_ord = delta
                    .fragments
                    .iter()
                    .filter(|f| f.finalized)
                    .map(|f| f.ordinal + 1)
                    .max()
                    .unwrap_or(0);
                sl.known_fragments = sl.known_fragments.max(max_ord);
                if delta.finalized {
                    sl.state = StreamletState::Closed;
                }
                txn.put(&sl_key, sl.to_bytes());
                // Flush watermark recovery from flush records.
                if let Some(fr) = delta.max_flush_row {
                    let skey = stream_key(table, sl.stream);
                    if let Some(sb) = txn.get(&skey) {
                        let mut sm = StreamMeta::from_bytes(&sb)?;
                        let stream_level = sl.first_stream_row + fr;
                        if stream_level > sm.flushed_row {
                            sm.flushed_row = stream_level;
                            txn.put(&skey, sm.to_bytes());
                        }
                    }
                }
                Ok(())
            })?;
            // Schema updates for the reporting server.
            resp.schema_updates.push((table, tmeta.schema.version));
            // GC work: deleted fragments past the grace period.
            let grace = Timestamp(
                self.tt
                    .record_timestamp()
                    .0
                    .saturating_sub(self.cfg.gc_grace_micros),
            );
            let gc_ordinals: Vec<u32> = self
                .store
                .scan_prefix_at(&fragment_prefix(table), self.store.now())
                .into_iter()
                .filter_map(|(_, v)| FragmentMeta::from_bytes(&v).ok())
                .filter(|f| {
                    f.streamlet == delta.streamlet
                        && f.state == FragmentState::Deleted
                        && f.deleted_at <= grace
                })
                .map(|f| f.ordinal)
                .collect();
            if !gc_ordinals.is_empty() {
                resp.gc.push((table, delta.streamlet, gc_ordinals));
            }
        }
        resp.schema_updates.sort_by_key(|(t, _)| t.raw());
        resp.schema_updates.dedup();
        Ok(resp)
    }

    /// Acknowledges that a server deleted fragment log files: drops their
    /// metastore records ("when the Stream Server acknowledges it has
    /// deleted the Fragments, the SMS deletes the Fragments from Spanner",
    /// §5.4.3).
    pub fn ack_gc(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: &[u32],
    ) -> VortexResult<usize> {
        let frags: Vec<FragmentMeta> = self
            .store
            .scan_prefix_at(&fragment_prefix(table), self.store.now())
            .into_iter()
            .filter_map(|(_, v)| FragmentMeta::from_bytes(&v).ok())
            .filter(|f| {
                f.streamlet == streamlet
                    && f.state == FragmentState::Deleted
                    && ordinals.contains(&f.ordinal)
            })
            .collect();
        let n = frags.len();
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            for f in &frags {
                txn.delete(&fragment_key(table, f.fragment));
            }
            Ok(())
        })?;
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Read path (§7).
    // ------------------------------------------------------------------

    /// Returns the union of WOS and ROS visible at `snapshot`: fragment
    /// read specs plus unfinalized streamlet tails (§7).
    pub fn list_read_fragments(
        &self,
        table: TableId,
        snapshot: Timestamp,
    ) -> VortexResult<ReadSet> {
        vortex_common::obs::global()
            .counter("sms.list_read_fragments")
            .inc();
        let tbytes = self
            .store
            .read_at(&table_key(table), snapshot)
            .ok_or_else(|| VortexError::NotFound(format!("table {table}")))?;
        let tmeta = TableMeta::from_bytes(&tbytes)?;
        // Streams and streamlets at the snapshot.
        let streams: HashMap<StreamId, StreamMeta> = self
            .store
            .scan_prefix_at(&stream_prefix(table), snapshot)
            .into_iter()
            .filter_map(|(_, v)| StreamMeta::from_bytes(&v).ok())
            .map(|m| (m.stream, m))
            .collect();
        let streamlets: HashMap<StreamletId, StreamletMeta> = self
            .store
            .scan_prefix_at(&streamlet_prefix(table), snapshot)
            .into_iter()
            .filter_map(|(_, v)| StreamletMeta::from_bytes(&v).ok())
            .map(|m| (m.streamlet, m))
            .collect();

        let visibility_for = |sl: &StreamletMeta| -> Option<RowVisibility> {
            let stream = streams.get(&sl.stream)?;
            match stream.stype {
                StreamType::Unbuffered => Some(RowVisibility::unconstrained()),
                StreamType::Buffered => Some(RowVisibility {
                    visible_from: Timestamp::MIN,
                    flush_limit: Some(stream.flushed_row.saturating_sub(sl.first_stream_row)),
                }),
                StreamType::Pending => {
                    let committed = stream.committed_at?;
                    if committed > snapshot {
                        return None; // not yet visible
                    }
                    Some(RowVisibility {
                        visible_from: committed,
                        flush_limit: None,
                    })
                }
            }
        };

        let mut fragments = Vec::new();
        for (_, v) in self.store.scan_prefix_at(&fragment_prefix(table), snapshot) {
            let f = FragmentMeta::from_bytes(&v)?;
            if !f.visible_at(snapshot) {
                continue;
            }
            match f.kind {
                FragmentKind::Ros => {
                    fragments.push(FragmentReadSpec {
                        mask: f.mask_at(snapshot),
                        visibility: RowVisibility::unconstrained(),
                        stream: StreamId::from_raw(0),
                        streamlet_first_stream_row: 0,
                        meta: f,
                    });
                }
                FragmentKind::Wos => {
                    // Only finalized WOS fragments are read via specs; the
                    // active one is covered by its streamlet tail.
                    if f.state != FragmentState::Finalized {
                        continue;
                    }
                    let Some(sl) = streamlets.get(&f.streamlet) else {
                        continue;
                    };
                    let Some(vis) = visibility_for(sl) else {
                        continue;
                    };
                    fragments.push(FragmentReadSpec {
                        mask: f.mask_at(snapshot),
                        visibility: vis,
                        stream: sl.stream,
                        streamlet_first_stream_row: sl.first_stream_row,
                        meta: f,
                    });
                }
            }
        }

        // Tails: streamlets not finalized → the reader probes log files
        // past the last finalized fragment.
        let mut tails = Vec::new();
        for sl in streamlets.values() {
            if sl.state == StreamletState::Finalized {
                continue;
            }
            let Some(vis) = visibility_for(sl) else {
                continue;
            };
            // Where do known (finalized, still-live OR converted) WOS
            // fragments end?
            let (mut from_ordinal, mut from_row) = (0u32, 0u64);
            for spec in self
                .store
                .scan_prefix_at(&fragment_prefix(table), snapshot)
                .iter()
                .filter_map(|(_, v)| FragmentMeta::from_bytes(v).ok())
                .filter(|f| {
                    f.kind == FragmentKind::Wos
                        && f.streamlet == sl.streamlet
                        && f.state != FragmentState::Active
                })
            {
                from_ordinal = from_ordinal.max(spec.ordinal + 1);
                from_row = from_row.max(spec.first_row + spec.row_count);
            }
            let stream_type = streams
                .get(&sl.stream)
                .map(|s| s.stype)
                .unwrap_or(StreamType::Unbuffered);
            tails.push(TailReadSpec {
                streamlet: sl.streamlet,
                stream: sl.stream,
                stream_type,
                clusters: sl.clusters,
                from_ordinal,
                from_row,
                path_prefix: wos_streamlet_prefix(table, sl.streamlet),
                mask: meta::effective_mask(&sl.masks, snapshot),
                visibility: vis,
                epoch: sl.epoch,
                first_stream_row: sl.first_stream_row,
                expected_rows: sl.row_count,
            });
        }
        tails.sort_by_key(|t| t.streamlet);
        fragments.sort_by_key(|f| (f.meta.streamlet, f.meta.ordinal, f.meta.fragment));
        Ok(ReadSet {
            snapshot,
            schema: tmeta.schema,
            fragments,
            tails,
        })
    }

    // ------------------------------------------------------------------
    // Reconciliation (§5.6, §7.1).
    // ------------------------------------------------------------------

    /// Runs the disaster-resilience reconciliation protocol on a
    /// streamlet: bump the epoch, poison zombie writers with sentinel
    /// records in every reachable replica, determine the authoritative
    /// length by inspecting replica log files, and record it in the
    /// metastore. Returns the finalized streamlet metadata.
    pub fn reconcile_streamlet(
        &self,
        table: TableId,
        streamlet: StreamletId,
    ) -> VortexResult<StreamletMeta> {
        vortex_common::obs::global()
            .counter("sms.reconcile_streamlet")
            .inc();
        let tmeta = self.get_table(table)?;
        let key = tmeta.encryption_key();
        // Phase 1: close + bump epoch so the outcome is sticky even if
        // two SMS tasks reconcile concurrently (the txn serializes them).
        let slmeta = self.store.with_txn(self.cfg.txn_retries, |txn| {
            let bytes = txn
                .get(&streamlet_key(table, streamlet))
                .ok_or_else(|| VortexError::NotFound(format!("streamlet {streamlet}")))?;
            let mut m = StreamletMeta::from_bytes(&bytes)?;
            if m.state == StreamletState::Finalized {
                return Ok(m); // already reconciled — idempotent
            }
            m.state = StreamletState::Closed;
            m.epoch += 1;
            txn.put(&streamlet_key(table, streamlet), m.to_bytes());
            Ok(m)
        })?;
        if slmeta.state == StreamletState::Finalized {
            return Ok(slmeta);
        }
        // Ask the server to finalize gracefully (bloom + footer), then
        // revoke ownership. A dead server simply doesn't answer; the
        // inspection below works either way.
        if let Some(h) = self.servers.read().get(&slmeta.server) {
            let _ = h.finalize_streamlet_ctl(streamlet);
            h.revoke_streamlet(streamlet);
        }

        // Phase 2: inspect replicas fragment by fragment.
        let replicas: Vec<_> = slmeta
            .clusters
            .iter()
            .filter_map(|c| self.fleet.get(*c).ok().cloned())
            .collect();
        // Per fragment: ordinal, committed size, first row, rows, stats.
        type FragResult = (
            u32,
            u64,
            u64,
            u64,
            Vec<(String, vortex_common::stats::ColumnStats)>,
        );
        let mut frag_results: Vec<FragResult> = Vec::new();
        let mut total_rows = 0u64;
        let mut ordinal = 0u32;
        // Columns whose properties we recompute from the parsed rows
        // (scalar top-level, same set the Stream Server tracks, §7.2).
        let tracked: Vec<(usize, String)> = tmeta
            .schema
            .fields
            .iter()
            .enumerate()
            .filter(|(_, fd)| {
                !matches!(fd.ftype, vortex_common::schema::FieldType::Struct(_))
                    && fd.mode != vortex_common::schema::FieldMode::Repeated
            })
            .map(|(i, fd)| (i, fd.name.clone()))
            .collect();
        loop {
            let path = wos_path(table, streamlet, ordinal);
            // Poison FIRST (§5.6): once the sentinel is in a log file,
            // the Stream Server's sole-writer length check fails any
            // still-in-flight append, so nothing poisoned-then-read can
            // be acknowledged behind our back. Only after the poison do
            // the reads below decide the authoritative length.
            let sentinel =
                FragmentWriter::sentinel_record(slmeta.epoch, self.tt.record_timestamp());
            let mut reachable = 0usize;
            let mut found = false;
            for r in &replicas {
                if r.faults().is_unavailable() {
                    continue;
                }
                reachable += 1;
                if r.exists(&path) {
                    found = true;
                    let _ = r.append(&path, &sentinel, Timestamp(0));
                }
            }
            if reachable == 0 {
                return Err(VortexError::Unavailable(format!(
                    "no replica reachable for streamlet {streamlet}"
                )));
            }
            if !found {
                break; // no more fragments
            }
            // Now read the poisoned files. A replica whose very first
            // write for this fragment failed holds nothing (or a stub
            // with no header); parseable content decides below — stubs
            // must not shrink the common prefix to zero, so copies with
            // no parseable header are dropped.
            let mut copies: Vec<Vec<u8>> = Vec::new();
            for r in &replicas {
                if !r.faults().is_unavailable() && r.exists(&path) {
                    if let Ok(out) = r.read_all(&path) {
                        if parse_fragment(&out.data, &key, None).is_ok() {
                            copies.push(out.data);
                        }
                    }
                }
            }
            if copies.is_empty() {
                // Headerless stubs only: no committed rows here, but a
                // later ordinal may exist (a failed open was retried on
                // the next file).
                ordinal += 1;
                continue;
            }
            // Authoritative bytes: with 2 copies, everything acked is in
            // both → min(valid_len). With 1 copy, everything parseable.
            // Authoritative bytes: the acked prefix is byte-identical in
            // every replica (physical replication, §5.6); after the
            // poison, contents may diverge (a torn block in one replica,
            // sentinels at different offsets). The committed extent is
            // therefore the longest RECORD-ALIGNED COMMON PREFIX of the
            // copies — with one copy, everything parseable (nothing can
            // be acknowledged behind the poison).
            let v = if copies.len() >= 2 {
                let lcp = copies[1..].iter().fold(copies[0].len(), |acc, c| {
                    let mut n = 0usize;
                    let cap = acc.min(c.len());
                    while n < cap && copies[0][n] == c[n] {
                        n += 1;
                    }
                    n
                });
                parse_fragment(&copies[0][..lcp], &key, None)?.valid_len
            } else {
                parse_fragment(&copies[0], &key, None)?.valid_len
            };
            if v == 0 {
                // Nothing parseable (e.g. a failed open left a headerless
                // or divergent stub): the fragment holds no committed
                // rows; later ordinals may still exist.
                ordinal += 1;
                continue;
            }
            // Re-parse bounded by V: everything inside is committed.
            let authoritative = parse_fragment(&copies[0], &key, Some(v))?;
            let rows = authoritative.total_rows();
            // Recompute column properties from the committed rows.
            let mut stats: Vec<(String, vortex_common::stats::ColumnStats)> = tracked
                .iter()
                .map(|(_, n)| (n.clone(), vortex_common::stats::ColumnStats::new()))
                .collect();
            for block in &authoritative.blocks {
                for row in &block.rows.rows {
                    for (slot, (idx, _)) in tracked.iter().enumerate() {
                        if let Some(val) = row.values.get(*idx) {
                            stats[slot].1.observe(val);
                        }
                    }
                }
            }
            frag_results.push((ordinal, v, authoritative.header.first_row, rows, stats));
            total_rows = total_rows.max(authoritative.header.first_row + rows);
            ordinal += 1;
        }

        // Phase 3: record the reconciled truth.
        let final_meta = self.store.with_txn(self.cfg.txn_retries, |txn| {
            let bytes = txn
                .get(&streamlet_key(table, streamlet))
                .ok_or_else(|| VortexError::NotFound(format!("streamlet {streamlet}")))?;
            let mut m = StreamletMeta::from_bytes(&bytes)?;
            m.state = StreamletState::Finalized;
            m.row_count = total_rows;
            m.known_fragments = frag_results.len() as u32;
            // Upsert fragment records with authoritative sizes.
            let existing: HashMap<u32, FragmentMeta> = txn
                .scan_prefix(&fragment_prefix(table))
                .into_iter()
                .filter_map(|(_, v)| FragmentMeta::from_bytes(&v).ok())
                .filter(|f| f.streamlet == streamlet && f.kind == FragmentKind::Wos)
                .map(|f| (f.ordinal, f))
                .collect();
            for (ord, size, first_row, rows, stats) in frag_results.iter() {
                let (ord, size, first_row, rows) = (*ord, *size, *first_row, *rows);
                let mut f = existing.get(&ord).cloned().unwrap_or(FragmentMeta {
                    fragment: self.ids.next_fragment(),
                    table,
                    streamlet,
                    kind: FragmentKind::Wos,
                    ordinal: ord,
                    first_row,
                    row_count: 0,
                    committed_size: 0,
                    state: FragmentState::Active,
                    created_at: Timestamp::MIN,
                    deleted_at: Timestamp::MAX,
                    clusters: m.clusters,
                    path: wos_path(table, streamlet, ord),
                    stats: vec![],
                    masks: vec![],
                    partition_key: None,
                    level: 0,
                });
                if f.state == FragmentState::Deleted {
                    continue; // converted already; reconciliation cannot resurrect
                }
                f.first_row = first_row;
                f.row_count = rows;
                f.committed_size = size;
                f.stats = stats.clone();
                if f.state == FragmentState::Active {
                    f.state = FragmentState::Finalized;
                    for (mts, msk) in &m.masks {
                        let local = msk.slice_rebased(first_row, first_row + rows);
                        if !local.is_empty() {
                            f.masks.push((*mts, local));
                        }
                    }
                }
                txn.put(&fragment_key(table, f.fragment), f.to_bytes());
            }
            txn.put(&streamlet_key(table, streamlet), m.to_bytes());
            Ok(m)
        })?;
        Ok(final_meta)
    }

    // ------------------------------------------------------------------
    // Storage-optimizer and DML commits (§6.1, §7.3).
    // ------------------------------------------------------------------

    /// Mints a token for [`SmsTask::begin_dml_with`]. Channel wrappers
    /// call this *outside* their retry loop so every retry of the begin
    /// writes the same marker key.
    pub fn mint_dml_token(&self) -> u64 {
        self.ids.next_raw()
    }

    /// Marks the start of a DML statement; while any DML is active the
    /// optimizer's merged conversions will not commit (§7.3).
    pub fn begin_dml(&self, table: TableId) -> VortexResult<DmlTicket> {
        let token = self.mint_dml_token();
        self.begin_dml_with(table, token)
    }

    /// Marks the start of a DML statement under a pre-minted token.
    /// Idempotent for a fixed token: re-execution rewrites the same key,
    /// so an ambiguous ack cannot leak a second marker.
    pub fn begin_dml_with(&self, table: TableId, token: u64) -> VortexResult<DmlTicket> {
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            txn.put(&dml_lock_token_key(table, token), vec![1]);
            Ok(())
        })?;
        Ok(DmlTicket(token))
    }

    /// Marks the end of the DML statement holding `ticket`. Idempotent.
    pub fn end_dml(&self, table: TableId, ticket: DmlTicket) -> VortexResult<()> {
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            txn.delete(&dml_lock_token_key(table, ticket.0));
            Ok(())
        })
    }

    /// Whether any DML statement is currently running on the table.
    pub fn dml_active(&self, table: TableId) -> bool {
        !self
            .store
            .scan_prefix_at(&dml_lock_prefix(table), self.store.now())
            .is_empty()
    }

    /// Atomically commits a WOS→ROS conversion (or a recluster merge):
    /// sets `deletion_timestamp` on the source fragments and
    /// `creation_timestamp` on the replacements, "guarantee\[ing\] that a
    /// row is included exactly once" (§6.1).
    ///
    /// With `yield_to_dml` (merged conversions), the commit aborts if a
    /// DML statement is running (§7.3). Stable 1:1 conversions pass
    /// `false`: they are race-free because masks carry over positionally.
    ///
    /// `sources` carries, per source fragment, the number of mask
    /// versions the optimizer *observed* when it read the data: if a DML
    /// statement added a mask in between (it started and finished inside
    /// the optimizer's window, so the lock check alone cannot see it),
    /// the commit aborts with a conflict and the optimizer re-reads.
    pub fn commit_conversion(
        &self,
        table: TableId,
        sources: &[(FragmentId, usize)],
        mut replacements: Vec<FragmentMeta>,
        yield_to_dml: bool,
    ) -> VortexResult<Timestamp> {
        self.check_owns(table)?;
        let ts = self.tt.record_timestamp();
        let sources = sources.to_vec();
        let ((), commit_ts) = self.store.with_txn_at(self.cfg.txn_retries, |txn| {
            if yield_to_dml && !txn.scan_prefix(&dml_lock_prefix(table)).is_empty() {
                return Err(VortexError::Unavailable(format!(
                    "optimizer yielding to active DML on {table}"
                )));
            }
            for (src, seen_masks) in &sources {
                let fkey = fragment_key(table, *src);
                let bytes = txn
                    .get(&fkey)
                    .ok_or_else(|| VortexError::NotFound(format!("fragment {src}")))?;
                let mut f = FragmentMeta::from_bytes(&bytes)?;
                if yield_to_dml && f.masks.len() != *seen_masks {
                    return Err(VortexError::TxnConflict(format!(
                        "fragment {src} gained deletion masks during conversion"
                    )));
                }
                if f.state == FragmentState::Deleted {
                    return Err(VortexError::TxnConflict(format!(
                        "fragment {src} already converted"
                    )));
                }
                if f.state != FragmentState::Finalized {
                    return Err(VortexError::InvalidArgument(format!(
                        "fragment {src} not finalized"
                    )));
                }
                f.state = FragmentState::Deleted;
                f.deleted_at = ts;
                txn.put(&fkey, f.to_bytes());
            }
            for r in replacements.iter_mut() {
                r.created_at = ts;
                r.deleted_at = Timestamp::MAX;
                r.state = FragmentState::Finalized;
                txn.put(&fragment_key(table, r.fragment), r.to_bytes());
            }
            Ok(())
        })?;
        self.bigmeta.index_fragments(table, &replacements);
        self.bigmeta
            .note_conversion(table, &sources.iter().map(|(f, _)| *f).collect::<Vec<_>>());
        self.tt.commit_wait(commit_ts);
        Ok(commit_ts)
    }

    /// Atomically commits a DML statement's effects (§7.3): new mask
    /// versions on fragments, tail masks on streamlets, and visibility of
    /// reinserted-row streams — all at one timestamp.
    pub fn commit_dml(
        &self,
        table: TableId,
        fragment_masks: &[(FragmentId, DeletionMask)],
        tail_masks: &[(StreamletId, DeletionMask)],
        reinserted_streams: &[StreamId],
    ) -> VortexResult<Timestamp> {
        self.check_owns(table)?;
        // Reinserted rows live in PENDING streams; finalize them so their
        // contents are authoritative, then flip visibility in the same
        // transaction as the masks.
        for &s in reinserted_streams {
            self.finalize_stream(table, s)?;
        }
        let ts = self.tt.record_timestamp();
        let ((), commit_ts) = self.store.with_txn_at(self.cfg.txn_retries, |txn| {
            for (fid, mask) in fragment_masks {
                let fkey = fragment_key(table, *fid);
                let bytes = txn
                    .get(&fkey)
                    .ok_or_else(|| VortexError::NotFound(format!("fragment {fid}")))?;
                let mut f = FragmentMeta::from_bytes(&bytes)?;
                f.masks.push((ts, mask.clone()));
                txn.put(&fkey, f.to_bytes());
            }
            for (slid, mask) in tail_masks {
                let skey = streamlet_key(table, *slid);
                let bytes = txn
                    .get(&skey)
                    .ok_or_else(|| VortexError::NotFound(format!("streamlet {slid}")))?;
                let mut m = StreamletMeta::from_bytes(&bytes)?;
                m.masks.push((ts, mask.clone()));
                txn.put(&skey, m.to_bytes());
                // Rows that were in the tail at the DML's snapshot may by
                // now live in fragments the heartbeat already finalized;
                // map the mask onto those eagerly (the heartbeat mapping
                // only runs at the Active→Finalized transition, which may
                // have happened mid-statement).
                let frags: Vec<FragmentMeta> = txn
                    .scan_prefix(&fragment_prefix(table))
                    .into_iter()
                    .filter_map(|(_, v)| FragmentMeta::from_bytes(&v).ok())
                    .filter(|f| {
                        f.streamlet == *slid
                            && f.kind == FragmentKind::Wos
                            && f.state == FragmentState::Finalized
                    })
                    .collect();
                for mut f in frags {
                    let local = mask.slice_rebased(f.first_row, f.first_row + f.row_count);
                    if !local.is_empty() {
                        f.masks.push((ts, local));
                        txn.put(&fragment_key(table, f.fragment), f.to_bytes());
                    }
                }
            }
            for &s in reinserted_streams {
                let skey = stream_key(table, s);
                let bytes = txn
                    .get(&skey)
                    .ok_or_else(|| VortexError::NotFound(format!("stream {s}")))?;
                let mut m = StreamMeta::from_bytes(&bytes)?;
                m.committed_at = Some(ts);
                txn.put(&skey, m.to_bytes());
            }
            Ok(())
        })?;
        self.tt.commit_wait(commit_ts);
        Ok(commit_ts)
    }

    /// Physically deletes fragment files whose grace period passed and
    /// drops their metadata — the groomer's sweep (§5.4.3).
    pub fn run_gc(&self, table: TableId) -> VortexResult<usize> {
        let grace = Timestamp(
            self.tt
                .record_timestamp()
                .0
                .saturating_sub(self.cfg.gc_grace_micros),
        );
        let doomed: Vec<FragmentMeta> = self
            .store
            .scan_prefix_at(&fragment_prefix(table), self.store.now())
            .into_iter()
            .filter_map(|(_, v)| FragmentMeta::from_bytes(&v).ok())
            .filter(|f| f.state == FragmentState::Deleted && f.deleted_at <= grace)
            .collect();
        for f in &doomed {
            for c in f.clusters {
                if let Ok(cluster) = self.fleet.get(c) {
                    let _ = cluster.delete(&f.path);
                }
            }
        }
        let n = doomed.len();
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            for f in &doomed {
                txn.delete(&fragment_key(table, f.fragment));
            }
            Ok(())
        })?;
        Ok(n)
    }

    /// Drops a table: removes the name index and the table record. The
    /// data and physical metadata stay behind as orphans for the groomer
    /// (§5.4.3: "user initiated actions such as deletions of tables ...
    /// can trigger garbage collection. As a catch all, a 'groomer' job
    /// runs periodically to detect Fragments, Streams, or Streamlets that
    /// may be orphaned").
    pub fn drop_table(&self, table: TableId) -> VortexResult<()> {
        self.check_owns(table)?;
        self.store.with_txn(self.cfg.txn_retries, |txn| {
            let bytes = txn
                .get(&table_key(table))
                .ok_or_else(|| VortexError::NotFound(format!("table {table}")))?;
            let meta = TableMeta::from_bytes(&bytes)?;
            txn.delete(&format!("tname/{}", meta.name));
            txn.delete(&table_key(table));
            Ok(())
        })
    }

    /// The groomer sweep: finds streams/streamlets/fragments whose table
    /// record no longer exists, deletes their log files and ROS blocks
    /// from storage, and drops their metadata. Returns (entities removed,
    /// files deleted).
    pub fn run_groomer(&self) -> VortexResult<(usize, usize)> {
        let now = self.store.now();
        // Collect orphaned table ids: any `t/{id}/...` child key whose
        // `t/{id}` record is gone.
        let mut orphan_tables = std::collections::HashSet::new();
        for (k, _) in self.store.scan_prefix_at("t/", now) {
            // Keys look like t/{16-hex} or t/{16-hex}/...
            let Some(rest) = k.strip_prefix("t/") else {
                continue;
            };
            let id_hex = &rest[..rest.find('/').unwrap_or(rest.len())];
            let Ok(raw) = u64::from_str_radix(id_hex, 16) else {
                continue;
            };
            let table = TableId::from_raw(raw);
            if rest.contains('/') && self.store.read_at(&table_key(table), now).is_none() {
                orphan_tables.insert(table);
            }
        }
        let mut entities = 0usize;
        let mut files = 0usize;
        for table in orphan_tables {
            // Delete physical files first (fragments name them precisely;
            // the WOS prefix listing catches anything unreported).
            for f in self.list_fragments(table, now) {
                for c in f.clusters {
                    if let Ok(cluster) = self.fleet.get(c) {
                        if cluster.exists(&f.path) && cluster.delete(&f.path).is_ok() {
                            files += 1;
                        }
                    }
                }
            }
            for sl in self.list_streamlets(table) {
                let prefix = wos_streamlet_prefix(table, sl.streamlet);
                for c in sl.clusters {
                    if let Ok(cluster) = self.fleet.get(c) {
                        for p in cluster.list(&prefix).unwrap_or_default() {
                            if cluster.delete(&p).is_ok() {
                                files += 1;
                            }
                        }
                    }
                }
            }
            // Then drop every orphaned metadata key.
            let doomed: Vec<String> = self
                .store
                .scan_prefix_at(&meta::table_prefix(table), now)
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            entities += doomed.len();
            self.store.with_txn(self.cfg.txn_retries, |txn| {
                for k in &doomed {
                    txn.delete(k);
                }
                for (k, _) in txn.scan_prefix(&dml_lock_prefix(table)) {
                    txn.delete(&k);
                }
                Ok(())
            })?;
        }
        Ok((entities, files))
    }

    /// All fragment metadata of a table at a snapshot (diagnostics,
    /// optimizer candidate selection).
    pub fn list_fragments(&self, table: TableId, at: Timestamp) -> Vec<FragmentMeta> {
        self.store
            .scan_prefix_at(&fragment_prefix(table), at)
            .into_iter()
            .filter_map(|(_, v)| FragmentMeta::from_bytes(&v).ok())
            .collect()
    }

    /// All streamlet metadata of a table (diagnostics).
    pub fn list_streamlets(&self, table: TableId) -> Vec<StreamletMeta> {
        self.store
            .scan_prefix_at(&streamlet_prefix(table), self.store.now())
            .into_iter()
            .filter_map(|(_, v)| StreamletMeta::from_bytes(&v).ok())
            .collect()
    }
}

impl std::fmt::Debug for SmsTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmsTask")
            .field("task", &self.cfg.task)
            .field("cluster", &self.cfg.cluster)
            .finish_non_exhaustive()
    }
}
