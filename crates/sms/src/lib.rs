//! The Vortex control plane: Stream Metadata Server (SMS), Slicer-style
//! sharding, Big Metadata, and the disaster-recovery reconciliation
//! protocol.
//!
//! "The Stream Metadata Server (SMS) is the control plane of Vortex. It
//! manages the physical metadata of Streams, Streamlets and Fragments and
//! is backed by a Spanner database which also stores the table's logical
//! metadata." (§5.2)
//!
//! Responsibilities implemented here:
//!
//! - table/stream lifecycle: create tables, hand out writable Streams and
//!   Streamlets, pick Stream Servers by load (§5.2), flush BUFFERED
//!   streams, atomically commit PENDING streams (§4.2.4), finalize;
//! - heartbeat intake (§5.5): fragment deltas, load reports, full-state
//!   snapshots with age-guarded orphan deletion (§5.4.3);
//! - the **read path metadata**: `list_read_fragments` returns the union
//!   of ROS blocks and WOS fragments visible at a snapshot plus the
//!   unfinalized streamlet tails the SMS doesn't know about yet (§7);
//! - **reconciliation** (§5.6/§7.1): inspect replica log files, poison
//!   zombie writers with sentinel records, record the reconciled length;
//! - conversion commits for the Storage Optimizer: atomically flip
//!   `deletion_timestamp`/`creation_timestamp` so every row is read
//!   exactly once (§6.1);
//! - DML commits: versioned deletion masks on fragments and streamlet
//!   tails, with reinserted rows made visible atomically (§7.3);
//! - Slicer-style eventually-consistent table→task assignment whose
//!   double-ownership hazard is neutralized by metastore transactions
//!   (§5.2.1);
//! - Big Metadata (§6.2): a column-property index over optimized
//!   fragments with a compaction watermark over the live tail.

#![warn(missing_docs)]

pub mod api;
pub mod bigmeta;
pub mod heartbeat;
pub mod meta;
pub mod readset;
pub mod server_ctl;
pub mod slicer;
pub mod sms;

#[cfg(test)]
mod tests;

pub use api::{ServerChannel, SmsApi, SmsChannel, SmsHandle};
pub use heartbeat::{FragmentDelta, HeartbeatReport, HeartbeatResponse, StreamletDelta};
pub use meta::{
    FragmentKind, FragmentMeta, FragmentState, StreamMeta, StreamType, StreamletMeta,
    StreamletState, TableMeta,
};
pub use readset::{FragmentReadSpec, ReadSet, TailReadSpec};
pub use server_ctl::{AppendAck, LoadReport, ServerHandle, StreamServerApi, StreamletSpec};
pub use sms::{DmlTicket, SmsConfig, SmsTask, StreamHandle};
