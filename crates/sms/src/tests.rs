//! Control-plane tests: SMS lifecycle, heartbeats, read sets,
//! reconciliation, conversion/DML commits, and double-ownership safety.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use vortex_colossus::StorageFleet;
use vortex_common::bloom::BloomFilter;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{ClusterId, FragmentId, IdGen, ServerId, StreamletId, TableId};
use vortex_common::latency::WriteProfile;
use vortex_common::mask::DeletionMask;
use vortex_common::row::{Row, RowSet, Value};
use vortex_common::schema::{sales_schema, Field, FieldType, Schema};
use vortex_common::truetime::{SimClock, Timestamp, TrueTime};
use vortex_metastore::MetaStore;
use vortex_wos::{FragmentConfig, FragmentWriter};

use crate::heartbeat::{FragmentDelta, HeartbeatReport, StreamletDelta};
use crate::meta::{
    wos_path, FragmentKind, FragmentMeta, FragmentState, StreamType, StreamletState,
};
use crate::server_ctl::{LoadReport, StreamServerApi, StreamletSpec};
use crate::sms::{SmsConfig, SmsTask};

/// A scriptable in-memory Stream Server for control-plane tests.
struct MockServer {
    id: ServerId,
    cluster: ClusterId,
    specs: Mutex<Vec<StreamletSpec>>,
    live_rows: Mutex<HashMap<StreamletId, u64>>,
    schema_notices: Mutex<Vec<(TableId, u32)>>,
    revoked: Mutex<Vec<StreamletId>>,
    fail_create: AtomicBool,
    load_streamlets: AtomicU64,
    quarantined: AtomicBool,
}

impl MockServer {
    fn new(id: u64, cluster: u64) -> Arc<Self> {
        Arc::new(Self {
            id: ServerId::from_raw(id),
            cluster: ClusterId::from_raw(cluster),
            specs: Mutex::new(vec![]),
            live_rows: Mutex::new(HashMap::new()),
            schema_notices: Mutex::new(vec![]),
            revoked: Mutex::new(vec![]),
            fail_create: AtomicBool::new(false),
            load_streamlets: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
        })
    }
}

impl StreamServerApi for MockServer {
    fn server_id(&self) -> ServerId {
        self.id
    }

    fn cluster(&self) -> ClusterId {
        self.cluster
    }

    fn create_streamlet(&self, spec: StreamletSpec) -> VortexResult<()> {
        if self.fail_create.load(Ordering::SeqCst) {
            return Err(VortexError::Unavailable("mock create failure".into()));
        }
        self.specs.lock().push(spec);
        self.load_streamlets.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn load(&self) -> LoadReport {
        LoadReport {
            streamlets: self.load_streamlets.load(Ordering::SeqCst),
            append_bytes_per_sec: 0.0,
            in_flight_bytes: 0,
            quarantined: self.quarantined.load(Ordering::SeqCst),
        }
    }

    fn streamlet_rows(&self, streamlet: StreamletId) -> Option<u64> {
        self.live_rows.lock().get(&streamlet).copied()
    }

    fn notify_schema_version(&self, table: TableId, version: u32) {
        self.schema_notices.lock().push((table, version));
    }

    fn gc_fragments(
        &self,
        _table: TableId,
        _streamlet: StreamletId,
        ordinals: Vec<u32>,
    ) -> VortexResult<Vec<u32>> {
        Ok(ordinals)
    }

    fn revoke_streamlet(&self, streamlet: StreamletId) {
        self.revoked.lock().push(streamlet);
    }

    fn finalize_streamlet_ctl(&self, _streamlet: StreamletId) -> VortexResult<()> {
        Ok(())
    }
}

struct Rig {
    sms: Arc<SmsTask>,
    fleet: StorageFleet,
    clock: SimClock,
    tt: TrueTime,
    servers: Vec<Arc<MockServer>>,
}

fn rig_with_servers(n: usize) -> Rig {
    let clock = SimClock::new(1_000_000);
    let tt = TrueTime::simulated(clock.clone(), 100, 0);
    let fleet = StorageFleet::with_mem_clusters(2, WriteProfile::instant(), 7);
    let store = MetaStore::new(tt.clone());
    let ids = Arc::new(IdGen::new(1));
    let sms = SmsTask::new(
        SmsConfig::new(
            vortex_common::ids::SmsTaskId::from_raw(0),
            ClusterId::from_raw(0),
        ),
        store,
        fleet.clone(),
        tt.clone(),
        ids,
        None,
    );
    let mut servers = vec![];
    for i in 0..n {
        let s = MockServer::new(100 + i as u64, (i % 2) as u64);
        sms.register_server(s.clone());
        servers.push(s);
    }
    Rig {
        sms,
        fleet,
        clock,
        tt,
        servers,
    }
}

fn simple_schema() -> Schema {
    Schema::new(vec![
        Field::required("k", FieldType::Int64),
        Field::required("v", FieldType::String),
    ])
}

#[test]
fn create_table_assigns_clusters_and_rejects_duplicates() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("sales", sales_schema()).unwrap();
    assert_ne!(t.primary, t.secondary);
    assert!(r.sms.create_table("sales", sales_schema()).is_err());
    let by_name = r.sms.get_table_by_name("sales").unwrap();
    assert_eq!(by_name.table, t.table);
    assert!(r.sms.get_table_by_name("nope").is_err());
}

#[test]
fn create_stream_hands_out_writable_streamlet() {
    let r = rig_with_servers(2);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    assert_eq!(h.streamlet.state, StreamletState::Writable);
    assert_eq!(h.streamlet.ordinal, 0);
    assert_eq!(h.streamlet.first_stream_row, 0);
    assert_eq!(h.schema.version, 1);
    // The chosen server got a create_streamlet instruction.
    let total_specs: usize = r.servers.iter().map(|s| s.specs.lock().len()).sum();
    assert_eq!(total_specs, 1);
}

#[test]
fn placement_prefers_least_loaded_server() {
    let r = rig_with_servers(2);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    // Bias server 0 to be busy.
    r.servers[0].load_streamlets.store(100, Ordering::SeqCst);
    for _ in 0..4 {
        r.sms
            .create_stream(t.table, StreamType::Unbuffered)
            .unwrap();
    }
    assert!(r.servers[1].specs.lock().len() >= 3);
}

#[test]
fn quarantined_server_gets_no_streamlets() {
    let r = rig_with_servers(2);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    r.servers[0].quarantined.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        r.sms
            .create_stream(t.table, StreamType::Unbuffered)
            .unwrap();
    }
    assert_eq!(r.servers[0].specs.lock().len(), 0);
    assert_eq!(r.servers[1].specs.lock().len(), 3);
}

#[test]
fn failed_create_retries_on_another_server() {
    let r = rig_with_servers(2);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    r.servers[0].fail_create.store(true, Ordering::SeqCst);
    r.servers[1].fail_create.store(false, Ordering::SeqCst);
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    assert_eq!(h.server.server_id(), r.servers[1].id);
}

#[test]
fn schema_update_notifies_servers_and_bumps_version() {
    let r = rig_with_servers(2);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let evolved = t
        .schema
        .evolve_add_column(Field::nullable("extra", FieldType::Json))
        .unwrap();
    let updated = r.sms.update_schema(t.table, evolved).unwrap();
    assert_eq!(updated.schema.version, 2);
    for s in &r.servers {
        assert_eq!(s.schema_notices.lock().as_slice(), &[(t.table, 2)]);
    }
    // Downgrades rejected.
    assert!(r.sms.update_schema(t.table, simple_schema()).is_err());
}

/// Writes a WOS fragment with `n` rows directly to both replicas,
/// mirroring what a Stream Server does, so reconciliation has real log
/// files to inspect. Returns the logical size.
#[allow(clippy::too_many_arguments)]
fn write_fragment(
    r: &Rig,
    table: TableId,
    streamlet: StreamletId,
    ordinal: u32,
    first_row: u64,
    n: usize,
    key: &vortex_common::crypt::Key,
    clusters: [ClusterId; 2],
    commit: bool,
) -> u64 {
    let cfg = FragmentConfig {
        streamlet,
        fragment: FragmentId::from_raw(50_000 + ordinal as u64 + streamlet.raw() * 100),
        ordinal,
        schema_version: 1,
        key: key.clone(),
    };
    let (mut w, mut bytes) = FragmentWriter::new(cfg, first_row, vec![], r.tt.record_timestamp());
    let rows = RowSet::new(
        (0..n)
            .map(|i| {
                Row::insert(vec![
                    Value::Int64((first_row + i as u64) as i64),
                    Value::String(format!("v{}", first_row + i as u64)),
                ])
            })
            .collect(),
    );
    bytes.extend(w.data_block(&rows.rows, r.tt.record_timestamp()).unwrap());
    if commit {
        bytes.extend(w.commit_record(r.tt.record_timestamp()).unwrap());
    }
    let path = wos_path(table, streamlet, ordinal);
    for c in clusters {
        r.fleet
            .get(c)
            .unwrap()
            .append(&path, &bytes, Timestamp(0))
            .unwrap();
    }
    w.logical_size()
}

#[test]
fn reconcile_determines_length_and_finalizes() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        0,
        0,
        10,
        &key,
        h.streamlet.clusters,
        true,
    );
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        1,
        10,
        5,
        &key,
        h.streamlet.clusters,
        true,
    );

    let m = r
        .sms
        .reconcile_streamlet(t.table, h.streamlet.streamlet)
        .unwrap();
    assert_eq!(m.state, StreamletState::Finalized);
    assert_eq!(m.row_count, 15);
    assert_eq!(m.known_fragments, 2);
    assert!(m.epoch > h.streamlet.epoch);
    // Idempotent.
    let m2 = r
        .sms
        .reconcile_streamlet(t.table, h.streamlet.streamlet)
        .unwrap();
    assert_eq!(m2.row_count, 15);
    // Fragments recorded with authoritative sizes.
    let frags = r.sms.list_fragments(t.table, r.sms.read_snapshot());
    let wos: Vec<_> = frags
        .iter()
        .filter(|f| f.kind == FragmentKind::Wos)
        .collect();
    assert_eq!(wos.len(), 2);
    assert!(wos.iter().all(|f| f.state == FragmentState::Finalized));
    assert_eq!(wos.iter().map(|f| f.row_count).sum::<u64>(), 15);
}

#[test]
fn reconcile_with_diverged_replicas_takes_common_prefix() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    let slid = h.streamlet.streamlet;
    // Both replicas share 8 rows; replica 0 has an extra *unacked* block.
    write_fragment(&r, t.table, slid, 0, 0, 8, &key, h.streamlet.clusters, true);
    let cfg = FragmentConfig {
        streamlet: slid,
        fragment: FragmentId::from_raw(60_000),
        ordinal: 1,
        schema_version: 1,
        key: key.clone(),
    };
    let (mut w, mut frag1) = FragmentWriter::new(cfg, 8, vec![], r.tt.record_timestamp());
    let rows = RowSet::new(vec![Row::insert(vec![
        Value::Int64(8),
        Value::String("divergent".into()),
    ])]);
    let block = w.data_block(&rows.rows, r.tt.record_timestamp()).unwrap();
    // Replica 0 gets header+block; replica 1 gets only the header.
    let header_only = frag1.clone();
    frag1.extend(block);
    let path = wos_path(t.table, slid, 1);
    r.fleet
        .get(h.streamlet.clusters[0])
        .unwrap()
        .append(&path, &frag1, Timestamp(0))
        .unwrap();
    r.fleet
        .get(h.streamlet.clusters[1])
        .unwrap()
        .append(&path, &header_only, Timestamp(0))
        .unwrap();

    let m = r.sms.reconcile_streamlet(t.table, slid).unwrap();
    // The divergent (single-replica, unacked) row is excluded.
    assert_eq!(m.row_count, 8);
}

#[test]
fn reconcile_with_one_cluster_down_uses_surviving_replica() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        0,
        0,
        12,
        &key,
        h.streamlet.clusters,
        true,
    );
    // Take down the second replica cluster.
    r.fleet
        .get(h.streamlet.clusters[1])
        .unwrap()
        .faults()
        .set_unavailable(true);
    let m = r
        .sms
        .reconcile_streamlet(t.table, h.streamlet.streamlet)
        .unwrap();
    assert_eq!(m.row_count, 12);
}

#[test]
fn rotate_streamlet_continues_stream_offsets() {
    let r = rig_with_servers(2);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        0,
        0,
        20,
        &key,
        h.streamlet.clusters,
        true,
    );
    let h2 = r.sms.rotate_streamlet(t.table, h.stream.stream).unwrap();
    assert_eq!(h2.streamlet.ordinal, 1);
    assert_eq!(h2.streamlet.first_stream_row, 20);
    assert_ne!(h2.streamlet.streamlet, h.streamlet.streamlet);
    // The old streamlet is finalized.
    let old = r.sms.get_streamlet(t.table, h.streamlet.streamlet).unwrap();
    assert_eq!(old.state, StreamletState::Finalized);
}

#[test]
fn finalized_stream_cannot_rotate() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    r.sms.finalize_stream(t.table, h.stream.stream).unwrap();
    assert!(matches!(
        r.sms.rotate_streamlet(t.table, h.stream.stream),
        Err(VortexError::StreamFinalized(_))
    ));
}

fn heartbeat_one_fragment(
    r: &Rig,
    h: &crate::sms::StreamHandle,
    fragment: FragmentId,
    rows: u64,
    finalized: bool,
) {
    let report = HeartbeatReport {
        server: h.server.server_id(),
        load: LoadReport::default(),
        streamlets: vec![StreamletDelta {
            table: h.table,
            streamlet: h.streamlet.streamlet,
            fragments: vec![FragmentDelta {
                fragment,
                ordinal: 0,
                first_row: 0,
                row_count: rows,
                committed_size: 1000,
                finalized,
                stats: vec![],
                ts_range: None,
            }],
            row_count: rows,
            max_flush_row: None,
            finalized: false,
        }],
        full_state: false,
    };
    r.sms.heartbeat(&report).unwrap();
}

#[test]
fn heartbeat_registers_fragments_and_updates_counts() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    heartbeat_one_fragment(&r, &h, FragmentId::from_raw(900), 7, false);
    let sl = r.sms.get_streamlet(t.table, h.streamlet.streamlet).unwrap();
    assert_eq!(sl.row_count, 7);
    let frags = r.sms.list_fragments(t.table, r.sms.read_snapshot());
    assert_eq!(frags.len(), 1);
    assert_eq!(frags[0].state, FragmentState::Active);
    // Second heartbeat finalizes it.
    heartbeat_one_fragment(&r, &h, FragmentId::from_raw(900), 9, true);
    let frags = r.sms.list_fragments(t.table, r.sms.read_snapshot());
    assert_eq!(frags[0].state, FragmentState::Finalized);
    assert_eq!(frags[0].row_count, 9);
    let sl = r.sms.get_streamlet(t.table, h.streamlet.streamlet).unwrap();
    assert_eq!(sl.known_fragments, 1);
}

#[test]
fn heartbeat_for_unknown_streamlet_flags_orphan() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let report = HeartbeatReport {
        server: ServerId::from_raw(100),
        load: LoadReport::default(),
        streamlets: vec![StreamletDelta {
            table: t.table,
            streamlet: StreamletId::from_raw(424242),
            fragments: vec![],
            row_count: 0,
            max_flush_row: None,
            finalized: false,
        }],
        full_state: true,
    };
    let resp = r.sms.heartbeat(&report).unwrap();
    assert_eq!(resp.unknown_streamlets, vec![StreamletId::from_raw(424242)]);
}

#[test]
fn read_set_includes_finalized_fragments_and_tail() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    heartbeat_one_fragment(&r, &h, FragmentId::from_raw(901), 5, true);
    let rs = r
        .sms
        .list_read_fragments(t.table, r.sms.read_snapshot())
        .unwrap();
    assert_eq!(rs.fragments.len(), 1);
    assert_eq!(rs.tails.len(), 1);
    let tail = &rs.tails[0];
    assert_eq!(tail.from_ordinal, 1);
    assert_eq!(tail.from_row, 5);
    assert_eq!(rs.known_rows(), 5);
}

#[test]
fn pending_stream_invisible_until_committed() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r.sms.create_stream(t.table, StreamType::Pending).unwrap();
    let key = t.encryption_key();
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        0,
        0,
        4,
        &key,
        h.streamlet.clusters,
        true,
    );
    heartbeat_one_fragment(&r, &h, FragmentId::from_raw(902), 4, true);
    let before = r
        .sms
        .list_read_fragments(t.table, r.sms.read_snapshot())
        .unwrap();
    assert!(before.fragments.is_empty(), "pending data must be hidden");
    assert!(before.tails.is_empty());

    let commit_ts = r
        .sms
        .batch_commit_streams(t.table, &[h.stream.stream])
        .unwrap();
    // Before the commit timestamp: still hidden.
    let at_old = r
        .sms
        .list_read_fragments(t.table, commit_ts.minus_micros(1))
        .unwrap();
    assert!(at_old.fragments.is_empty());
    // After: visible, with a nontrivial visible_from at or before the
    // commit timestamp.
    let after = r
        .sms
        .list_read_fragments(t.table, r.sms.read_snapshot())
        .unwrap();
    assert_eq!(after.fragments.len(), 1);
    let vf = after.fragments[0].visibility.visible_from;
    assert!(vf > Timestamp::MIN && vf <= commit_ts);
}

#[test]
fn batch_commit_is_atomic_across_streams() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let key = t.encryption_key();
    let mut streams = vec![];
    for _ in 0..3 {
        let h = r.sms.create_stream(t.table, StreamType::Pending).unwrap();
        write_fragment(
            &r,
            t.table,
            h.streamlet.streamlet,
            0,
            0,
            2,
            &key,
            h.streamlet.clusters,
            true,
        );
        streams.push(h.stream.stream);
    }
    r.sms.batch_commit_streams(t.table, &streams).unwrap();
    let metas: Vec<_> = streams
        .iter()
        .map(|s| r.sms.get_stream(t.table, *s).unwrap())
        .collect();
    let ts0 = metas[0].committed_at.unwrap();
    assert!(
        metas.iter().all(|m| m.committed_at == Some(ts0)),
        "all streams commit at one timestamp"
    );
    // Committing a non-pending stream fails.
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    assert!(r
        .sms
        .batch_commit_streams(t.table, &[h.stream.stream])
        .is_err());
}

#[test]
fn flush_stream_validates_and_advances_watermark() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r.sms.create_stream(t.table, StreamType::Buffered).unwrap();
    // Mock server reports 10 live rows.
    r.servers[0]
        .live_rows
        .lock()
        .insert(h.streamlet.streamlet, 10);
    r.sms.flush_stream(t.table, h.stream.stream, 7).unwrap();
    // Idempotent + monotone.
    r.sms.flush_stream(t.table, h.stream.stream, 7).unwrap();
    r.sms.flush_stream(t.table, h.stream.stream, 5).unwrap();
    let m = r.sms.get_stream(t.table, h.stream.stream).unwrap();
    assert_eq!(m.flushed_row, 7);
    // Beyond the live length: error (§4.2.3).
    assert!(r.sms.flush_stream(t.table, h.stream.stream, 11).is_err());
    // Unbuffered streams cannot be flushed.
    let h2 = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    assert!(r.sms.flush_stream(t.table, h2.stream.stream, 0).is_err());
}

#[test]
fn buffered_visibility_limits_reads_to_flush_watermark() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r.sms.create_stream(t.table, StreamType::Buffered).unwrap();
    r.servers[0]
        .live_rows
        .lock()
        .insert(h.streamlet.streamlet, 10);
    heartbeat_one_fragment(&r, &h, FragmentId::from_raw(903), 10, true);
    r.sms.flush_stream(t.table, h.stream.stream, 6).unwrap();
    let rs = r
        .sms
        .list_read_fragments(t.table, r.sms.read_snapshot())
        .unwrap();
    assert_eq!(rs.fragments.len(), 1);
    assert_eq!(rs.fragments[0].visibility.flush_limit, Some(6));
}

fn make_ros_meta(_r: &Rig, table: TableId, id: u64, rows: u64) -> FragmentMeta {
    FragmentMeta {
        fragment: FragmentId::from_raw(id),
        table,
        streamlet: StreamletId::from_raw(0),
        kind: FragmentKind::Ros,
        ordinal: 0,
        first_row: 0,
        row_count: rows,
        committed_size: 100,
        state: FragmentState::Finalized,
        created_at: Timestamp::MIN,
        deleted_at: Timestamp::MAX,
        clusters: [ClusterId::from_raw(0), ClusterId::from_raw(1)],
        path: format!("ros/t/b{id}"),
        stats: vec![],
        masks: vec![],
        partition_key: None,
        level: 1,
    }
    .clone()
}

#[test]
fn conversion_commit_swaps_visibility_atomically() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        0,
        0,
        10,
        &key,
        h.streamlet.clusters,
        true,
    );
    r.sms
        .reconcile_streamlet(t.table, h.streamlet.streamlet)
        .unwrap();
    let wos_frag = r
        .sms
        .list_fragments(t.table, r.sms.read_snapshot())
        .into_iter()
        .find(|f| f.kind == FragmentKind::Wos)
        .unwrap();
    let before_ts = r.sms.read_snapshot();

    let ros = make_ros_meta(&r, t.table, 7000, 10);
    let commit_ts = r
        .sms
        .commit_conversion(
            t.table,
            &[(wos_frag.fragment, wos_frag.masks.len())],
            vec![ros],
            true,
        )
        .unwrap();

    // At the old snapshot: WOS only.
    let old = r.sms.list_read_fragments(t.table, before_ts).unwrap();
    let kinds: Vec<_> = old.fragments.iter().map(|f| f.meta.kind).collect();
    assert_eq!(kinds, vec![FragmentKind::Wos]);
    // After: ROS only.
    let new = r
        .sms
        .list_read_fragments(t.table, r.sms.read_snapshot())
        .unwrap();
    let kinds: Vec<_> = new.fragments.iter().map(|f| f.meta.kind).collect();
    assert_eq!(kinds, vec![FragmentKind::Ros]);
    assert!(commit_ts > before_ts);
    // Double conversion of the same source conflicts.
    let ros2 = make_ros_meta(&r, t.table, 7001, 10);
    assert!(r
        .sms
        .commit_conversion(
            t.table,
            &[(wos_frag.fragment, wos_frag.masks.len())],
            vec![ros2],
            true
        )
        .is_err());
}

#[test]
fn optimizer_yields_to_dml() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        0,
        0,
        5,
        &key,
        h.streamlet.clusters,
        true,
    );
    r.sms
        .reconcile_streamlet(t.table, h.streamlet.streamlet)
        .unwrap();
    let wos_frag = r
        .sms
        .list_fragments(t.table, r.sms.read_snapshot())
        .into_iter()
        .find(|f| f.kind == FragmentKind::Wos)
        .unwrap();

    let ticket = r.sms.begin_dml(t.table).unwrap();
    assert!(r.sms.dml_active(t.table));
    let ros = make_ros_meta(&r, t.table, 7100, 5);
    // Merged conversion yields.
    assert!(matches!(
        r.sms.commit_conversion(
            t.table,
            &[(wos_frag.fragment, wos_frag.masks.len())],
            vec![ros.clone()],
            true
        ),
        Err(VortexError::Unavailable(_))
    ));
    // Stable 1:1 conversion does not (§7.3).
    r.sms
        .commit_conversion(
            t.table,
            &[(wos_frag.fragment, wos_frag.masks.len())],
            vec![ros],
            false,
        )
        .unwrap();
    r.sms.end_dml(t.table, ticket).unwrap();
    assert!(!r.sms.dml_active(t.table));
}

#[test]
fn nested_dml_lock_counts() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let first = r.sms.begin_dml(t.table).unwrap();
    let second = r.sms.begin_dml(t.table).unwrap();
    r.sms.end_dml(t.table, first).unwrap();
    assert!(r.sms.dml_active(t.table), "still one statement running");
    r.sms.end_dml(t.table, second).unwrap();
    assert!(!r.sms.dml_active(t.table));
}

#[test]
fn dml_commit_applies_versioned_masks() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        0,
        0,
        10,
        &key,
        h.streamlet.clusters,
        true,
    );
    r.sms
        .reconcile_streamlet(t.table, h.streamlet.streamlet)
        .unwrap();
    let frag = r
        .sms
        .list_fragments(t.table, r.sms.read_snapshot())
        .into_iter()
        .find(|f| f.kind == FragmentKind::Wos)
        .unwrap();
    let before = r.sms.read_snapshot();

    let mask = DeletionMask::from_range(2, 5);
    r.sms
        .commit_dml(t.table, &[(frag.fragment, mask)], &[], &[])
        .unwrap();

    // Old snapshot: no mask.
    let old = r.sms.list_read_fragments(t.table, before).unwrap();
    assert!(old.fragments[0].mask.is_empty());
    // New snapshot: mask applies.
    let new = r
        .sms
        .list_read_fragments(t.table, r.sms.read_snapshot())
        .unwrap();
    assert_eq!(new.fragments[0].mask.deleted_count(), 3);
}

#[test]
fn tail_mask_maps_to_fragment_on_heartbeat() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    // DML deletes streamlet tail rows [3, 8) before any heartbeat.
    r.sms
        .commit_dml(
            t.table,
            &[],
            &[(h.streamlet.streamlet, DeletionMask::from_range(3, 8))],
            &[],
        )
        .unwrap();
    // Now a heartbeat reports fragment 0 with rows [0, 10) finalized.
    heartbeat_one_fragment(&r, &h, FragmentId::from_raw(905), 10, true);
    let rs = r
        .sms
        .list_read_fragments(t.table, r.sms.read_snapshot())
        .unwrap();
    assert_eq!(rs.fragments.len(), 1);
    assert_eq!(
        rs.fragments[0].mask.ranges(),
        &[(3, 8)],
        "streamlet tail mask mapped onto the fragment"
    );
}

#[test]
fn gc_deletes_files_after_grace() {
    let r = rig_with_servers(1);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let h = r
        .sms
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    write_fragment(
        &r,
        t.table,
        h.streamlet.streamlet,
        0,
        0,
        5,
        &key,
        h.streamlet.clusters,
        true,
    );
    r.sms
        .reconcile_streamlet(t.table, h.streamlet.streamlet)
        .unwrap();
    let wos_frag = r
        .sms
        .list_fragments(t.table, r.sms.read_snapshot())
        .into_iter()
        .find(|f| f.kind == FragmentKind::Wos)
        .unwrap();
    let ros = make_ros_meta(&r, t.table, 7200, 5);
    r.sms
        .commit_conversion(
            t.table,
            &[(wos_frag.fragment, wos_frag.masks.len())],
            vec![ros],
            true,
        )
        .unwrap();
    // Within grace: nothing GC'd.
    assert_eq!(r.sms.run_gc(t.table).unwrap(), 0);
    assert!(r
        .fleet
        .get(h.streamlet.clusters[0])
        .unwrap()
        .exists(&wos_frag.path));
    // Advance past grace (10 virtual seconds).
    r.clock.advance(20_000_000);
    assert_eq!(r.sms.run_gc(t.table).unwrap(), 1);
    assert!(!r
        .fleet
        .get(h.streamlet.clusters[0])
        .unwrap()
        .exists(&wos_frag.path));
    // Metadata gone too.
    let frags = r.sms.list_fragments(t.table, r.sms.read_snapshot());
    assert!(frags.iter().all(|f| f.fragment != wos_frag.fragment));
}

#[test]
fn failover_swaps_clusters() {
    let r = rig_with_servers(2);
    let t = r.sms.create_table("t", simple_schema()).unwrap();
    let flipped = r.sms.fail_over_table(t.table).unwrap();
    assert_eq!(flipped.primary, t.secondary);
    assert_eq!(flipped.secondary, t.primary);
}

#[test]
fn double_ownership_stays_correct_via_txns() {
    // Two SMS tasks over the SAME metastore both believe they own the
    // table (the Slicer hazard, §5.2.1). Concurrent conversion commits of
    // the same source fragment: exactly one wins.
    let clock = SimClock::new(1_000_000);
    let tt = TrueTime::simulated(clock.clone(), 100, 0);
    let fleet = StorageFleet::with_mem_clusters(2, WriteProfile::instant(), 7);
    let store = MetaStore::new(tt.clone());
    let ids = Arc::new(IdGen::new(1));
    let mk = |task_id: u64| {
        SmsTask::new(
            SmsConfig::new(
                vortex_common::ids::SmsTaskId::from_raw(task_id),
                ClusterId::from_raw(0),
            ),
            Arc::clone(&store),
            fleet.clone(),
            tt.clone(),
            Arc::clone(&ids),
            None,
        )
    };
    let sms_a = mk(0);
    let sms_b = mk(1);
    let server = MockServer::new(100, 0);
    sms_a.register_server(server.clone());
    sms_b.register_server(server);

    let t = sms_a.create_table("t", simple_schema()).unwrap();
    let h = sms_a
        .create_stream(t.table, StreamType::Unbuffered)
        .unwrap();
    let key = t.encryption_key();
    // Write directly (mock server doesn't).
    let cfg = FragmentConfig {
        streamlet: h.streamlet.streamlet,
        fragment: FragmentId::from_raw(80_000),
        ordinal: 0,
        schema_version: 1,
        key: key.clone(),
    };
    let (mut w, mut bytes) = FragmentWriter::new(cfg, 0, vec![], tt.record_timestamp());
    let rows = RowSet::new(vec![Row::insert(vec![
        Value::Int64(1),
        Value::String("x".into()),
    ])]);
    bytes.extend(w.data_block(&rows.rows, tt.record_timestamp()).unwrap());
    bytes.extend(w.commit_record(tt.record_timestamp()).unwrap());
    let path = wos_path(t.table, h.streamlet.streamlet, 0);
    for c in h.streamlet.clusters {
        fleet
            .get(c)
            .unwrap()
            .append(&path, &bytes, Timestamp(0))
            .unwrap();
    }
    sms_a
        .reconcile_streamlet(t.table, h.streamlet.streamlet)
        .unwrap();
    let frag = sms_a
        .list_fragments(t.table, sms_a.read_snapshot())
        .into_iter()
        .find(|f| f.kind == FragmentKind::Wos)
        .unwrap();

    // Both tasks race to convert the same fragment.
    let ros_a = FragmentMeta {
        fragment: FragmentId::from_raw(81_000),
        ..make_meta_template(t.table)
    };
    let ros_b = FragmentMeta {
        fragment: FragmentId::from_raw(81_001),
        ..make_meta_template(t.table)
    };
    let ra = sms_a.commit_conversion(
        t.table,
        &[(frag.fragment, frag.masks.len())],
        vec![ros_a],
        true,
    );
    let rb = sms_b.commit_conversion(
        t.table,
        &[(frag.fragment, frag.masks.len())],
        vec![ros_b],
        true,
    );
    assert!(
        ra.is_ok() ^ rb.is_ok(),
        "exactly one conversion must win: a={ra:?} b={rb:?}"
    );
    // Exactly one live ROS fragment results.
    let live_ros: Vec<_> = sms_a
        .list_fragments(t.table, sms_a.read_snapshot())
        .into_iter()
        .filter(|f| f.kind == FragmentKind::Ros && f.state != FragmentState::Deleted)
        .collect();
    assert_eq!(live_ros.len(), 1);
}

fn make_meta_template(table: TableId) -> FragmentMeta {
    FragmentMeta {
        fragment: FragmentId::from_raw(0),
        table,
        streamlet: StreamletId::from_raw(0),
        kind: FragmentKind::Ros,
        ordinal: 0,
        first_row: 0,
        row_count: 1,
        committed_size: 10,
        state: FragmentState::Finalized,
        created_at: Timestamp::MIN,
        deleted_at: Timestamp::MAX,
        clusters: [ClusterId::from_raw(0), ClusterId::from_raw(1)],
        path: "ros/race".into(),
        stats: vec![],
        masks: vec![],
        partition_key: None,
        level: 1,
    }
}

#[test]
fn bloom_helper_available_for_future_extension() {
    // Smoke check that the bloom type is usable here (fragment pruning
    // tests live in the query crate).
    let mut b = BloomFilter::with_capacity(4, 0.1);
    b.insert(b"x");
    assert!(b.may_contain(b"x"));
}
