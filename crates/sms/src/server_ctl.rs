//! [`StreamServerApi`]: the complete service surface of a Stream Server.
//!
//! The SMS "picks a Stream Server based on load and health characteristics
//! and instructs it to create the Streamlet" (§5.2), and clients append to
//! "the address of the Stream Server" the SMS handed out. The concrete
//! server lives in the `vortex-server` crate (which depends on this one),
//! so both directions — SMS→server control and client→server data plane —
//! are expressed as one trait implemented there and registered with each
//! [`crate::SmsTask`]. Consumers hold a [`ServerHandle`], normally the
//! channel-wrapped [`crate::api::ServerChannel`], never the concrete type.

use std::sync::Arc;

use vortex_common::crypt::Key;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{ClusterId, ServerId, StreamId, StreamletId, TableId};
use vortex_common::row::RowSet;
use vortex_common::schema::Schema;
use vortex_common::truetime::Timestamp;

use crate::heartbeat::{HeartbeatReport, HeartbeatResponse};

/// Acknowledgement of a successful append (§4.2.2).
#[derive(Debug, Clone, Copy)]
pub struct AppendAck {
    /// Stream-level row offset of the first appended row.
    pub first_stream_row: u64,
    /// Rows appended.
    pub row_count: u64,
    /// Virtual completion time (max over both replica writes, queued on
    /// the log file).
    pub completion: Timestamp,
    /// Total sampled service time in microseconds.
    pub service_us: u64,
}

/// Everything a Stream Server needs to host a new streamlet.
#[derive(Debug, Clone)]
pub struct StreamletSpec {
    /// Owning table.
    pub table: TableId,
    /// Owning stream.
    pub stream: StreamId,
    /// The streamlet to create.
    pub streamlet: StreamletId,
    /// Replica clusters to write log files to.
    pub clusters: [ClusterId; 2],
    /// Schema (for validation and column properties).
    pub schema: Schema,
    /// Stream-level row offset where the streamlet begins.
    pub first_stream_row: u64,
    /// Table encryption key.
    pub key: Key,
    /// Ownership epoch (monotone per streamlet; zombies hold stale
    /// epochs).
    pub epoch: u64,
}

/// Load characteristics a Stream Server reports alongside each heartbeat
/// (§5.5: "CPU, memory and append throughput" + quarantine status).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Writable streamlets currently hosted.
    pub streamlets: u64,
    /// Append throughput, bytes/sec (moving average).
    pub append_bytes_per_sec: f64,
    /// In-flight (uncommitted) bytes held in memory.
    pub in_flight_bytes: u64,
    /// Quarantined servers receive no new streamlets (rollouts, scale
    /// downs).
    pub quarantined: bool,
}

impl Default for LoadReport {
    fn default() -> Self {
        LoadReport {
            streamlets: 0,
            append_bytes_per_sec: 0.0,
            in_flight_bytes: 0,
            quarantined: false,
        }
    }
}

impl LoadReport {
    /// Scalar load score for placement: fewer streamlets and less traffic
    /// rank first; quarantined servers rank last.
    pub fn score(&self) -> f64 {
        if self.quarantined {
            return f64::INFINITY;
        }
        self.streamlets as f64 * 1_000.0
            + self.append_bytes_per_sec / 1024.0
            + self.in_flight_bytes as f64 / (1 << 20) as f64
    }
}

/// The full Stream Server service surface: SMS-driven control plus the
/// client data plane (append/flush) plus the heartbeat/maintenance hooks
/// the region daemon drives.
pub trait StreamServerApi: Send + Sync {
    /// This server's id.
    fn server_id(&self) -> ServerId;

    /// The cluster this server task runs in (placement prefers servers in
    /// the table's primary cluster, §5.2.1).
    fn cluster(&self) -> ClusterId;

    /// Creates (and persists) a streamlet so it can accept appends.
    fn create_streamlet(&self, spec: StreamletSpec) -> VortexResult<()>;

    /// Current load for placement decisions.
    fn load(&self) -> LoadReport;

    /// Live committed length (rows) of a hosted streamlet, if hosted.
    /// Used by FlushStream validation where the heartbeat cache may lag.
    fn streamlet_rows(&self, streamlet: StreamletId) -> Option<u64>;

    /// Tells the server the table's schema changed; it relays the new
    /// version to writing clients on their next append (§5.4.1).
    fn notify_schema_version(&self, table: TableId, version: u32);

    /// Tells the server to garbage-collect fragment log files it owns
    /// (§5.4.3). Returns the fragments actually deleted.
    fn gc_fragments(
        &self,
        table: TableId,
        streamlet: StreamletId,
        ordinals: Vec<u32>,
    ) -> VortexResult<Vec<u32>>;

    /// Tells the server it no longer owns a streamlet (reconciliation
    /// moved it, or a full-state snapshot revealed it orphaned).
    fn revoke_streamlet(&self, streamlet: StreamletId);

    /// Asks the server to gracefully finalize a hosted streamlet (bloom
    /// filter + footer on the last fragment) before the SMS reconciles
    /// it. Best effort — a dead server simply doesn't answer.
    fn finalize_streamlet_ctl(&self, streamlet: StreamletId) -> VortexResult<()>;

    // --------------------------------------------------------------
    // Data plane (§4.2.2 / §5.3). Default implementations refuse, so
    // control-only mocks stay small; the concrete server overrides.
    // --------------------------------------------------------------

    /// Appends `rows` to a hosted streamlet. `expected_stream_offset` is
    /// the client's offset-validation token (§4.2.2); `start` is the
    /// virtual submission time for latency accounting.
    fn append(
        &self,
        streamlet: StreamletId,
        rows: &RowSet,
        declared_schema_version: u32,
        expected_stream_offset: Option<u64>,
        start: Timestamp,
    ) -> VortexResult<AppendAck> {
        let _ = (rows, declared_schema_version, expected_stream_offset, start);
        Err(VortexError::Unavailable(format!(
            "streamlet {streamlet}: endpoint has no data plane"
        )))
    }

    /// Persists a flush record at streamlet-relative `flush_row` so the
    /// BUFFERED flush watermark survives crashes (§4.2.3).
    fn flush(&self, streamlet: StreamletId, flush_row: u64) -> VortexResult<()> {
        let _ = flush_row;
        Err(VortexError::Unavailable(format!(
            "streamlet {streamlet}: endpoint has no data plane"
        )))
    }

    // --------------------------------------------------------------
    // Heartbeat / maintenance hooks (§5.5), driven by the region.
    // --------------------------------------------------------------

    /// Runs one maintenance tick (fragment rotation, property flushes);
    /// returns how many hosted streamlets did work.
    fn tick(&self) -> usize {
        0
    }

    /// Builds the next heartbeat (deltas, or everything when
    /// `full_state`).
    fn build_heartbeat(&self, full_state: bool) -> HeartbeatReport {
        HeartbeatReport {
            server: self.server_id(),
            load: self.load(),
            streamlets: Vec::new(),
            full_state,
        }
    }

    /// Applies an SMS heartbeat response (schema bumps, GC orders,
    /// unknown-streamlet deletions older than `orphan_age_micros`);
    /// returns the GC acknowledgements to relay back. Errors mean the
    /// server died mid-application (e.g. a crash point fired during GC):
    /// unacknowledged work is simply re-issued on the next heartbeat.
    fn apply_heartbeat_response(
        &self,
        resp: &HeartbeatResponse,
        orphan_age_micros: u64,
    ) -> VortexResult<Vec<(TableId, StreamletId, Vec<u32>)>> {
        let _ = (resp, orphan_age_micros);
        Ok(Vec::new())
    }

    /// Forgets the last-reported heartbeat state so the next heartbeat is
    /// a full re-report (used after SMS failovers).
    fn reset_heartbeat_window(&self) {}

    /// Marks the server quarantined (receives no new streamlets).
    fn set_quarantined(&self, quarantined: bool) {
        let _ = quarantined;
    }
}

/// A shareable handle to a Stream Server endpoint.
pub type ServerHandle = Arc<dyn StreamServerApi>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_score_orders_sensibly() {
        let idle = LoadReport::default();
        let busy = LoadReport {
            streamlets: 10,
            append_bytes_per_sec: 1e6,
            in_flight_bytes: 50 << 20,
            quarantined: false,
        };
        let quarantined = LoadReport {
            quarantined: true,
            ..LoadReport::default()
        };
        assert!(idle.score() < busy.score());
        assert!(busy.score() < quarantined.score());
        assert_eq!(quarantined.score(), f64::INFINITY);
    }
}
