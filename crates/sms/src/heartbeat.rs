//! Heartbeat messages: the Stream Server → SMS reporting channel (§5.5).
//!
//! "The Stream Server sends a heartbeat to each SMS every few seconds to
//! inform it about changes to Streamlet metadata as a result of new
//! appends ... Along with per-Streamlet metadata, the Stream Server also
//! sends its current load information." The typical heartbeat carries
//! deltas since the previous one; periodically a **full state snapshot**
//! is sent instead, which lets the SMS detect orphaned streamlets
//! (§5.4.3).

use vortex_common::ids::{FragmentId, ServerId, StreamletId, TableId};
use vortex_common::stats::ColumnStats;
use vortex_common::truetime::Timestamp;

use crate::server_ctl::LoadReport;

/// New-or-updated fragment state carried in a heartbeat.
#[derive(Debug, Clone)]
pub struct FragmentDelta {
    /// The fragment.
    pub fragment: FragmentId,
    /// Ordinal within the streamlet.
    pub ordinal: u32,
    /// Streamlet-relative row offset of the fragment's first row.
    pub first_row: u64,
    /// Committed rows in the fragment.
    pub row_count: u64,
    /// Committed byte size of the log file.
    pub committed_size: u64,
    /// Whether the fragment is finalized (immutable).
    pub finalized: bool,
    /// Column properties accumulated so far (§7.2: communicated to the
    /// SMS for caching once finalized; the tail's properties stay on the
    /// server).
    pub stats: Vec<(String, ColumnStats)>,
    /// Min/max record timestamps (§5.3: the server knows these per
    /// fragment).
    pub ts_range: Option<(Timestamp, Timestamp)>,
}

/// Per-streamlet delta in a heartbeat.
#[derive(Debug, Clone)]
pub struct StreamletDelta {
    /// Owning table (routes the delta to the right metadata).
    pub table: TableId,
    /// The streamlet.
    pub streamlet: StreamletId,
    /// New or updated fragments since the last heartbeat.
    pub fragments: Vec<FragmentDelta>,
    /// Total committed rows in the streamlet.
    pub row_count: u64,
    /// Highest flushed row offset (BUFFERED streams) seen by the server.
    pub max_flush_row: Option<u64>,
    /// Whether the server has finalized the streamlet (irrecoverable
    /// write error or revocation, §5.3).
    pub finalized: bool,
}

/// One heartbeat message.
#[derive(Debug, Clone)]
pub struct HeartbeatReport {
    /// Reporting server.
    pub server: ServerId,
    /// Load for placement (§5.5).
    pub load: LoadReport,
    /// Per-streamlet deltas (or the full state when `full_state`).
    pub streamlets: Vec<StreamletDelta>,
    /// True when this is a periodic full-state snapshot of *all*
    /// streamlets the server owns (§5.4.3's orphan guard).
    pub full_state: bool,
}

/// The SMS's reply to a heartbeat.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatResponse {
    /// Tables whose schema version moved; the server relays to clients
    /// on their next append (§5.4.1).
    pub schema_updates: Vec<(TableId, u32)>,
    /// Fragments (by streamlet + ordinal) the server should GC (§5.4.3).
    pub gc: Vec<(TableId, StreamletId, Vec<u32>)>,
    /// Streamlets the SMS does not recognize: if sufficiently old, the
    /// server deletes them (§5.4.3: "the system ensures that the
    /// Streamlet is sufficiently old" before deletion).
    pub unknown_streamlets: Vec<StreamletId>,
}
