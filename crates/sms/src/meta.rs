//! Metadata entities persisted in the (Spanner-lite) metastore, with their
//! key naming scheme and binary serialization.
//!
//! The hierarchy is the paper's §5.1: a table owns Streams; a Stream is an
//! ordered list of Streamlets; a Streamlet is split into Fragments. WOS
//! and ROS fragments share one record type distinguished by
//! [`FragmentKind`], because the Storage Optimizer atomically swaps one
//! for the other inside a single metastore transaction (§6.1).

use vortex_common::codec::{get_uvarint, put_uvarint};
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::{ClusterId, FragmentId, ServerId, StreamId, StreamletId, TableId};
use vortex_common::mask::DeletionMask;
use vortex_common::schema::Schema;
use vortex_common::schema_codec::{schema_from_bytes, schema_to_bytes};
use vortex_common::stats::ColumnStats;
use vortex_common::truetime::Timestamp;

// ---------------------------------------------------------------------
// Key naming. Fixed-width hex keeps lexicographic order == numeric order.
// ---------------------------------------------------------------------

/// Metastore key of a table record.
pub fn table_key(t: TableId) -> String {
    format!("t/{:016x}", t.raw())
}

/// Metastore key prefix of everything belonging to a table.
pub fn table_prefix(t: TableId) -> String {
    format!("t/{:016x}/", t.raw())
}

/// Metastore key of a stream record.
pub fn stream_key(t: TableId, s: StreamId) -> String {
    format!("t/{:016x}/s/{:016x}", t.raw(), s.raw())
}

/// Prefix of all stream records of a table.
pub fn stream_prefix(t: TableId) -> String {
    format!("t/{:016x}/s/", t.raw())
}

/// Metastore key of a streamlet record.
pub fn streamlet_key(t: TableId, l: StreamletId) -> String {
    format!("t/{:016x}/l/{:016x}", t.raw(), l.raw())
}

/// Prefix of all streamlet records of a table.
pub fn streamlet_prefix(t: TableId) -> String {
    format!("t/{:016x}/l/", t.raw())
}

/// Metastore key of a fragment record.
pub fn fragment_key(t: TableId, f: FragmentId) -> String {
    format!("t/{:016x}/f/{:016x}", t.raw(), f.raw())
}

/// Prefix of all fragment records of a table.
pub fn fragment_prefix(t: TableId) -> String {
    format!("t/{:016x}/f/", t.raw())
}

/// Prefix of a table's DML-in-progress markers (§7.3: "whenever a DML
/// statement is running, storage optimizer will not commit"). Each active
/// statement holds one token key under this prefix, so begin/end are
/// idempotent per ticket and safe to re-execute over a lossy RPC channel.
pub fn dml_lock_prefix(t: TableId) -> String {
    format!("t/{:016x}/dml/", t.raw())
}

/// Metastore key of one active DML statement's marker.
pub fn dml_lock_token_key(t: TableId, token: u64) -> String {
    format!("t/{:016x}/dml/{:016x}", t.raw(), token)
}

/// Colossus path of a WOS fragment log file. The same path exists in both
/// replica clusters — replication is physical (§5.6).
pub fn wos_path(t: TableId, l: StreamletId, ordinal: u32) -> String {
    format!("wos/t{:016x}/l{:016x}/f{:08x}", t.raw(), l.raw(), ordinal)
}

/// Colossus path prefix of a streamlet's log files.
pub fn wos_streamlet_prefix(t: TableId, l: StreamletId) -> String {
    format!("wos/t{:016x}/l{:016x}/", t.raw(), l.raw())
}

/// Colossus path of a ROS block.
pub fn ros_path(t: TableId, f: FragmentId) -> String {
    format!("ros/t{:016x}/b{:016x}", t.raw(), f.raw())
}

/// Path of a BLMT ROS block inside the customer bucket (§6.4): an
/// open-layout object name a non-BigQuery engine could list and read.
pub fn blmt_path(bucket: &str, t: TableId, f: FragmentId) -> String {
    format!(
        "bucket/{bucket}/table={:x}/block-{:016x}.vros",
        t.raw(),
        f.raw()
    )
}

// ---------------------------------------------------------------------
// Serialization helpers.
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> VortexResult<String> {
    let n = get_uvarint(buf, pos)? as usize;
    if *pos + n > buf.len() {
        return Err(VortexError::Decode("string truncated".into()));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + n])
        .map_err(|e| VortexError::Decode(format!("bad utf8: {e}")))?
        .to_string();
    *pos += n;
    Ok(s)
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_uvarint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> VortexResult<Vec<u8>> {
    let n = get_uvarint(buf, pos)? as usize;
    if *pos + n > buf.len() {
        return Err(VortexError::Decode("bytes truncated".into()));
    }
    let b = buf[*pos..*pos + n].to_vec();
    *pos += n;
    Ok(b)
}

fn put_masks(out: &mut Vec<u8>, masks: &[(Timestamp, DeletionMask)]) {
    put_uvarint(out, masks.len() as u64);
    for (ts, m) in masks {
        put_uvarint(out, ts.micros());
        put_bytes(out, &m.to_bytes());
    }
}

fn get_masks(buf: &[u8], pos: &mut usize) -> VortexResult<Vec<(Timestamp, DeletionMask)>> {
    let n = get_uvarint(buf, pos)? as usize;
    if n > buf.len() {
        return Err(VortexError::Decode("mask count".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ts = Timestamp(get_uvarint(buf, pos)?);
        let b = get_bytes(buf, pos)?;
        out.push((ts, DeletionMask::from_bytes(&b)?));
    }
    Ok(out)
}

fn put_stats(out: &mut Vec<u8>, stats: &[(String, ColumnStats)]) {
    put_uvarint(out, stats.len() as u64);
    for (name, s) in stats {
        put_str(out, name);
        put_bytes(out, &s.to_bytes());
    }
}

fn get_stats(buf: &[u8], pos: &mut usize) -> VortexResult<Vec<(String, ColumnStats)>> {
    let n = get_uvarint(buf, pos)? as usize;
    if n > buf.len() {
        return Err(VortexError::Decode("stats count".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(buf, pos)?;
        let b = get_bytes(buf, pos)?;
        let mut p = 0usize;
        out.push((name, ColumnStats::from_bytes(&b, &mut p)?));
    }
    Ok(out)
}

/// Resolves the effective deletion mask at a snapshot: the union of all
/// mask versions committed at or before `ts`.
pub fn effective_mask(masks: &[(Timestamp, DeletionMask)], ts: Timestamp) -> DeletionMask {
    let mut out = DeletionMask::new();
    for (mts, m) in masks {
        if *mts <= ts {
            out.union(m);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Table.
// ---------------------------------------------------------------------

/// Logical + placement metadata of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Table id.
    pub table: TableId,
    /// Human-readable name (unique per region in this engine).
    pub name: String,
    /// Current schema (carries its version).
    pub schema: Schema,
    /// Primary cluster handling the table's workload (§5.2.1).
    pub primary: ClusterId,
    /// Secondary cluster for transparent failover.
    pub secondary: ClusterId,
    /// Passphrase the table's encryption key derives from (stand-in for a
    /// KMS reference; may be customer supplied, §5.4.5).
    pub key_ref: String,
    /// Creation time.
    pub created_at: Timestamp,
    /// BigLake Managed Table (§6.4): when set, ROS blocks are written to
    /// this customer-owned bucket (a dedicated storage namespace) instead
    /// of the table's replica clusters. WOS stays in Colossus either way.
    pub external_bucket: Option<String>,
}

impl TableMeta {
    /// The table's encryption key.
    pub fn encryption_key(&self) -> vortex_common::crypt::Key {
        vortex_common::crypt::Key::derive_from_passphrase(&self.key_ref)
    }

    /// Serializes the record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_uvarint(&mut out, self.table.raw());
        put_str(&mut out, &self.name);
        put_bytes(&mut out, &schema_to_bytes(&self.schema));
        put_uvarint(&mut out, self.primary.raw());
        put_uvarint(&mut out, self.secondary.raw());
        put_str(&mut out, &self.key_ref);
        put_uvarint(&mut out, self.created_at.micros());
        match &self.external_bucket {
            None => out.push(0),
            Some(b) => {
                out.push(1);
                put_str(&mut out, b);
            }
        }
        out
    }

    /// Deserializes the record.
    pub fn from_bytes(buf: &[u8]) -> VortexResult<Self> {
        let mut pos = 0usize;
        let table = TableId::from_raw(get_uvarint(buf, &mut pos)?);
        let name = get_str(buf, &mut pos)?;
        let schema = schema_from_bytes(&get_bytes(buf, &mut pos)?)?;
        let primary = ClusterId::from_raw(get_uvarint(buf, &mut pos)?);
        let secondary = ClusterId::from_raw(get_uvarint(buf, &mut pos)?);
        let key_ref = get_str(buf, &mut pos)?;
        let created_at = Timestamp(get_uvarint(buf, &mut pos)?);
        let flag = *buf
            .get(pos)
            .ok_or_else(|| VortexError::Decode("bucket flag truncated".into()))?;
        pos += 1;
        let external_bucket = match flag {
            0 => None,
            1 => Some(get_str(buf, &mut pos)?),
            o => return Err(VortexError::Decode(format!("bad bucket flag {o}"))),
        };
        let _ = pos;
        Ok(TableMeta {
            table,
            name,
            schema,
            primary,
            secondary,
            key_ref,
            created_at,
            external_bucket,
        })
    }
}

// ---------------------------------------------------------------------
// Stream.
// ---------------------------------------------------------------------

/// The three stream types of §4.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamType {
    /// Appends are committed and visible once acknowledged.
    Unbuffered,
    /// Appends are durable but invisible until `FlushStream`.
    Buffered,
    /// Nothing is visible until the stream is batch-committed.
    Pending,
}

impl StreamType {
    fn to_u8(self) -> u8 {
        match self {
            StreamType::Unbuffered => 0,
            StreamType::Buffered => 1,
            StreamType::Pending => 2,
        }
    }

    fn from_u8(v: u8) -> VortexResult<Self> {
        Ok(match v {
            0 => StreamType::Unbuffered,
            1 => StreamType::Buffered,
            2 => StreamType::Pending,
            o => return Err(VortexError::Decode(format!("bad stream type {o}"))),
        })
    }
}

/// Metadata of a Stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamMeta {
    /// Stream id.
    pub stream: StreamId,
    /// Owning table.
    pub table: TableId,
    /// UNBUFFERED / BUFFERED / PENDING.
    pub stype: StreamType,
    /// Finalized streams accept no further appends (§4.2.5).
    pub finalized: bool,
    /// For PENDING streams: the batch-commit timestamp (data visible from
    /// here). `None` until committed.
    pub committed_at: Option<Timestamp>,
    /// For BUFFERED streams: rows `[0, flushed_row)` are visible (§4.2.3).
    pub flushed_row: u64,
    /// Creation time.
    pub created_at: Timestamp,
    /// Number of streamlets created so far (ordinal source).
    pub streamlet_count: u32,
}

impl StreamMeta {
    /// Serializes the record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_uvarint(&mut out, self.stream.raw());
        put_uvarint(&mut out, self.table.raw());
        out.push(self.stype.to_u8());
        out.push(self.finalized as u8);
        match self.committed_at {
            None => out.push(0),
            Some(ts) => {
                out.push(1);
                put_uvarint(&mut out, ts.micros());
            }
        }
        put_uvarint(&mut out, self.flushed_row);
        put_uvarint(&mut out, self.created_at.micros());
        put_uvarint(&mut out, self.streamlet_count as u64);
        out
    }

    /// Deserializes the record.
    pub fn from_bytes(buf: &[u8]) -> VortexResult<Self> {
        let mut pos = 0usize;
        let stream = StreamId::from_raw(get_uvarint(buf, &mut pos)?);
        let table = TableId::from_raw(get_uvarint(buf, &mut pos)?);
        let stype = StreamType::from_u8(
            *buf.get(pos)
                .ok_or_else(|| VortexError::Decode("stream type".into()))?,
        )?;
        pos += 1;
        let finalized = *buf
            .get(pos)
            .ok_or_else(|| VortexError::Decode("finalized flag".into()))?
            != 0;
        pos += 1;
        let committed_at = match buf.get(pos) {
            Some(0) => {
                pos += 1;
                None
            }
            Some(1) => {
                pos += 1;
                Some(Timestamp(get_uvarint(buf, &mut pos)?))
            }
            o => return Err(VortexError::Decode(format!("bad committed flag {o:?}"))),
        };
        let flushed_row = get_uvarint(buf, &mut pos)?;
        let created_at = Timestamp(get_uvarint(buf, &mut pos)?);
        let streamlet_count = get_uvarint(buf, &mut pos)? as u32;
        Ok(StreamMeta {
            stream,
            table,
            stype,
            finalized,
            committed_at,
            flushed_row,
            created_at,
            streamlet_count,
        })
    }
}

// ---------------------------------------------------------------------
// Streamlet.
// ---------------------------------------------------------------------

/// Lifecycle of a Streamlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamletState {
    /// Accepting appends on its Stream Server.
    Writable,
    /// No longer writable (server moved/failed); length not yet
    /// authoritative in the metastore.
    Closed,
    /// Reconciled/finalized: the metastore row count is the source of
    /// truth (§6.2).
    Finalized,
}

impl StreamletState {
    fn to_u8(self) -> u8 {
        match self {
            StreamletState::Writable => 0,
            StreamletState::Closed => 1,
            StreamletState::Finalized => 2,
        }
    }

    fn from_u8(v: u8) -> VortexResult<Self> {
        Ok(match v {
            0 => StreamletState::Writable,
            1 => StreamletState::Closed,
            2 => StreamletState::Finalized,
            o => return Err(VortexError::Decode(format!("bad streamlet state {o}"))),
        })
    }
}

/// Metadata of a Streamlet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamletMeta {
    /// Streamlet id.
    pub streamlet: StreamletId,
    /// Owning stream.
    pub stream: StreamId,
    /// Owning table.
    pub table: TableId,
    /// Position within the stream (0-based).
    pub ordinal: u32,
    /// Stream Server currently hosting it.
    pub server: ServerId,
    /// The two replica clusters (§5.1: "all of which are present in the
    /// same 2 clusters").
    pub clusters: [ClusterId; 2],
    /// Lifecycle state.
    pub state: StreamletState,
    /// Stream-level row offset where this streamlet begins.
    pub first_stream_row: u64,
    /// Committed rows (heartbeat cache until Finalized, then truth).
    pub row_count: u64,
    /// Fragments known to the SMS (cache; the tail may have more).
    pub known_fragments: u32,
    /// Versioned tail deletion masks (streamlet-relative rows, §7.3).
    pub masks: Vec<(Timestamp, DeletionMask)>,
    /// Epoch incremented on every ownership change; used to poison
    /// zombies (§5.6).
    pub epoch: u64,
}

impl StreamletMeta {
    /// Serializes the record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_uvarint(&mut out, self.streamlet.raw());
        put_uvarint(&mut out, self.stream.raw());
        put_uvarint(&mut out, self.table.raw());
        put_uvarint(&mut out, self.ordinal as u64);
        put_uvarint(&mut out, self.server.raw());
        put_uvarint(&mut out, self.clusters[0].raw());
        put_uvarint(&mut out, self.clusters[1].raw());
        out.push(self.state.to_u8());
        put_uvarint(&mut out, self.first_stream_row);
        put_uvarint(&mut out, self.row_count);
        put_uvarint(&mut out, self.known_fragments as u64);
        put_masks(&mut out, &self.masks);
        put_uvarint(&mut out, self.epoch);
        out
    }

    /// Deserializes the record.
    pub fn from_bytes(buf: &[u8]) -> VortexResult<Self> {
        let mut pos = 0usize;
        let streamlet = StreamletId::from_raw(get_uvarint(buf, &mut pos)?);
        let stream = StreamId::from_raw(get_uvarint(buf, &mut pos)?);
        let table = TableId::from_raw(get_uvarint(buf, &mut pos)?);
        let ordinal = get_uvarint(buf, &mut pos)? as u32;
        let server = ServerId::from_raw(get_uvarint(buf, &mut pos)?);
        let clusters = [
            ClusterId::from_raw(get_uvarint(buf, &mut pos)?),
            ClusterId::from_raw(get_uvarint(buf, &mut pos)?),
        ];
        let state = StreamletState::from_u8(
            *buf.get(pos)
                .ok_or_else(|| VortexError::Decode("streamlet state".into()))?,
        )?;
        pos += 1;
        let first_stream_row = get_uvarint(buf, &mut pos)?;
        let row_count = get_uvarint(buf, &mut pos)?;
        let known_fragments = get_uvarint(buf, &mut pos)? as u32;
        let masks = get_masks(buf, &mut pos)?;
        let epoch = get_uvarint(buf, &mut pos)?;
        Ok(StreamletMeta {
            streamlet,
            stream,
            table,
            ordinal,
            server,
            clusters,
            state,
            first_stream_row,
            row_count,
            known_fragments,
            masks,
            epoch,
        })
    }
}

// ---------------------------------------------------------------------
// Fragment.
// ---------------------------------------------------------------------

/// Whether a fragment is write-optimized (a log-file row range) or
/// read-optimized (a columnar block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentKind {
    /// A range of rows inside a WOS log file.
    Wos,
    /// A ROS columnar block produced by the Storage Optimizer.
    Ros,
}

/// Lifecycle of a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentState {
    /// Still being written by the Stream Server (WOS only).
    Active,
    /// Immutable; eligible for WOS→ROS conversion.
    Finalized,
    /// Logically deleted (`deleted_at` set); awaiting GC (§5.4.3).
    Deleted,
}

/// Metadata of a fragment (WOS or ROS).
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentMeta {
    /// Fragment id.
    pub fragment: FragmentId,
    /// Owning table.
    pub table: TableId,
    /// Owning streamlet; zero raw id for merged ROS blocks that span
    /// streamlets.
    pub streamlet: StreamletId,
    /// WOS or ROS.
    pub kind: FragmentKind,
    /// Ordinal within the streamlet (WOS) or 0 (ROS).
    pub ordinal: u32,
    /// Streamlet-relative row offset of the first row (WOS) or 0 (ROS).
    pub first_row: u64,
    /// Committed rows.
    pub row_count: u64,
    /// Committed byte size of the log file / block.
    pub committed_size: u64,
    /// Lifecycle state.
    pub state: FragmentState,
    /// Visibility start: `Timestamp::MIN` for streaming WOS fragments
    /// (rows self-gate on their block timestamps), the commit timestamp
    /// for ROS blocks and reinserted-row fragments (§6.1).
    pub created_at: Timestamp,
    /// Visibility end (exclusive); `Timestamp::MAX` while live.
    pub deleted_at: Timestamp,
    /// Replica clusters holding the bytes.
    pub clusters: [ClusterId; 2],
    /// Colossus path.
    pub path: String,
    /// Column properties for pruning (§7.2).
    pub stats: Vec<(String, ColumnStats)>,
    /// Versioned deletion masks (fragment-relative row indices, §7.3).
    pub masks: Vec<(Timestamp, DeletionMask)>,
    /// Partition key for partition-split ROS blocks (§6.1, Figure 5).
    pub partition_key: Option<i64>,
    /// ROS level in the LSM tree: 0 = fresh conversion (delta), higher =
    /// recluster generations (baseline). WOS fragments are level 0.
    pub level: u32,
}

impl FragmentMeta {
    /// Whether the fragment participates in a read at snapshot `ts`
    /// (§6.1: visible in `[creation_timestamp, deletion_timestamp)`).
    pub fn visible_at(&self, ts: Timestamp) -> bool {
        self.created_at <= ts && ts < self.deleted_at
    }

    /// The effective deletion mask at a snapshot.
    pub fn mask_at(&self, ts: Timestamp) -> DeletionMask {
        effective_mask(&self.masks, ts)
    }

    /// Serializes the record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_uvarint(&mut out, self.fragment.raw());
        put_uvarint(&mut out, self.table.raw());
        put_uvarint(&mut out, self.streamlet.raw());
        out.push(match self.kind {
            FragmentKind::Wos => 0,
            FragmentKind::Ros => 1,
        });
        put_uvarint(&mut out, self.ordinal as u64);
        put_uvarint(&mut out, self.first_row);
        put_uvarint(&mut out, self.row_count);
        put_uvarint(&mut out, self.committed_size);
        out.push(match self.state {
            FragmentState::Active => 0,
            FragmentState::Finalized => 1,
            FragmentState::Deleted => 2,
        });
        put_uvarint(&mut out, self.created_at.micros());
        put_uvarint(&mut out, self.deleted_at.micros());
        put_uvarint(&mut out, self.clusters[0].raw());
        put_uvarint(&mut out, self.clusters[1].raw());
        put_str(&mut out, &self.path);
        put_stats(&mut out, &self.stats);
        put_masks(&mut out, &self.masks);
        match self.partition_key {
            None => out.push(0),
            Some(k) => {
                out.push(1);
                put_uvarint(&mut out, (k as u64) ^ (1 << 63)); // order-preserving bias
            }
        }
        put_uvarint(&mut out, self.level as u64);
        out
    }

    /// Deserializes the record.
    pub fn from_bytes(buf: &[u8]) -> VortexResult<Self> {
        let mut pos = 0usize;
        let fragment = FragmentId::from_raw(get_uvarint(buf, &mut pos)?);
        let table = TableId::from_raw(get_uvarint(buf, &mut pos)?);
        let streamlet = StreamletId::from_raw(get_uvarint(buf, &mut pos)?);
        let kind = match buf.get(pos) {
            Some(0) => FragmentKind::Wos,
            Some(1) => FragmentKind::Ros,
            o => return Err(VortexError::Decode(format!("bad fragment kind {o:?}"))),
        };
        pos += 1;
        let ordinal = get_uvarint(buf, &mut pos)? as u32;
        let first_row = get_uvarint(buf, &mut pos)?;
        let row_count = get_uvarint(buf, &mut pos)?;
        let committed_size = get_uvarint(buf, &mut pos)?;
        let state = match buf.get(pos) {
            Some(0) => FragmentState::Active,
            Some(1) => FragmentState::Finalized,
            Some(2) => FragmentState::Deleted,
            o => return Err(VortexError::Decode(format!("bad fragment state {o:?}"))),
        };
        pos += 1;
        let created_at = Timestamp(get_uvarint(buf, &mut pos)?);
        let deleted_at = Timestamp(get_uvarint(buf, &mut pos)?);
        let clusters = [
            ClusterId::from_raw(get_uvarint(buf, &mut pos)?),
            ClusterId::from_raw(get_uvarint(buf, &mut pos)?),
        ];
        let path = get_str(buf, &mut pos)?;
        let stats = get_stats(buf, &mut pos)?;
        let masks = get_masks(buf, &mut pos)?;
        let partition_key = match buf.get(pos) {
            Some(0) => {
                pos += 1;
                None
            }
            Some(1) => {
                pos += 1;
                Some((get_uvarint(buf, &mut pos)? ^ (1 << 63)) as i64)
            }
            o => return Err(VortexError::Decode(format!("bad partition flag {o:?}"))),
        };
        let level = get_uvarint(buf, &mut pos)? as u32;
        Ok(FragmentMeta {
            fragment,
            table,
            streamlet,
            kind,
            ordinal,
            first_row,
            row_count,
            committed_size,
            state,
            created_at,
            deleted_at,
            clusters,
            path,
            stats,
            masks,
            partition_key,
            level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_common::row::Value;
    use vortex_common::schema::sales_schema;

    fn sample_fragment() -> FragmentMeta {
        let mut stats = ColumnStats::new();
        stats.observe(&Value::String("alice".into()));
        stats.observe(&Value::String("zed".into()));
        FragmentMeta {
            fragment: FragmentId::from_raw(9),
            table: TableId::from_raw(1),
            streamlet: StreamletId::from_raw(3),
            kind: FragmentKind::Wos,
            ordinal: 2,
            first_row: 100,
            row_count: 50,
            committed_size: 12345,
            state: FragmentState::Finalized,
            created_at: Timestamp::MIN,
            deleted_at: Timestamp::MAX,
            clusters: [ClusterId::from_raw(0), ClusterId::from_raw(1)],
            path: wos_path(TableId::from_raw(1), StreamletId::from_raw(3), 2),
            stats: vec![("customerKey".into(), stats)],
            masks: vec![(Timestamp(500), DeletionMask::from_range(3, 7))],
            partition_key: Some(-12),
            level: 0,
        }
    }

    #[test]
    fn table_meta_roundtrip() {
        let m = TableMeta {
            table: TableId::from_raw(5),
            name: "sales".into(),
            schema: sales_schema(),
            primary: ClusterId::from_raw(0),
            secondary: ClusterId::from_raw(1),
            key_ref: "tbl-5-key".into(),
            created_at: Timestamp(999),
            external_bucket: None,
        };
        assert_eq!(TableMeta::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn stream_meta_roundtrip_all_types() {
        for (stype, committed) in [
            (StreamType::Unbuffered, None),
            (StreamType::Buffered, None),
            (StreamType::Pending, Some(Timestamp(42))),
        ] {
            let m = StreamMeta {
                stream: StreamId::from_raw(7),
                table: TableId::from_raw(1),
                stype,
                finalized: stype == StreamType::Pending,
                committed_at: committed,
                flushed_row: 33,
                created_at: Timestamp(10),
                streamlet_count: 2,
            };
            assert_eq!(StreamMeta::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn streamlet_meta_roundtrip() {
        let m = StreamletMeta {
            streamlet: StreamletId::from_raw(3),
            stream: StreamId::from_raw(7),
            table: TableId::from_raw(1),
            ordinal: 1,
            server: ServerId::from_raw(12),
            clusters: [ClusterId::from_raw(0), ClusterId::from_raw(2)],
            state: StreamletState::Closed,
            first_stream_row: 4096,
            row_count: 777,
            known_fragments: 3,
            masks: vec![
                (Timestamp(100), DeletionMask::from_range(0, 5)),
                (Timestamp(200), DeletionMask::from_range(10, 20)),
            ],
            epoch: 4,
        };
        assert_eq!(StreamletMeta::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn fragment_meta_roundtrip() {
        let m = sample_fragment();
        assert_eq!(FragmentMeta::from_bytes(&m.to_bytes()).unwrap(), m);
        // Negative and None partition keys.
        let mut m2 = sample_fragment();
        m2.partition_key = None;
        m2.kind = FragmentKind::Ros;
        m2.level = 3;
        assert_eq!(FragmentMeta::from_bytes(&m2.to_bytes()).unwrap(), m2);
    }

    #[test]
    fn visibility_interval() {
        let mut m = sample_fragment();
        m.created_at = Timestamp(100);
        m.deleted_at = Timestamp(200);
        assert!(!m.visible_at(Timestamp(99)));
        assert!(m.visible_at(Timestamp(100)));
        assert!(m.visible_at(Timestamp(199)));
        assert!(!m.visible_at(Timestamp(200)));
    }

    #[test]
    fn effective_mask_unions_by_snapshot() {
        let masks = vec![
            (Timestamp(100), DeletionMask::from_range(0, 5)),
            (Timestamp(200), DeletionMask::from_range(10, 15)),
        ];
        let at_150 = effective_mask(&masks, Timestamp(150));
        assert!(at_150.contains(2) && !at_150.contains(12));
        let at_250 = effective_mask(&masks, Timestamp(250));
        assert!(at_250.contains(2) && at_250.contains(12));
        let at_50 = effective_mask(&masks, Timestamp(50));
        assert!(at_50.is_empty());
    }

    #[test]
    fn key_naming_sorts_numerically() {
        let a = fragment_key(TableId::from_raw(1), FragmentId::from_raw(9));
        let b = fragment_key(TableId::from_raw(1), FragmentId::from_raw(10));
        let c = fragment_key(TableId::from_raw(1), FragmentId::from_raw(255));
        assert!(a < b && b < c);
        assert!(a.starts_with(&fragment_prefix(TableId::from_raw(1))));
        // Streams, streamlets, fragments have disjoint prefixes.
        let t = TableId::from_raw(1);
        assert_ne!(stream_prefix(t), streamlet_prefix(t));
        assert_ne!(streamlet_prefix(t), fragment_prefix(t));
    }

    #[test]
    fn corrupt_meta_rejected() {
        let m = sample_fragment();
        let bytes = m.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                FragmentMeta::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn paths_are_deterministic_and_distinct() {
        let t = TableId::from_raw(1);
        let l = StreamletId::from_raw(2);
        assert_eq!(wos_path(t, l, 0), wos_path(t, l, 0));
        assert_ne!(wos_path(t, l, 0), wos_path(t, l, 1));
        assert!(wos_path(t, l, 0).starts_with(&wos_streamlet_prefix(t, l)));
        assert!(ros_path(t, FragmentId::from_raw(3)).starts_with("ros/"));
    }
}
