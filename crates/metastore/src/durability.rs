//! Crash-consistent durability for the metastore: WAL-logged commits,
//! atomically published checkpoints, and fenced recovery.
//!
//! Production Vortex leans on Spanner's own durability (§5.1); the
//! simulated store must earn the same guarantee on top of append-only
//! Colossus files. Three mechanisms compose:
//!
//! - **Commit WAL** (`meta/wal/<epoch>`): [`Durability::log_commit`]
//!   appends one length+CRC-framed record of the transaction's write
//!   set *before* the commit installs or acknowledges. A failed or torn
//!   append aborts the commit (nothing installed, nothing acked) and
//!   rotates to a fresh epoch file so later records never land behind
//!   an unreadable tail; recovery truncates each file at its first
//!   invalid frame.
//! - **Atomic checkpoint publish** ([`MetaStore::checkpoint`]): the
//!   snapshot is written to a fresh `meta/checkpoint/ckpt.<version>.<nonce>`
//!   file, then published by appending a `(prev → next)` record to the
//!   newest `meta/checkpoint/ptr.<gen>` pointer generation. Replaying
//!   the generations in order yields a single linear chain of accepted
//!   records; a record whose `prev` does not match the chain head lost
//!   the CAS. The loser — a split-brain SMS task during a Slicer
//!   double-ownership window — is *fenced*: its checkpoint file is
//!   deleted and it gets a [`VortexError::TxnConflict`]. The previously
//!   published checkpoint is never touched until its successor is fully
//!   durable. A torn pointer tail can never poison the chain: since an
//!   append-only file cannot be truncated, the next publish rotates to
//!   a fresh generation anchored with a re-statement of the chain head
//!   (and the same rotation periodically compacts the chain).
//! - **Recovery** ([`MetaStore::recover`]): load the newest accepted
//!   checkpoint that still validates (falling back down the chain — a
//!   corrupt newest checkpoint just means a longer WAL replay), then
//!   replay WAL epochs the checkpoint does not cover, frame by frame,
//!   stopping each file at the first torn frame. The returned
//!   [`MetaRecovery`] report lets soaks assert recovery was bounded by
//!   the tail, never a full-history replay.
//!
//! Checkpoint GC keeps the two newest published checkpoints (so the
//! corrupt-newest fallback never needs full history) and deletes WAL
//! epochs older than both.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vortex_colossus::Colossus;
use vortex_common::codec::{get_uvarint, put_uvarint};
use vortex_common::crashpoints;
use vortex_common::crc::crc32c;
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::truetime::{Timestamp, TrueTime};

use crate::MetaStore;

/// Directory-like prefix of the commit WAL (one file per epoch).
const WAL_DIR: &str = "meta/wal/";
/// Filename prefix of checkpoint snapshot files.
const CKPT_FILE_PREFIX: &str = "meta/checkpoint/ckpt.";
/// Filename prefix of version-pointer generations. The publish CAS
/// appends to the newest generation; a torn tail (an append-only file
/// can never be truncated) or an oversized generation rotates to the
/// next, *anchored* with a re-statement of the chain head so older
/// generations can be deleted.
const PTR_PREFIX: &str = "meta/checkpoint/ptr.";
/// Published checkpoints retained by GC: the newest plus one fallback.
const CKPT_RETAIN: usize = 2;
/// Accepted records per pointer generation before the next publish
/// rotates and compacts, keeping the chain read O(1)-ish forever.
const PTR_COMPACT_AFTER: usize = 64;

fn wal_path(epoch: u64) -> String {
    // lint:allow(L010, metadata-rate path formatting; flagged via a name-collision chain, not a real data hot path)
    format!("{WAL_DIR}{epoch:016x}")
}

fn ckpt_path(version: u64, nonce: u64) -> String {
    // lint:allow(L010, checkpoint-rate path formatting; recovery/checkpoint code, not a real data hot path)
    format!("{CKPT_FILE_PREFIX}{version:016x}.{nonce:08x}")
}

fn ptr_path(generation: u64) -> String {
    // lint:allow(L010, checkpoint-rate path formatting; recovery/checkpoint code, not a real data hot path)
    format!("{PTR_PREFIX}{generation:08x}")
}

/// Process-unique nonce source for checkpoint filenames: two racing
/// checkpointers proposing the same version must write distinct files.
fn next_nonce() -> u64 {
    // lint:allow(L008, uniqueness source for filenames, not a metric; exporting it to /varz would be noise)
    static NONCE: AtomicU64 = AtomicU64::new(1);
    NONCE.fetch_add(1, Ordering::Relaxed)
}

/// Wraps `body` in the WAL frame used everywhere in this module:
/// `uvarint(len) + body + crc32c(body)` (little-endian CRC).
fn frame(body: &[u8]) -> Vec<u8> {
    // lint:allow(L010, WAL/checkpoint framing allocates its output by design; metadata-rate only)
    let mut out = Vec::with_capacity(body.len() + 9);
    put_uvarint(&mut out, body.len() as u64);
    // lint:allow(L010, WAL/checkpoint framing allocates its output by design; metadata-rate only)
    out.extend_from_slice(body);
    // lint:allow(L010, WAL/checkpoint framing allocates its output by design; metadata-rate only)
    out.extend_from_slice(&crc32c(body).to_le_bytes());
    out
}

/// Splits `data` into valid frame bodies, stopping at the first frame
/// whose length or CRC does not check out (a torn tail). Returns the
/// bodies plus the number of trailing bytes dropped.
fn parse_frames(data: &[u8]) -> (Vec<&[u8]>, usize) {
    // lint:allow(L010, recovery-only frame parsing; the append chain through Region::create is a cold-start path)
    let mut bodies = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        let frame_start = pos;
        let Ok(n) = get_uvarint(data, &mut pos) else {
            return (bodies, data.len() - frame_start);
        };
        let n = n as usize;
        if n > data.len() || pos + n + 4 > data.len() {
            return (bodies, data.len() - frame_start);
        }
        let body = &data[pos..pos + n];
        let crc = u32::from_le_bytes([
            data[pos + n],
            data[pos + n + 1],
            data[pos + n + 2],
            data[pos + n + 3],
        ]);
        if crc32c(body) != crc {
            return (bodies, data.len() - frame_start);
        }
        bodies.push(body); // lint:allow(L010, recovery-only frame parsing; cold-start path)
        pos += n + 4;
    }
    (bodies, 0)
}

/// A strict prefix of `framed`, deterministically derived from its
/// contents — what a mid-append death durably leaves behind.
fn torn_prefix(framed: &[u8]) -> usize {
    if framed.is_empty() {
        return 0;
    }
    crc32c(framed) as usize % framed.len()
}

/// One accepted record of the version-pointer chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PtrRecord {
    prev_version: u64,
    version: u64,
    nonce: u64,
    covers_epoch: u64,
}

impl PtrRecord {
    fn encode(&self) -> Vec<u8> {
        // lint:allow(L010, checkpoint-publish record encoding; checkpoint-rate, flagged via a name-collision chain)
        let mut body = Vec::with_capacity(16);
        put_uvarint(&mut body, self.prev_version);
        put_uvarint(&mut body, self.version);
        put_uvarint(&mut body, self.nonce);
        put_uvarint(&mut body, self.covers_epoch);
        body
    }

    fn decode(body: &[u8]) -> VortexResult<Self> {
        let mut pos = 0usize;
        let rec = PtrRecord {
            prev_version: get_uvarint(body, &mut pos)?,
            version: get_uvarint(body, &mut pos)?,
            nonce: get_uvarint(body, &mut pos)?,
            covers_epoch: get_uvarint(body, &mut pos)?,
        };
        Ok(rec)
    }
}

/// The folded state of the version-pointer generations.
struct PtrState {
    /// Accepted records, oldest surviving first (after a compaction the
    /// oldest is the anchor that re-stated the head at rotation time).
    chain: Vec<PtrRecord>,
    /// The generation the next publish should append to. One past the
    /// newest on-disk generation when that generation's tail is torn
    /// (append-only files cannot be truncated — appending after a torn
    /// frame would make the record unreadable forever) or when it holds
    /// enough records that a compaction is due.
    append_gen: u64,
    /// Whether `append_gen` names a fresh file that must be anchored
    /// with a re-statement of the chain head before the next record.
    needs_anchor: bool,
}

impl PtrState {
    fn head_version(&self) -> u64 {
        self.chain.last().map(|r| r.version).unwrap_or(0)
    }
}

/// Reads every pointer generation in order and folds the accepted
/// chain: records apply in append order, and a record is accepted only
/// when its `prev_version` matches the current chain head — except the
/// very first record overall, which is accepted unconditionally (it is
/// either the genesis record or the anchor a compaction wrote when it
/// deleted the older generations). Everything else — CAS losers, torn
/// tails, duplicate anchors — is ignored.
fn read_ptr_state(cluster: &Colossus) -> VortexResult<PtrState> {
    // lint:allow(L010, recovery/checkpoint-rate pointer-chain read; cold-start path)
    let mut generations: Vec<(u64, String)> = Vec::new();
    for path in cluster.list(PTR_PREFIX)? {
        if let Some(g) = path
            .strip_prefix(PTR_PREFIX)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
        {
            // lint:allow(L010, recovery/checkpoint-rate pointer-chain read; cold-start path)
            generations.push((g, path));
        }
    }
    generations.sort_unstable_by_key(|(g, _)| *g);
    // lint:allow(L010, recovery/checkpoint-rate pointer-chain read; cold-start path)
    let mut chain: Vec<PtrRecord> = Vec::new();
    let (mut append_gen, mut rotate) = (0u64, false);
    for (generation, path) in &generations {
        let data = cluster.read_all(path)?.data;
        let (bodies, torn) = parse_frames(&data);
        let mut accepted_here = 0usize;
        for body in &bodies {
            let Ok(rec) = PtrRecord::decode(body) else {
                continue;
            };
            if chain.is_empty() || rec.prev_version == chain.last().map(|r| r.version).unwrap_or(0)
            {
                chain.push(rec); // lint:allow(L010, recovery/checkpoint-rate pointer-chain read; cold-start path)
                accepted_here += 1;
            }
        }
        append_gen = *generation;
        rotate = torn > 0 || accepted_here >= PTR_COMPACT_AFTER;
    }
    let needs_anchor = if rotate {
        append_gen += 1;
        !chain.is_empty()
    } else {
        false
    };
    Ok(PtrState {
        chain,
        append_gen,
        needs_anchor,
    })
}

/// The WAL + checkpoint state attached to a durable [`MetaStore`].
pub(crate) struct Durability {
    cluster: Arc<Colossus>,
    /// The WAL epoch commits currently append to. Bumped by checkpoints
    /// (so a snapshot covers exactly the epochs before it) and after
    /// any failed append (so new records never land behind a tail of
    /// unknown integrity).
    epoch: AtomicU64,
}

impl Durability {
    /// Appends the framed write-set record for `ts`; called under the
    /// store's commit lock, before the commit installs.
    pub(crate) fn log_commit(
        &self,
        ts: Timestamp,
        writes: &BTreeMap<String, Option<Vec<u8>>>,
    ) -> VortexResult<()> {
        // lint:allow(L010, WAL record encoding allocates by design; metadata commits are checkpoint-rate next to row appends)
        let mut body = Vec::new();
        put_uvarint(&mut body, ts.micros());
        put_uvarint(&mut body, writes.len() as u64);
        for (k, v) in writes {
            put_uvarint(&mut body, k.len() as u64);
            // lint:allow(L010, WAL record encoding allocates by design; metadata-rate)
            body.extend_from_slice(k.as_bytes());
            match v {
                // lint:allow(L010, WAL record encoding allocates by design; metadata-rate)
                None => body.push(0),
                Some(bytes) => {
                    // lint:allow(L010, WAL record encoding allocates by design; metadata-rate)
                    body.push(1);
                    put_uvarint(&mut body, bytes.len() as u64);
                    // lint:allow(L010, WAL record encoding allocates by design; metadata-rate)
                    body.extend_from_slice(bytes);
                }
            }
        }
        let framed = frame(&body);
        let path = wal_path(self.epoch.load(Ordering::SeqCst));
        // Mid-append process death: a strict prefix of the frame lands
        // durably and the commit is never acknowledged. Direct `check`
        // call (not the macro) because the torn prefix must be written
        // before the error unwinds.
        if let Err(crash) = crashpoints::check("meta.wal.mid_append") {
            let keep = torn_prefix(&framed);
            if keep > 0 {
                let _ = self.cluster.append(&path, &framed[..keep], Timestamp::MIN);
            }
            self.epoch.fetch_add(1, Ordering::SeqCst);
            return Err(crash);
        }
        match self.cluster.append(&path, &framed, Timestamp::MIN) {
            Ok(_) => Ok(()),
            Err(e) => {
                // The file tail is unknown (the cluster may have persisted
                // a torn prefix); rotate so later commits stay readable.
                self.epoch.fetch_add(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }
}

/// A decoded WAL commit: the write set applied at one commit timestamp.
/// `None` values are deletes.
type WalRecord = (Timestamp, Vec<(String, Option<Vec<u8>>)>);

/// Decoded WAL record: commit timestamp plus write set.
fn decode_wal_record(body: &[u8]) -> VortexResult<WalRecord> {
    let mut pos = 0usize;
    let ts = Timestamp(get_uvarint(body, &mut pos)?);
    let n = get_uvarint(body, &mut pos)? as usize;
    if n > body.len() {
        return Err(VortexError::Decode("implausible WAL write count".into()));
    }
    // lint:allow(L010, recovery-only WAL replay decoding; cold-start path)
    let mut writes = Vec::with_capacity(n);
    for _ in 0..n {
        let klen = get_uvarint(body, &mut pos)? as usize;
        if pos + klen > body.len() {
            return Err(VortexError::Decode("WAL key truncated".into()));
        }
        let key = std::str::from_utf8(&body[pos..pos + klen])
            // lint:allow(L010, recovery-only WAL replay decoding; cold-start path)
            .map_err(|e| VortexError::Decode(format!("WAL key utf8: {e}")))?
            // lint:allow(L010, recovery-only WAL replay decoding; cold-start path)
            .to_string();
        pos += klen;
        let flag = *body
            .get(pos)
            .ok_or_else(|| VortexError::Decode("WAL value flag".into()))?;
        pos += 1;
        let value = match flag {
            0 => None,
            1 => {
                let vlen = get_uvarint(body, &mut pos)? as usize;
                if pos + vlen > body.len() {
                    return Err(VortexError::Decode("WAL value truncated".into()));
                }
                // lint:allow(L010, recovery-only WAL replay decoding; cold-start path)
                let v = body[pos..pos + vlen].to_vec();
                pos += vlen;
                Some(v)
            }
            // lint:allow(L010, recovery-only WAL replay decoding; cold-start path)
            o => return Err(VortexError::Decode(format!("bad WAL value flag {o}"))),
        };
        writes.push((key, value)); // lint:allow(L010, recovery-only WAL replay decoding; cold-start path)
    }
    Ok((ts, writes))
}

/// What [`MetaStore::checkpoint`] published and cleaned up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaCheckpointOutcome {
    /// The version this checkpoint published (strictly increasing).
    pub version: u64,
    /// First WAL epoch *not* covered by the snapshot: recovery replays
    /// epochs `>= covers_epoch`.
    pub covers_epoch: u64,
    /// Size of the published snapshot in bytes.
    pub snapshot_bytes: usize,
    /// Superseded WAL epoch files deleted after publishing.
    pub wal_files_deleted: usize,
    /// Superseded checkpoint files deleted after publishing.
    pub checkpoints_deleted: usize,
}

/// How a [`MetaStore::recover`] call rebuilt the store — the evidence
/// that recovery was checkpoint + tail, not a full-history replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetaRecovery {
    /// Version of the checkpoint the store was restored from (`None` =
    /// cold start with no usable checkpoint).
    pub checkpoint_version: Option<u64>,
    /// Accepted-but-unloadable checkpoints skipped before finding a
    /// valid one (0 = the newest published checkpoint was intact).
    pub fallback_depth: usize,
    /// WAL epoch files replayed on top of the checkpoint.
    pub wal_epochs_replayed: usize,
    /// Commits replayed from the WAL tail.
    pub commits_replayed: usize,
    /// WAL records skipped because the checkpoint already covered them.
    pub commits_skipped: usize,
    /// Bytes dropped from torn WAL/file tails during replay.
    pub torn_bytes_dropped: usize,
}

impl MetaStore {
    /// Rebuilds a durable store from `cluster`: newest valid published
    /// checkpoint (walking the pointer chain backwards past corrupt
    /// ones) plus a frame-by-frame replay of the uncovered WAL tail.
    /// An empty cluster cold-starts an empty durable store. All
    /// subsequent commits through the returned store are WAL-logged
    /// before being acknowledged.
    pub fn recover(
        tt: TrueTime,
        cluster: &Arc<Colossus>,
    ) -> VortexResult<(Arc<Self>, MetaRecovery)> {
        let mut report = MetaRecovery::default();
        let state = read_ptr_state(cluster)?;
        // Newest accepted checkpoint that still loads; a corrupt or
        // missing file just means more WAL to replay from an older one.
        let mut base: Option<(BTreeMap<String, Vec<crate::Version>>, u64, u64)> = None;
        let mut covers_epoch = 0u64;
        for rec in state.chain.iter().rev() {
            match load_checkpoint(cluster, rec) {
                Some((data, last_commit)) => {
                    report.checkpoint_version = Some(rec.version);
                    covers_epoch = rec.covers_epoch;
                    base = Some((data, last_commit, rec.version));
                    break;
                }
                None => report.fallback_depth += 1,
            }
        }
        let store = match base {
            Some((data, last_commit, _)) => Self::from_parts(tt, data, last_commit),
            // lint:allow(L010, cold-start recovery; the append chain through Region::create is a name-collision artifact)
            None => Self::from_parts(tt, BTreeMap::new(), 0),
        };
        // Replay the tail: every epoch the checkpoint does not cover,
        // in epoch order, each file truncated at its first torn frame.
        let mut max_epoch = covers_epoch;
        for path in cluster.list(WAL_DIR)? {
            let Some(epoch) = path
                .strip_prefix(WAL_DIR)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
            else {
                continue;
            };
            max_epoch = max_epoch.max(epoch);
            if epoch < covers_epoch {
                continue;
            }
            let data = cluster.read_all(&path)?.data;
            let (bodies, torn) = parse_frames(&data);
            report.torn_bytes_dropped += torn;
            report.wal_epochs_replayed += 1;
            for body in bodies {
                let (ts, writes) = decode_wal_record(body)?;
                if ts.micros() <= store.last_commit.load(Ordering::SeqCst) {
                    report.commits_skipped += 1;
                    continue;
                }
                store.apply_replay(ts, writes);
                report.commits_replayed += 1;
            }
        }
        // Fresh epoch: never append behind a tail of unknown integrity.
        let d = Durability {
            cluster: Arc::clone(cluster),
            epoch: AtomicU64::new(max_epoch + 1),
        };
        // lint:allow(L010, cold-start recovery; runs once per process, never on the data path)
        let store = Arc::new(store);
        // A store constructed in this function cannot already be durable.
        let _ = store.durability.set(d);
        Ok((store, report))
    }

    /// The WAL epoch new commits currently append to (`None` for
    /// non-durable stores). Diagnostics and tests.
    pub fn wal_epoch(&self) -> Option<u64> {
        self.durability
            .get()
            .map(|d| d.epoch.load(Ordering::SeqCst))
    }

    /// Takes a snapshot and atomically publishes it as the next
    /// checkpoint version, then garbage-collects superseded checkpoint
    /// files and the WAL prefix both retained checkpoints cover.
    ///
    /// The publish goes through a CAS on the version-pointer file: if a
    /// concurrent checkpointer (a split-brain SMS task in a Slicer
    /// double-ownership window) published first, this call is fenced
    /// with [`VortexError::TxnConflict`] and leaves the winner's
    /// checkpoint untouched. Crash points model death mid-snapshot
    /// (`meta.checkpoint.mid_write` — a torn, never-published file) and
    /// just before publish (`meta.checkpoint.pre_publish`): in both
    /// cases the previously published checkpoint keeps recovery intact.
    pub fn checkpoint(&self) -> VortexResult<MetaCheckpointOutcome> {
        let d = self.durability.get().ok_or_else(|| {
            VortexError::InvalidArgument("checkpoint on a non-durable metastore".into())
        })?;
        // Freeze commits just long enough to pair the snapshot with a
        // WAL epoch rotation: the snapshot covers exactly the commits
        // in epochs before `covers_epoch`.
        let (snapshot, covers_epoch) = {
            let _guard = self.commit_lock.lock();
            let snap = self.encode_snapshot();
            let covers = d.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            (snap, covers)
        };
        let state = read_ptr_state(&d.cluster)?;
        let prev_version = state.head_version();
        let rec = PtrRecord {
            prev_version,
            version: prev_version + 1,
            nonce: next_nonce(),
            covers_epoch,
        };
        let path = ckpt_path(rec.version, rec.nonce);
        let mut body = Vec::with_capacity(snapshot.len() + 4);
        put_uvarint(&mut body, covers_epoch);
        body.extend_from_slice(&snapshot);
        let framed = frame(&body);
        // Mid-write process death: a torn, unpublished candidate file.
        // Direct `check` call so the torn prefix lands first.
        if let Err(crash) = crashpoints::check("meta.checkpoint.mid_write") {
            let keep = torn_prefix(&framed);
            if keep > 0 {
                let _ = d.cluster.append(&path, &framed[..keep], Timestamp::MIN);
            }
            return Err(crash);
        }
        d.cluster.append(&path, &framed, Timestamp::MIN)?;
        // Fully durable but not yet published: recovery still uses the
        // previous checkpoint (plus a longer WAL tail) if we die here.
        vortex_common::crash_point!("meta.checkpoint.pre_publish");
        let ptr_file = ptr_path(state.append_gen);
        if state.needs_anchor {
            // Fresh generation (the previous one ended in a torn tail,
            // or a compaction is due): anchor it with a re-statement of
            // the chain head so the older generations become deletable.
            if let Some(head) = state.chain.last() {
                d.cluster
                    .append(&ptr_file, &frame(&head.encode()), Timestamp::MIN)?;
            }
        }
        // On append failure the generation's tail is of unknown
        // integrity; the next publish re-reads and rotates past it. Our
        // candidate file leaks until the next successful checkpoint's GC.
        d.cluster
            .append(&ptr_file, &frame(&rec.encode()), Timestamp::MIN)?;
        let after = read_ptr_state(&d.cluster)?;
        if !after.chain.contains(&rec) {
            // CAS lost: someone else published this version first. Drop
            // our candidate and fence the caller.
            let _ = d.cluster.delete(&path);
            return Err(VortexError::TxnConflict(format!(
                "checkpoint version {} already published by a concurrent writer (fenced)",
                rec.version
            )));
        }
        // Pointer compaction: our anchored generation now carries the
        // chain, so everything older can go.
        if state.needs_anchor {
            for f in d.cluster.list(PTR_PREFIX)? {
                let stale = f
                    .strip_prefix(PTR_PREFIX)
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .is_some_and(|g| g < state.append_gen);
                if stale {
                    d.cluster.delete(&f)?;
                }
            }
        }
        // GC: keep the newest CKPT_RETAIN published checkpoints and the
        // WAL epochs at or after the oldest retained one's coverage.
        let retained: Vec<&PtrRecord> = after.chain.iter().rev().take(CKPT_RETAIN).collect();
        let keep_files: Vec<String> = retained
            .iter()
            .map(|r| ckpt_path(r.version, r.nonce))
            .collect();
        let min_covers = retained
            .iter()
            .map(|r| r.covers_epoch)
            .min()
            .unwrap_or(covers_epoch);
        let mut checkpoints_deleted = 0usize;
        for f in d.cluster.list(CKPT_FILE_PREFIX)? {
            if !keep_files.contains(&f) {
                d.cluster.delete(&f)?;
                checkpoints_deleted += 1;
            }
        }
        let mut wal_files_deleted = 0usize;
        for f in d.cluster.list(WAL_DIR)? {
            let Some(epoch) = f
                .strip_prefix(WAL_DIR)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
            else {
                continue;
            };
            if epoch < min_covers {
                d.cluster.delete(&f)?;
                wal_files_deleted += 1;
            }
        }
        Ok(MetaCheckpointOutcome {
            version: rec.version,
            covers_epoch,
            snapshot_bytes: snapshot.len(),
            wal_files_deleted,
            checkpoints_deleted,
        })
    }
}

/// Loads and validates one published checkpoint; `None` means corrupt,
/// torn, or missing — the caller falls back to an older one.
fn load_checkpoint(
    cluster: &Colossus,
    rec: &PtrRecord,
) -> Option<(BTreeMap<String, Vec<crate::Version>>, u64)> {
    let path = ckpt_path(rec.version, rec.nonce);
    if !cluster.exists(&path) {
        return None;
    }
    let data = cluster.read_all(&path).ok()?.data;
    let (bodies, _torn) = parse_frames(&data);
    let body = bodies.first()?;
    let mut pos = 0usize;
    let covers = get_uvarint(body, &mut pos).ok()?;
    if covers != rec.covers_epoch {
        return None;
    }
    MetaStore::decode_snapshot(&body[pos..]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use vortex_common::ids::ClusterId;
    use vortex_common::latency::WriteProfile;
    use vortex_common::truetime::SimClock;

    /// Crash points and fault tokens are process-global; durable-store
    /// tests must not see each other's.
    static ARM_LOCK: Mutex<()> = Mutex::new(());

    fn tt() -> TrueTime {
        TrueTime::simulated(SimClock::new(1_000), 10, 0)
    }

    fn mem_cluster() -> Arc<Colossus> {
        Colossus::new_mem(ClusterId::from_raw(0x5DB), WriteProfile::instant(), 7)
    }

    fn put(s: &Arc<MetaStore>, k: &str, v: &[u8]) -> Timestamp {
        let mut t = s.begin();
        t.put(k, v.to_vec());
        t.commit().unwrap()
    }

    fn del(s: &Arc<MetaStore>, k: &str) -> Timestamp {
        let mut t = s.begin();
        t.delete(k);
        t.commit().unwrap()
    }

    /// The newest checkpoint file on the cluster, by version then nonce
    /// (filenames zero-pad both, so the lexical max is the newest).
    fn newest_ckpt_file(c: &Colossus) -> String {
        c.list(CKPT_FILE_PREFIX).unwrap().into_iter().max().unwrap()
    }

    #[test]
    fn empty_cluster_cold_starts_durable_and_empty() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s, rep) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep, MetaRecovery::default());
        assert!(s.is_durable());
        assert_eq!(s.version_count(), 0);
        // The cold-started store logs commits immediately.
        put(&s, "a", b"1");
        let (s2, rep2) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep2.commits_replayed, 1);
        assert_eq!(rep2.checkpoint_version, None);
        assert_eq!(s2.read_at("a", s2.now()), Some(b"1".to_vec()));
    }

    #[test]
    fn wal_replay_restores_every_acked_commit() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s, _) = MetaStore::recover(tt(), &c).unwrap();
        put(&s, "a", b"1");
        put(&s, "b", b"2");
        put(&s, "a", b"3");
        del(&s, "b");
        let (r, rep) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep.commits_replayed, 4);
        assert_eq!(r.snapshot_bytes(), s.snapshot_bytes());
    }

    #[test]
    fn torn_wal_append_aborts_commit_and_replay_drops_the_tail() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s, _) = MetaStore::recover(tt(), &c).unwrap();
        put(&s, "acked", b"1");
        // The next WAL append durably persists only a seeded prefix and
        // fails: the commit must not ack or install.
        c.faults().set_torn_seed(0xBAD);
        c.faults().torn_next_appends(1);
        let mut t = s.begin();
        t.put("lost", b"x".to_vec());
        assert!(t.commit().is_err());
        assert_eq!(s.read_at("lost", s.now()), None);
        // The epoch rotated past the unreadable tail, so later commits
        // stay recoverable.
        put(&s, "after", b"2");
        let (r, rep) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep.commits_replayed, 2);
        assert_eq!(r.read_at("lost", r.now()), None);
        assert_eq!(r.snapshot_bytes(), s.snapshot_bytes());
    }

    #[test]
    fn mid_append_crash_is_atomic_per_commit() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s, _) = MetaStore::recover(tt(), &c).unwrap();
        put(&s, "a", b"1");
        let before = s.now();
        let guard = crashpoints::arm_nth("meta.wal.mid_append", 1);
        let mut t = s.begin();
        t.put("dead", b"x".to_vec());
        let err = t.commit().unwrap_err();
        assert!(matches!(err, VortexError::SimulatedCrash(_)));
        drop(guard);
        // Never acked, never installed, never recovered.
        assert_eq!(s.now(), before);
        assert_eq!(s.read_at("dead", s.now()), None);
        put(&s, "b", b"2");
        let (r, _) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(r.read_at("dead", r.now()), None);
        assert_eq!(r.snapshot_bytes(), s.snapshot_bytes());
    }

    #[test]
    fn checkpoint_bounds_recovery_to_the_tail() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s, _) = MetaStore::recover(tt(), &c).unwrap();
        for i in 0..5 {
            put(&s, &format!("k{i}"), b"v");
        }
        let o1 = s.checkpoint().unwrap();
        assert_eq!(o1.version, 1);
        assert_eq!(o1.wal_files_deleted, 1, "covered WAL prefix kept: {o1:?}");
        for i in 0..3 {
            put(&s, &format!("tail{i}"), b"v");
        }
        let (r, rep) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep.checkpoint_version, Some(1));
        assert_eq!(rep.commits_replayed, 3, "{rep:?}");
        assert_eq!(rep.commits_skipped, 0, "{rep:?}");
        assert_eq!(r.snapshot_bytes(), s.snapshot_bytes());
        // A second checkpoint empties the replay tail, but keeps the
        // WAL epoch its fallback (version 1) would need; the epoch is
        // only truncated once version 3 pushes version 1 out of the
        // retained window.
        let o2 = s.checkpoint().unwrap();
        assert_eq!(o2.version, 2);
        assert_eq!(o2.wal_files_deleted, 0, "{o2:?}");
        let (r2, rep2) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep2.checkpoint_version, Some(2));
        assert_eq!(rep2.commits_replayed, 0, "{rep2:?}");
        assert_eq!(r2.snapshot_bytes(), s.snapshot_bytes());
        let o3 = s.checkpoint().unwrap();
        assert_eq!(o3.version, 3);
        assert_eq!(o3.wal_files_deleted, 1, "{o3:?}");
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_previous() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s, _) = MetaStore::recover(tt(), &c).unwrap();
        put(&s, "a", b"1");
        s.checkpoint().unwrap();
        put(&s, "b", b"2");
        s.checkpoint().unwrap();
        put(&s, "c", b"3");
        // Lose the newest checkpoint file (still published in the
        // pointer chain): recovery walks back to version 1 and replays
        // a longer tail instead.
        c.delete(&newest_ckpt_file(&c)).unwrap();
        let (r, rep) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep.checkpoint_version, Some(1), "{rep:?}");
        assert_eq!(rep.fallback_depth, 1, "{rep:?}");
        assert_eq!(rep.commits_replayed, 2, "{rep:?}");
        assert_eq!(r.snapshot_bytes(), s.snapshot_bytes());
    }

    #[test]
    fn cas_loser_record_is_rejected_by_the_fold() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s, _) = MetaStore::recover(tt(), &c).unwrap();
        put(&s, "a", b"1");
        s.checkpoint().unwrap();
        // A split-brain rival that read the chain before our publish
        // appends its own version-1 record; the fold must reject it.
        let loser = PtrRecord {
            prev_version: 0,
            version: 1,
            nonce: 0xDEAD,
            covers_epoch: 1,
        };
        c.append(&ptr_path(0), &frame(&loser.encode()), Timestamp::MIN)
            .unwrap();
        let state = read_ptr_state(&c).unwrap();
        assert_eq!(state.chain.len(), 1);
        assert!(!state.chain.contains(&loser));
        // Publishing continues linearly past the rejected record.
        let o = s.checkpoint().unwrap();
        assert_eq!(o.version, 2);
        let (_, rep) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep.checkpoint_version, Some(2));
        assert_eq!(rep.fallback_depth, 0);
    }

    #[test]
    fn torn_pointer_tail_rotates_generation_and_heals() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s, _) = MetaStore::recover(tt(), &c).unwrap();
        put(&s, "a", b"1");
        let o1 = s.checkpoint().unwrap();
        // A death mid-pointer-append leaves a torn frame at the tail of
        // generation 0. Append-only files cannot be truncated, so the
        // generation is unusable from here on.
        let garbage = frame(&[0x42; 20]);
        c.append(&ptr_path(0), &garbage[..7], Timestamp::MIN)
            .unwrap();
        // The next publish rotates to an anchored generation 1, then
        // deletes generation 0.
        put(&s, "b", b"2");
        let o2 = s.checkpoint().unwrap();
        assert_eq!(o2.version, o1.version + 1);
        assert_eq!(c.list(PTR_PREFIX).unwrap(), vec![ptr_path(1)]);
        let (r, rep) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(rep.checkpoint_version, Some(o2.version));
        assert_eq!(rep.fallback_depth, 0);
        assert_eq!(r.snapshot_bytes(), s.snapshot_bytes());
        // A healthy generation does not rotate again.
        let o3 = s.checkpoint().unwrap();
        assert_eq!(o3.version, o2.version + 1);
        assert_eq!(c.list(PTR_PREFIX).unwrap(), vec![ptr_path(1)]);
    }

    #[test]
    fn concurrent_checkpoints_publish_one_linear_chain() {
        let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = mem_cluster();
        let (s1, _) = MetaStore::recover(tt(), &c).unwrap();
        put(&s1, "seed", b"1");
        // A second durable store over the same cluster: a split-brain
        // SMS task during a Slicer double-ownership window.
        let (s2, _) = MetaStore::recover(tt(), &c).unwrap();
        let oks = std::sync::atomic::AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            for s in [&s1, &s2] {
                scope.spawn(|| {
                    for _ in 0..8 {
                        barrier.wait();
                        match s.checkpoint() {
                            Ok(_) => {
                                oks.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(VortexError::TxnConflict(_)) => {}
                            Err(e) => panic!("unexpected checkpoint error: {e}"),
                        }
                    }
                });
            }
        });
        // Exactly one record per published version: the chain head is
        // the number of successful publishes, however the race fell.
        let state = read_ptr_state(&c).unwrap();
        assert_eq!(state.head_version(), oks.load(Ordering::SeqCst) as u64);
        // And the durable ledger still equals the store that owns all
        // the commits, even if a stale split-brain snapshot published
        // last (the WAL tail fills the gap).
        let (r, _) = MetaStore::recover(tt(), &c).unwrap();
        assert_eq!(r.snapshot_bytes(), s1.snapshot_bytes());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Put(u8, u8),
            Del(u8),
            Checkpoint,
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                4 => (0u8..6, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
                2 => (0u8..6).prop_map(Op::Del),
                1 => Just(Op::Checkpoint),
            ]
        }

        proptest! {
            /// For any interleaving of commits and checkpoints, a store
            /// recovered from durable state equals the pre-crash store
            /// byte-for-byte, and replay is bounded by the commits
            /// since the last checkpoint — never full history.
            #[test]
            fn replay_of_checkpoint_plus_tail_equals_pre_crash(ops in proptest::collection::vec(op_strategy(), 1..40)) {
                let _arm = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                let c = mem_cluster();
                let (s, _) = MetaStore::recover(tt(), &c).unwrap();
                let mut since_ckpt = 0usize;
                let mut ckpts = 0usize;
                for op in ops {
                    match op {
                        Op::Put(k, v) => {
                            put(&s, &format!("k{k}"), &[v]);
                            since_ckpt += 1;
                        }
                        Op::Del(k) => {
                            del(&s, &format!("k{k}"));
                            since_ckpt += 1;
                        }
                        Op::Checkpoint => {
                            s.checkpoint().unwrap();
                            ckpts += 1;
                            since_ckpt = 0;
                        }
                    }
                }
                let (r, rep) = MetaStore::recover(tt(), &c).unwrap();
                prop_assert_eq!(r.snapshot_bytes(), s.snapshot_bytes());
                prop_assert_eq!(rep.commits_replayed, since_ckpt);
                prop_assert_eq!(rep.checkpoint_version, (ckpts > 0).then_some(ckpts as u64));
            }
        }
    }
}
