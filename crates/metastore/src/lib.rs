//! A Spanner-lite: the transactional metadata database behind the SMS.
//!
//! Vortex stores "metadata for Streams and Streamlets ... using a regional
//! Spanner database" (§5.1) and leans on "the ACID semantics offered by
//! the Spanner transactions" to stay correct even when Slicer briefly lets
//! two SMS tasks both believe they own a table (§5.2.1). Commit timestamps
//! double as the visibility timestamps of the fragment LSM
//! (`[creation_timestamp, deletion_timestamp)`, §6.1), so they come from
//! the same TrueTime source the Stream Servers stamp records with.
//!
//! This crate implements the slice of Spanner the engine needs:
//!
//! - a multi-version key-value store with string keys and byte values;
//! - **serializable optimistic transactions**: reads are validated at
//!   commit (keys *and* prefix ranges, so phantom inserts are caught),
//!   writes install atomically at a TrueTime-derived commit timestamp;
//! - **snapshot reads** at any timestamp ([`MetaStore::read_at`],
//!   [`MetaStore::scan_prefix_at`]), which is how query-time metadata
//!   resolution sees a consistent fragment set;
//! - version garbage collection below a caller-supplied watermark;
//! - **crash-consistent durability** ([`durability`]): commits append a
//!   length+CRC-framed record of their write set to a WAL in Colossus
//!   before they are acknowledged, checkpoints publish atomically
//!   through a version-pointer CAS, and recovery replays
//!   latest-valid-checkpoint + WAL tail ([`MetaStore::recover`]).
//!
//! Geographic replication is out of scope (it is orthogonal to every claim
//! the paper makes about Vortex itself).

#![warn(missing_docs)]

pub mod durability;

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

use vortex_common::error::{VortexError, VortexResult};
use vortex_common::truetime::{Timestamp, TrueTime};

use durability::Durability;
pub use durability::{MetaCheckpointOutcome, MetaRecovery};

/// One committed version of a key. `None` value = tombstone (deleted).
#[derive(Debug, Clone)]
pub(crate) struct Version {
    pub(crate) ts: Timestamp,
    pub(crate) value: Option<Vec<u8>>,
}

/// What a transaction read, for commit-time validation.
#[derive(Debug, Clone)]
enum ReadFootprint {
    Key(String),
    Prefix(String),
}

/// The metadata store. Cheap to share via `Arc`.
pub struct MetaStore {
    pub(crate) data: RwLock<BTreeMap<String, Vec<Version>>>,
    pub(crate) commit_lock: Mutex<()>,
    pub(crate) last_commit: AtomicU64,
    tt: TrueTime,
    /// Optional WAL + checkpoint machinery. Empty for plain in-memory
    /// stores ([`MetaStore::new`]); set exactly once by
    /// [`MetaStore::recover`], after which every commit is WAL-logged
    /// before it is acknowledged.
    pub(crate) durability: OnceLock<Durability>,
}

impl MetaStore {
    /// Creates a store whose commit timestamps come from `tt`.
    pub fn new(tt: TrueTime) -> Arc<Self> {
        Arc::new(Self::from_parts(tt, BTreeMap::new(), 0))
    }

    pub(crate) fn from_parts(
        tt: TrueTime,
        data: BTreeMap<String, Vec<Version>>,
        last_commit: u64,
    ) -> Self {
        Self {
            data: RwLock::new(data),
            commit_lock: Mutex::new(()),
            last_commit: AtomicU64::new(last_commit),
            tt,
            durability: OnceLock::new(),
        }
    }

    /// Whether commits are WAL-logged to Colossus before being acked
    /// (true after [`MetaStore::recover`]).
    pub fn is_durable(&self) -> bool {
        self.durability.get().is_some()
    }

    /// The highest commit timestamp so far: a safe snapshot that sees all
    /// committed transactions.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.last_commit.load(Ordering::SeqCst))
    }

    /// A fresh read-write transaction snapshotted at [`MetaStore::now`].
    pub fn begin(self: &Arc<Self>) -> Txn {
        Txn {
            store: Arc::clone(self),
            read_ts: self.now(),
            reads: Vec::new(),
            writes: BTreeMap::new(),
        }
    }

    /// Reads the value of `key` visible at `ts` (inclusive).
    pub fn read_at(&self, key: &str, ts: Timestamp) -> Option<Vec<u8>> {
        let data = self.data.read();
        visible(data.get(key)?, ts)
    }

    /// Scans all live keys with the given prefix at `ts`, sorted by key.
    pub fn scan_prefix_at(&self, prefix: &str, ts: Timestamp) -> Vec<(String, Vec<u8>)> {
        let data = self.data.read();
        data.range::<String, _>((Bound::Included(prefix.to_string()), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(k, versions)| visible(versions, ts).map(|v| (k.clone(), v)))
            .collect()
    }

    /// Runs `f` inside a transaction, retrying on [`VortexError::TxnConflict`]
    /// up to `max_retries` times. The usual way components mutate metadata.
    pub fn with_txn<T>(
        self: &Arc<Self>,
        max_retries: usize,
        f: impl FnMut(&mut Txn) -> VortexResult<T>,
    ) -> VortexResult<T> {
        self.with_txn_at(max_retries, f).map(|(out, _)| out)
    }

    /// Like [`MetaStore::with_txn`], but also returns the commit
    /// timestamp — the snapshot from which the transaction's effects are
    /// visible.
    pub fn with_txn_at<T>(
        self: &Arc<Self>,
        max_retries: usize,
        mut f: impl FnMut(&mut Txn) -> VortexResult<T>,
    ) -> VortexResult<(T, Timestamp)> {
        let mut attempts = 0;
        loop {
            let mut txn = self.begin();
            let out = f(&mut txn)?;
            match txn.commit() {
                Ok(ts) => return Ok((out, ts)),
                Err(VortexError::TxnConflict(msg)) => {
                    attempts += 1;
                    if attempts > max_retries {
                        return Err(VortexError::TxnConflict(format!(
                            "{msg} (after {attempts} attempts)"
                        )));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Drops all versions strictly older than the newest version at or
    /// below `watermark` for each key, and fully-deleted keys whose
    /// tombstone is below the watermark. Returns versions removed.
    pub fn gc_versions(&self, watermark: Timestamp) -> usize {
        let mut data = self.data.write();
        let mut removed = 0usize;
        data.retain(|_, versions| {
            // Find the latest version at or below the watermark; earlier
            // ones can never be read again.
            if let Some(keep_from) = versions.iter().rposition(|v| v.ts <= watermark) {
                removed += keep_from;
                versions.drain(..keep_from);
            }
            // If the only remaining version is an old tombstone, drop the key.
            if versions.len() == 1 && versions[0].value.is_none() && versions[0].ts <= watermark {
                removed += 1;
                return false;
            }
            true
        });
        removed
    }

    /// Total number of stored versions (diagnostics / GC tests).
    pub fn version_count(&self) -> usize {
        self.data.read().values().map(|v| v.len()).sum()
    }

    /// Serializes the full store (every key's version chain) for
    /// checkpointing — production Spanner is durable on its own; the
    /// simulated store checkpoints into Colossus so on-disk regions
    /// survive restarts.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let _guard = self.commit_lock.lock(); // freeze commits mid-snapshot
        self.encode_snapshot()
    }

    /// Serializes the store without taking the commit lock — callers
    /// (checkpointing) must already hold it to freeze commits.
    pub(crate) fn encode_snapshot(&self) -> Vec<u8> {
        use vortex_common::codec::put_uvarint;
        let data = self.data.read();
        let mut out = Vec::new();
        out.extend_from_slice(b"VMST");
        put_uvarint(&mut out, self.now().micros());
        put_uvarint(&mut out, data.len() as u64);
        for (k, versions) in data.iter() {
            put_uvarint(&mut out, k.len() as u64);
            out.extend_from_slice(k.as_bytes());
            put_uvarint(&mut out, versions.len() as u64);
            for v in versions {
                put_uvarint(&mut out, v.ts.micros());
                match &v.value {
                    None => out.push(0),
                    Some(b) => {
                        out.push(1);
                        put_uvarint(&mut out, b.len() as u64);
                        out.extend_from_slice(b);
                    }
                }
            }
        }
        let crc = vortex_common::crc::crc32c(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Restores a store from [`MetaStore::snapshot_bytes`] output.
    pub fn restore(tt: TrueTime, bytes: &[u8]) -> VortexResult<Arc<Self>> {
        let (data, last_commit) = Self::decode_snapshot(bytes)?;
        Ok(Arc::new(Self::from_parts(tt, data, last_commit)))
    }

    /// Decodes a snapshot into its version map and last-commit
    /// timestamp, validating magic, CRC, and exact length.
    pub(crate) fn decode_snapshot(
        bytes: &[u8],
    ) -> VortexResult<(BTreeMap<String, Vec<Version>>, u64)> {
        use vortex_common::codec::get_uvarint;
        if bytes.len() < 8 || &bytes[..4] != b"VMST" {
            return Err(VortexError::Decode("not a metastore snapshot".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        // lint:allow(L002, split_at(len - 4) yields exactly 4 bytes; the length was checked above)
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if vortex_common::crc::crc32c(body) != stored {
            return Err(VortexError::CorruptData("metastore snapshot crc".into()));
        }
        let mut pos = 4usize;
        let last_commit = get_uvarint(body, &mut pos)?;
        let nkeys = get_uvarint(body, &mut pos)? as usize;
        if nkeys > body.len() {
            return Err(VortexError::Decode("implausible key count".into()));
        }
        let mut data = BTreeMap::new();
        for _ in 0..nkeys {
            let klen = get_uvarint(body, &mut pos)? as usize;
            if pos + klen > body.len() {
                return Err(VortexError::Decode("snapshot key truncated".into()));
            }
            let key = std::str::from_utf8(&body[pos..pos + klen])
                .map_err(|e| VortexError::Decode(format!("snapshot key utf8: {e}")))?
                .to_string();
            pos += klen;
            let nver = get_uvarint(body, &mut pos)? as usize;
            if nver > body.len() {
                return Err(VortexError::Decode("implausible version count".into()));
            }
            let mut versions = Vec::with_capacity(nver);
            for _ in 0..nver {
                let ts = Timestamp(get_uvarint(body, &mut pos)?);
                let flag = *body
                    .get(pos)
                    .ok_or_else(|| VortexError::Decode("snapshot flag".into()))?;
                pos += 1;
                let value = match flag {
                    0 => None,
                    1 => {
                        let n = get_uvarint(body, &mut pos)? as usize;
                        if pos + n > body.len() {
                            return Err(VortexError::Decode("snapshot value truncated".into()));
                        }
                        let v = body[pos..pos + n].to_vec();
                        pos += n;
                        Some(v)
                    }
                    o => return Err(VortexError::Decode(format!("bad snapshot flag {o}"))),
                };
                versions.push(Version { ts, value });
            }
            data.insert(key, versions);
        }
        if pos != body.len() {
            return Err(VortexError::Decode("trailing snapshot bytes".into()));
        }
        Ok((data, last_commit))
    }

    /// Installs one replayed commit directly, bypassing validation and
    /// the WAL (the record came *from* the WAL). Recovery-only: the
    /// store is not yet shared when this runs.
    pub(crate) fn apply_replay(&self, ts: Timestamp, writes: Vec<(String, Option<Vec<u8>>)>) {
        // lint:allow(L011, replay runs only during cold-start recovery before the store is shared; no hot path can contend)
        let mut data = self.data.write();
        for (k, v) in writes {
            // lint:allow(L010, replay runs only during cold-start recovery, never on the data path)
            data.entry(k).or_default().push(Version { ts, value: v });
        }
        self.last_commit.store(ts.0, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for MetaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaStore")
            .field("keys", &self.data.read().len())
            .field("last_commit", &self.now())
            .finish()
    }
}

fn visible(versions: &[Version], ts: Timestamp) -> Option<Vec<u8>> {
    versions
        .iter()
        .rev()
        .find(|v| v.ts <= ts)
        .and_then(|v| v.value.clone())
}

/// A serializable read-write transaction.
///
/// Reads see the snapshot at `read_ts` plus the transaction's own writes.
/// `commit` validates every read key and scanned prefix against versions
/// committed after `read_ts`; any overlap aborts with
/// [`VortexError::TxnConflict`].
pub struct Txn {
    store: Arc<MetaStore>,
    read_ts: Timestamp,
    reads: Vec<ReadFootprint>,
    writes: BTreeMap<String, Option<Vec<u8>>>,
}

impl Txn {
    /// The snapshot timestamp this transaction reads at.
    pub fn read_ts(&self) -> Timestamp {
        self.read_ts
    }

    /// Reads a key (own writes win over the snapshot).
    pub fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        if let Some(w) = self.writes.get(key) {
            return w.clone();
        }
        self.reads.push(ReadFootprint::Key(key.to_string()));
        self.store.read_at(key, self.read_ts)
    }

    /// Scans a prefix (own writes merged in), sorted by key.
    pub fn scan_prefix(&mut self, prefix: &str) -> Vec<(String, Vec<u8>)> {
        self.reads.push(ReadFootprint::Prefix(prefix.to_string()));
        let mut snapshot: BTreeMap<String, Vec<u8>> = self
            .store
            .scan_prefix_at(prefix, self.read_ts)
            .into_iter()
            .collect();
        for (k, w) in self
            .writes
            .range::<String, _>((Bound::Included(prefix.to_string()), Bound::Unbounded))
        {
            if !k.starts_with(prefix) {
                break;
            }
            match w {
                Some(v) => {
                    snapshot.insert(k.clone(), v.clone());
                }
                None => {
                    snapshot.remove(k);
                }
            }
        }
        snapshot.into_iter().collect()
    }

    /// Buffers a write.
    pub fn put(&mut self, key: &str, value: Vec<u8>) {
        self.writes.insert(key.to_string(), Some(value));
    }

    /// Buffers a deletion.
    pub fn delete(&mut self, key: &str) {
        self.writes.insert(key.to_string(), None);
    }

    /// Validates and commits; returns the commit timestamp.
    pub fn commit(self) -> VortexResult<Timestamp> {
        let store = self.store;
        let _guard = store.commit_lock.lock();
        {
            let data = store.data.read();
            // Validate reads: abort if anything read was re-written after
            // our snapshot. Prefix footprints also catch phantom inserts.
            for fp in &self.reads {
                match fp {
                    ReadFootprint::Key(k) => {
                        if let Some(versions) = data.get(k) {
                            if versions
                                .last()
                                .map(|v| v.ts > self.read_ts)
                                .unwrap_or(false)
                            {
                                return Err(VortexError::TxnConflict(format!(
                                    "key {k} modified after snapshot {}",
                                    self.read_ts
                                )));
                            }
                        }
                    }
                    ReadFootprint::Prefix(p) => {
                        let conflict = data
                            .range::<String, _>((Bound::Included(p.clone()), Bound::Unbounded))
                            .take_while(|(k, _)| k.starts_with(p.as_str()))
                            .any(|(_, versions)| {
                                versions
                                    .last()
                                    .map(|v| v.ts > self.read_ts)
                                    .unwrap_or(false)
                            });
                        if conflict {
                            return Err(VortexError::TxnConflict(format!(
                                "prefix {p} modified after snapshot {}",
                                self.read_ts
                            )));
                        }
                    }
                }
            }
            // Write-write conflicts (first committer wins).
            for k in self.writes.keys() {
                if let Some(versions) = data.get(k) {
                    if versions
                        .last()
                        .map(|v| v.ts > self.read_ts)
                        .unwrap_or(false)
                    {
                        return Err(VortexError::TxnConflict(format!(
                            "write-write conflict on {k}"
                        )));
                    }
                }
            }
        }
        // Commit timestamp: TrueTime-derived, strictly increasing.
        let tt_now = store.tt.record_timestamp().0;
        let prev = store.last_commit.load(Ordering::SeqCst);
        let commit_ts = Timestamp(tt_now.max(prev + 1));
        // Durability barrier: the write set must be in the WAL before
        // anything is installed or acknowledged. A failed append (torn
        // or otherwise) aborts the commit with nothing installed, so the
        // live store and a recovered store agree on exactly which
        // commits exist.
        if let Some(d) = store.durability.get() {
            d.log_commit(commit_ts, &self.writes)?;
        }
        {
            let mut data = store.data.write();
            for (k, v) in self.writes {
                data.entry(k).or_default().push(Version {
                    ts: commit_ts,
                    value: v,
                });
            }
        }
        store.last_commit.store(commit_ts.0, Ordering::SeqCst);
        Ok(commit_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_common::truetime::SimClock;

    fn store() -> Arc<MetaStore> {
        MetaStore::new(TrueTime::simulated(SimClock::new(1_000), 10, 0))
    }

    fn commit_with(s: &Arc<MetaStore>, f: impl FnOnce(&mut Txn)) -> Timestamp {
        let mut t = s.begin();
        f(&mut t);
        t.commit().unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        let ts = commit_with(&s, |t| t.put("a", b"1".to_vec()));
        assert_eq!(s.read_at("a", ts), Some(b"1".to_vec()));
        assert_eq!(s.read_at("a", ts.minus_micros(1)), None);
        let mut t = s.begin();
        assert_eq!(t.get("a"), Some(b"1".to_vec()));
    }

    #[test]
    fn snapshot_reads_are_stable() {
        let s = store();
        let ts1 = commit_with(&s, |t| t.put("k", b"v1".to_vec()));
        let ts2 = commit_with(&s, |t| t.put("k", b"v2".to_vec()));
        assert_eq!(s.read_at("k", ts1), Some(b"v1".to_vec()));
        assert_eq!(s.read_at("k", ts2), Some(b"v2".to_vec()));
        assert!(ts2 > ts1);
    }

    #[test]
    fn delete_writes_tombstone() {
        let s = store();
        let ts1 = commit_with(&s, |t| t.put("k", b"v".to_vec()));
        let ts2 = commit_with(&s, |t| t.delete("k"));
        assert_eq!(s.read_at("k", ts1), Some(b"v".to_vec()));
        assert_eq!(s.read_at("k", ts2), None);
    }

    #[test]
    fn txn_sees_own_writes() {
        let s = store();
        let mut t = s.begin();
        t.put("x", b"1".to_vec());
        assert_eq!(t.get("x"), Some(b"1".to_vec()));
        t.delete("x");
        assert_eq!(t.get("x"), None);
        let scan = t.scan_prefix("x");
        assert!(scan.is_empty());
    }

    #[test]
    fn write_write_conflict_aborts_second() {
        let s = store();
        let mut t1 = s.begin();
        let mut t2 = s.begin();
        t1.put("k", b"a".to_vec());
        t2.put("k", b"b".to_vec());
        t1.commit().unwrap();
        assert!(matches!(t2.commit(), Err(VortexError::TxnConflict(_))));
    }

    #[test]
    fn read_write_conflict_detected() {
        let s = store();
        commit_with(&s, |t| t.put("k", b"0".to_vec()));

        let mut reader = s.begin();
        let _ = reader.get("k");
        reader.put("other", b"x".to_vec());

        let mut writer = s.begin();
        writer.put("k", b"1".to_vec());
        writer.commit().unwrap();

        // reader read k at a snapshot that is now stale → serializable
        // validation must abort it.
        assert!(matches!(reader.commit(), Err(VortexError::TxnConflict(_))));
    }

    #[test]
    fn phantom_inserts_conflict_with_prefix_scans() {
        let s = store();
        let mut scanner = s.begin();
        let rows = scanner.scan_prefix("tbl/1/");
        assert!(rows.is_empty());
        scanner.put("summary", b"empty".to_vec());

        let mut inserter = s.begin();
        inserter.put("tbl/1/stream/9", b"s".to_vec());
        inserter.commit().unwrap();

        assert!(matches!(scanner.commit(), Err(VortexError::TxnConflict(_))));
    }

    #[test]
    fn disjoint_transactions_both_commit() {
        let s = store();
        let mut t1 = s.begin();
        let mut t2 = s.begin();
        t1.put("a", b"1".to_vec());
        t2.put("b", b"2".to_vec());
        t1.commit().unwrap();
        t2.commit().unwrap();
        let ts = s.now();
        assert_eq!(s.read_at("a", ts), Some(b"1".to_vec()));
        assert_eq!(s.read_at("b", ts), Some(b"2".to_vec()));
    }

    #[test]
    fn scan_prefix_merges_writes_and_respects_boundaries() {
        let s = store();
        commit_with(&s, |t| {
            t.put("p/a", b"1".to_vec());
            t.put("p/b", b"2".to_vec());
            t.put("q/a", b"3".to_vec());
        });
        let mut t = s.begin();
        t.put("p/c", b"4".to_vec());
        t.delete("p/a");
        let scan = t.scan_prefix("p/");
        let keys: Vec<_> = scan.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["p/b", "p/c"]);
    }

    #[test]
    fn with_txn_retries_conflicts() {
        let s = store();
        commit_with(&s, |t| t.put("counter", 0u64.to_le_bytes().to_vec()));

        // 8 threads × 50 increments with retry: the total must be exact.
        let mut handles = vec![];
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    s.with_txn(10_000, |txn| {
                        let cur = txn
                            .get("counter")
                            .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
                            .unwrap_or(0);
                        txn.put("counter", (cur + 1).to_le_bytes().to_vec());
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = s.read_at("counter", s.now()).unwrap();
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 400);
    }

    #[test]
    fn bank_transfer_invariant_under_concurrency() {
        let s = store();
        commit_with(&s, |t| {
            t.put("acct/a", 500i64.to_le_bytes().to_vec());
            t.put("acct/b", 500i64.to_le_bytes().to_vec());
        });
        let mut handles = vec![];
        for i in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for j in 0..25 {
                    let amount = ((i * 25 + j) % 7) as i64 + 1;
                    let (from, to) = if j % 2 == 0 {
                        ("acct/a", "acct/b")
                    } else {
                        ("acct/b", "acct/a")
                    };
                    s.with_txn(10_000, |t| {
                        let read = |t: &mut Txn, k: &str| {
                            t.get(k)
                                .map(|b| i64::from_le_bytes(b[..8].try_into().unwrap()))
                                .unwrap()
                        };
                        let f = read(t, from);
                        let g = read(t, to);
                        t.put(from, (f - amount).to_le_bytes().to_vec());
                        t.put(to, (g + amount).to_le_bytes().to_vec());
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ts = s.now();
        let a = i64::from_le_bytes(s.read_at("acct/a", ts).unwrap()[..8].try_into().unwrap());
        let b = i64::from_le_bytes(s.read_at("acct/b", ts).unwrap()[..8].try_into().unwrap());
        assert_eq!(a + b, 1000, "money conserved");
    }

    #[test]
    fn gc_drops_unreachable_versions() {
        let s = store();
        for i in 0..10 {
            commit_with(&s, |t| t.put("k", vec![i]));
        }
        assert_eq!(s.version_count(), 10);
        let now = s.now();
        let removed = s.gc_versions(now);
        assert_eq!(removed, 9);
        assert_eq!(s.read_at("k", now), Some(vec![9]));
    }

    #[test]
    fn gc_drops_dead_tombstoned_keys() {
        let s = store();
        commit_with(&s, |t| t.put("k", b"v".to_vec()));
        commit_with(&s, |t| t.delete("k"));
        s.gc_versions(s.now());
        assert_eq!(s.version_count(), 0);
        assert_eq!(s.read_at("k", s.now()), None);
    }

    #[test]
    fn gc_preserves_versions_above_watermark() {
        let s = store();
        commit_with(&s, |t| t.put("k", b"old".to_vec()));
        let old_ts = s.now();
        commit_with(&s, |t| t.put("k", b"new".to_vec()));
        s.gc_versions(old_ts);
        // The old version is the newest at-or-below the watermark: kept.
        assert_eq!(s.read_at("k", old_ts), Some(b"old".to_vec()));
        assert_eq!(s.read_at("k", s.now()), Some(b"new".to_vec()));
    }

    #[test]
    fn commit_timestamps_strictly_increase() {
        let s = store();
        let mut last = Timestamp(0);
        for i in 0..20 {
            let ts = commit_with(&s, |t| t.put("k", vec![i]));
            assert!(ts > last);
            last = ts;
        }
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use vortex_common::truetime::SimClock;

    fn tt() -> TrueTime {
        TrueTime::simulated(SimClock::new(1_000), 10, 0)
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let s = MetaStore::new(tt());
        for i in 0..20u8 {
            s.with_txn(10, |t| {
                t.put(&format!("k{}", i % 5), vec![i]);
                Ok(())
            })
            .unwrap();
        }
        s.with_txn(10, |t| {
            t.delete("k0");
            Ok(())
        })
        .unwrap();
        let bytes = s.snapshot_bytes();
        let r = MetaStore::restore(tt(), &bytes).unwrap();
        assert_eq!(r.now(), s.now());
        assert_eq!(r.version_count(), s.version_count());
        for i in 0..5 {
            let k = format!("k{i}");
            assert_eq!(r.read_at(&k, r.now()), s.read_at(&k, s.now()), "{k}");
        }
        // Historical versions survive too.
        let early = Timestamp(s.now().micros() - 5);
        assert_eq!(r.read_at("k1", early), s.read_at("k1", early));
        // New commits continue with strictly larger timestamps.
        let ts = {
            let mut t = r.begin();
            t.put("new", b"x".to_vec());
            t.commit().unwrap()
        };
        assert!(ts > s.now());
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let s = MetaStore::new(tt());
        s.with_txn(10, |t| {
            t.put("k", b"v".to_vec());
            Ok(())
        })
        .unwrap();
        let mut bytes = s.snapshot_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(MetaStore::restore(tt(), &bytes).is_err());
        assert!(MetaStore::restore(tt(), b"garbage").is_err());
        for cut in 0..s.snapshot_bytes().len().min(64) {
            let _ = MetaStore::restore(tt(), &s.snapshot_bytes()[..cut]);
        }
    }
}
