//! The Shuffle substrate: deterministic partitioning of input rows into
//! bundles, and the durable queue carrying flush instructions from the
//! Append stage to the Flush stage (§7.4, and the in-memory shuffle the
//! paper cites as \[4\]).

use std::collections::VecDeque;

use parking_lot::Mutex;

use vortex_common::ids::StreamId;
use vortex_common::row::Row;

/// A batch of rows delivered to one Append-stage worker.
#[derive(Debug, Clone)]
pub struct Bundle {
    /// The key-space partition this bundle belongs to.
    pub partition: usize,
    /// Sequence number within the partition (the dedup identity).
    pub seq: u64,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Bundle {
    /// The bundle's dedup identity.
    pub fn id(&self) -> (usize, u64) {
        (self.partition, self.seq)
    }
}

/// A flush instruction emitted by the Append stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushMsg {
    /// Stream to flush.
    pub stream: StreamId,
    /// Flush up to this stream-level row offset (exclusive).
    pub row_offset: u64,
}

/// Deterministically partitions rows into per-partition bundles ("rows in
/// this stream are deterministically partitioned", §7.4). The partition of
/// a row is a stable hash of its first column.
pub fn partition_rows(rows: Vec<Row>, partitions: usize, bundle_size: usize) -> Vec<Bundle> {
    assert!(partitions > 0 && bundle_size > 0);
    let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); partitions];
    for row in rows {
        let key = row
            .values
            .first()
            .map(|v| v.encode_key())
            .unwrap_or_default();
        let mut h = 0xcbf29ce484222325u64;
        for b in &key {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        buckets[(h % partitions as u64) as usize].push(row);
    }
    let mut bundles = Vec::new();
    for (p, rows) in buckets.into_iter().enumerate() {
        for (seq, chunk) in rows.chunks(bundle_size).enumerate() {
            bundles.push(Bundle {
                partition: p,
                seq: seq as u64,
                rows: chunk.to_vec(),
            });
        }
    }
    bundles
}

/// The durable queue between the Append and Flush stages.
#[derive(Debug, Default)]
pub struct Shuffle {
    flush_queue: Mutex<VecDeque<FlushMsg>>,
}

impl Shuffle {
    /// An empty shuffle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a flush instruction (called from inside the state
    /// transaction so it is atomic with the processed-marking).
    pub fn push_flush(&self, msg: FlushMsg) {
        self.flush_queue.lock().push_back(msg);
    }

    /// Dequeues the next flush instruction.
    pub fn pop_flush(&self) -> Option<FlushMsg> {
        self.flush_queue.lock().pop_front()
    }

    /// Number of queued flush instructions.
    pub fn pending(&self) -> usize {
        self.flush_queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_common::row::Value;

    fn row(k: i64) -> Row {
        Row::insert(vec![Value::Int64(k)])
    }

    #[test]
    fn partitioning_is_deterministic_and_total() {
        let rows: Vec<Row> = (0..100).map(row).collect();
        let a = partition_rows(rows.clone(), 4, 10);
        let b = partition_rows(rows.clone(), 4, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id(), y.id());
            assert_eq!(x.rows, y.rows);
        }
        let total: usize = a.iter().map(|bd| bd.rows.len()).sum();
        assert_eq!(total, 100);
        // Same key → same partition.
        let c = partition_rows(vec![row(42), row(42)], 4, 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].rows.len(), 2);
    }

    #[test]
    fn bundle_seqs_are_per_partition_and_ordered() {
        let rows: Vec<Row> = (0..100).map(row).collect();
        let bundles = partition_rows(rows, 3, 7);
        for p in 0..3 {
            let seqs: Vec<u64> = bundles
                .iter()
                .filter(|b| b.partition == p)
                .map(|b| b.seq)
                .collect();
            let expect: Vec<u64> = (0..seqs.len() as u64).collect();
            assert_eq!(seqs, expect);
        }
    }

    #[test]
    fn shuffle_queue_fifo() {
        let s = Shuffle::new();
        assert_eq!(s.pop_flush(), None);
        for i in 0..3 {
            s.push_flush(FlushMsg {
                stream: StreamId::from_raw(i),
                row_offset: i * 10,
            });
        }
        assert_eq!(s.pending(), 3);
        assert_eq!(s.pop_flush().unwrap().stream.raw(), 0);
        assert_eq!(s.pop_flush().unwrap().stream.raw(), 1);
        assert_eq!(s.pop_flush().unwrap().stream.raw(), 2);
        assert_eq!(s.pop_flush(), None);
    }
}
