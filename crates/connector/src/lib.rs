//! The exactly-once processing connector (§7.4): a Beam/Dataflow-style
//! two-stage sink writing to Vortex BUFFERED streams.
//!
//! "To achieve exactly-once, the sink operates in two stages. The first
//! stage, called the Append stage, receives a partitioned stream of rows
//! ... Each worker in the Append stage creates its own dedicated BUFFERED
//! stream on the table. ... It reads the next batch of rows (called a
//! bundle) from Shuffle and writes to its dedicated Stream at the row
//! offset. ... A subsequent FlushStream call that includes all the rows
//! up to the end row offset will mark them committed. The Beam sink will
//! perform this FlushStream call in a separate stage, called the Flush
//! stage."
//!
//! After each successful `AppendStream` the worker atomically (a) marks
//! the bundle processed, (b) writes the (stream, row offset) for the
//! flush stage to shuffle, and (c) updates its stream state — the
//! [`state::PipelineState`] transaction. "Rarely, zombie workers may
//! process input rows that were already previously marked as processed
//! ... the results ... may be appended multiple times to the same Vortex
//! Stream (at different offsets), but only one worker will succeed in
//! marking that row as processed. This will prevent the stream identifier
//! and row offset for FlushStream call from being written to Shuffle" —
//! so a zombie's appends sit durable-but-unflushed in its own BUFFERED
//! stream, invisible forever.

#![warn(missing_docs)]

pub mod pipeline;
pub mod shuffle;
pub mod state;

#[cfg(test)]
mod tests;

pub use pipeline::{BeamSink, SinkConfig, SinkReport};
pub use shuffle::{Bundle, Shuffle};
pub use state::PipelineState;
