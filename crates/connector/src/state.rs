//! The Dataflow state store: the atomic commit that makes the sink
//! exactly-once.
//!
//! §7.4: after each successful `AppendStream` the worker (1) marks the
//! bundle processed, (2) writes the flush instruction to shuffle, and
//! (3) updates the stream state — and "Dataflow guarantees that these
//! three modifications are committed atomically". [`PipelineState::
//! commit_bundle`] is that atomic commit; a zombie that lost the race
//! gets `false` back and none of its effects happen.

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;

use vortex_common::ids::StreamId;

use crate::shuffle::{FlushMsg, Shuffle};

/// Per-worker durable state: the dedicated stream and its next offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerState {
    /// The worker's dedicated BUFFERED stream.
    pub stream: StreamId,
    /// Next stream-level row offset to append at.
    pub next_offset: u64,
}

#[derive(Debug, Default)]
struct Inner {
    processed: HashSet<(usize, u64)>,
    workers: HashMap<u64, WorkerState>,
}

/// The atomically-updated pipeline state.
#[derive(Debug, Default)]
pub struct PipelineState {
    inner: Mutex<Inner>,
}

impl PipelineState {
    /// An empty state store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a worker's dedicated stream.
    pub fn register_worker(&self, worker: u64, stream: StreamId) {
        self.inner.lock().workers.insert(
            worker,
            WorkerState {
                stream,
                next_offset: 0,
            },
        );
    }

    /// The worker's current state.
    pub fn worker(&self, worker: u64) -> Option<WorkerState> {
        self.inner.lock().workers.get(&worker).copied()
    }

    /// Whether a bundle is already marked processed.
    pub fn is_processed(&self, bundle: (usize, u64)) -> bool {
        self.inner.lock().processed.contains(&bundle)
    }

    /// The atomic §7.4 commit: marks the bundle processed, pushes the
    /// flush instruction, and advances the worker's offset — all or
    /// nothing. Returns `false` (no effects) if another worker already
    /// processed the bundle.
    pub fn commit_bundle(
        &self,
        shuffle: &Shuffle,
        worker: u64,
        bundle: (usize, u64),
        rows: u64,
    ) -> bool {
        let mut inner = self.inner.lock();
        if inner.processed.contains(&bundle) {
            return false; // zombie lost the race; nothing committed
        }
        let Some(ws) = inner.workers.get_mut(&worker) else {
            return false;
        };
        ws.next_offset += rows;
        let msg = FlushMsg {
            stream: ws.stream,
            row_offset: ws.next_offset,
        };
        inner.processed.insert(bundle);
        shuffle.push_flush(msg);
        true
    }

    /// Number of processed bundles.
    pub fn processed_count(&self) -> usize {
        self.inner.lock().processed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_is_exactly_once() {
        let st = PipelineState::new();
        let sh = Shuffle::new();
        st.register_worker(1, StreamId::from_raw(10));
        st.register_worker(2, StreamId::from_raw(20));
        assert!(st.commit_bundle(&sh, 1, (0, 0), 5));
        // A zombie (worker 2) committing the same bundle: rejected, no
        // flush message, no offset advance.
        assert!(!st.commit_bundle(&sh, 2, (0, 0), 5));
        assert_eq!(sh.pending(), 1);
        assert_eq!(st.worker(2).unwrap().next_offset, 0);
        assert_eq!(st.worker(1).unwrap().next_offset, 5);
        assert!(st.is_processed((0, 0)));
    }

    #[test]
    fn offsets_accumulate_per_worker() {
        let st = PipelineState::new();
        let sh = Shuffle::new();
        st.register_worker(1, StreamId::from_raw(10));
        assert!(st.commit_bundle(&sh, 1, (0, 0), 5));
        assert!(st.commit_bundle(&sh, 1, (0, 1), 7));
        assert_eq!(st.worker(1).unwrap().next_offset, 12);
        let m1 = sh.pop_flush().unwrap();
        let m2 = sh.pop_flush().unwrap();
        assert_eq!(m1.row_offset, 5);
        assert_eq!(m2.row_offset, 12);
        assert_eq!(st.processed_count(), 2);
    }

    #[test]
    fn unregistered_worker_cannot_commit() {
        let st = PipelineState::new();
        let sh = Shuffle::new();
        assert!(!st.commit_bundle(&sh, 9, (0, 0), 1));
        assert_eq!(sh.pending(), 0);
    }

    #[test]
    fn concurrent_zombie_races_one_winner() {
        use std::sync::Arc;
        let st = Arc::new(PipelineState::new());
        let sh = Arc::new(Shuffle::new());
        for w in 0..8 {
            st.register_worker(w, StreamId::from_raw(w));
        }
        let mut handles = vec![];
        for w in 0..8u64 {
            let st = Arc::clone(&st);
            let sh = Arc::clone(&sh);
            handles.push(std::thread::spawn(move || {
                let mut wins = 0;
                for seq in 0..100u64 {
                    if st.commit_bundle(&sh, w, (0, seq), 1) {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "each bundle committed exactly once");
        assert_eq!(sh.pending(), 100);
    }
}
