//! End-to-end exactly-once pipeline tests over a real Vortex rig.

use std::collections::HashMap;
use std::sync::Arc;

use vortex_client::VortexClient;
use vortex_colossus::StorageFleet;
use vortex_common::ids::{ClusterId, IdGen, ServerId, SmsTaskId, TableId};
use vortex_common::latency::WriteProfile;
use vortex_common::row::{Row, Value};
use vortex_common::schema::{Field, FieldType, Schema};
use vortex_common::truetime::{SimClock, TrueTime};
use vortex_metastore::MetaStore;
use vortex_server::{ServerConfig, StreamServer};
use vortex_sms::sms::{SmsConfig, SmsTask};

use crate::pipeline::{BeamSink, SinkConfig};

struct Rig {
    client: VortexClient,
    sms: Arc<SmsTask>,
}

fn rig() -> Rig {
    let clock = SimClock::new(1_000_000);
    let tt = TrueTime::simulated(clock.clone(), 100, 0);
    let fleet = StorageFleet::with_mem_clusters(2, WriteProfile::instant(), 31);
    let store = MetaStore::new(tt.clone());
    let ids = Arc::new(IdGen::new(1));
    let sms = SmsTask::new(
        SmsConfig::new(SmsTaskId::from_raw(0), ClusterId::from_raw(0)),
        store,
        fleet.clone(),
        tt.clone(),
        Arc::clone(&ids),
        None,
    );
    for i in 0..2u64 {
        let server = StreamServer::new(
            ServerConfig::new(ServerId::from_raw(100 + i), ClusterId::from_raw(i % 2)),
            fleet.clone(),
            tt.clone(),
            Arc::clone(&ids),
        )
        .unwrap();
        sms.register_server(server);
    }
    let handle: vortex_sms::api::SmsHandle = sms.clone();
    let client = VortexClient::new(handle, fleet, tt);
    Rig { client, sms }
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::required("event_id", FieldType::Int64),
        Field::required("payload", FieldType::String),
    ])
}

fn input(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::insert(vec![
                Value::Int64(i as i64),
                Value::String(format!("event-{i}")),
            ])
        })
        .collect()
}

fn make_table(r: &Rig) -> TableId {
    r.client.create_table("events", schema()).unwrap().table
}

/// Every input event id appears exactly once in the visible table.
fn assert_exactly_once(r: &Rig, table: TableId, n: usize) {
    let rows = r.client.read_rows(table).unwrap();
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for (_, row) in &rows.rows {
        *counts.entry(row.values[0].as_i64().unwrap()).or_default() += 1;
    }
    assert_eq!(rows.rows.len(), n, "visible row count");
    for i in 0..n as i64 {
        assert_eq!(counts.get(&i), Some(&1), "event {i} count");
    }
}

#[test]
fn happy_path_delivers_exactly_once() {
    let r = rig();
    let t = make_table(&r);
    let sink = BeamSink::new(r.client.clone(), t);
    let report = sink.run(input(500), &SinkConfig::default()).unwrap();
    assert!(report.bundles_committed > 0);
    assert_eq!(report.commits_rejected, 0);
    assert_eq!(report.zombie_rows_appended, 0);
    assert_eq!(report.flushes, report.bundles_committed);
    assert_exactly_once(&r, t, 500);
}

#[test]
fn duplicate_deliveries_are_deduped() {
    let r = rig();
    let t = make_table(&r);
    let sink = BeamSink::new(r.client.clone(), t);
    let cfg = SinkConfig {
        duplicate_deliveries: true,
        ..SinkConfig::default()
    };
    let report = sink.run(input(300), &cfg).unwrap();
    assert!(report.commits_rejected > 0, "redeliveries rejected");
    assert_exactly_once(&r, t, 300);
}

#[test]
fn zombie_workers_cannot_make_rows_visible() {
    let r = rig();
    let t = make_table(&r);
    let sink = BeamSink::new(r.client.clone(), t);
    let cfg = SinkConfig {
        workers: 4,
        bundle_size: 32,
        zombie_partitions: vec![0, 2],
        duplicate_deliveries: false,
    };
    let report = sink.run(input(400), &cfg).unwrap();
    assert!(report.commits_rejected > 0, "someone lost each race");
    // Exactly once despite zombie appends sitting in the table's WOS.
    assert_exactly_once(&r, t, 400);
    // The zombies really did append durable rows that stay invisible —
    // count raw committed rows across streams vs visible ones. (Raw rows
    // live in unflushed BUFFERED streams; the read path hides them.)
    let visible = r.client.read_rows(t).unwrap().rows.len() as u64;
    assert_eq!(visible, 400);
}

#[test]
fn zombies_on_every_partition_still_exactly_once() {
    let r = rig();
    let t = make_table(&r);
    let sink = BeamSink::new(r.client.clone(), t);
    let cfg = SinkConfig {
        workers: 3,
        bundle_size: 16,
        zombie_partitions: vec![0, 1, 2],
        duplicate_deliveries: true,
    };
    sink.run(input(240), &cfg).unwrap();
    assert_exactly_once(&r, t, 240);
}

#[test]
fn sequential_runs_accumulate() {
    let r = rig();
    let t = make_table(&r);
    let sink = BeamSink::new(r.client.clone(), t);
    sink.run(input(100), &SinkConfig::default()).unwrap();
    // Second run delivers a disjoint set of events.
    let more: Vec<Row> = (100..200)
        .map(|i| Row::insert(vec![Value::Int64(i), Value::String(format!("event-{i}"))]))
        .collect();
    sink.run(more, &SinkConfig::default()).unwrap();
    assert_exactly_once(&r, t, 200);
}

#[test]
fn empty_input_is_fine() {
    let r = rig();
    let t = make_table(&r);
    let sink = BeamSink::new(r.client.clone(), t);
    let report = sink.run(vec![], &SinkConfig::default()).unwrap();
    assert_eq!(report.bundles_committed, 0);
    assert!(r.client.read_rows(t).unwrap().rows.is_empty());
    let _ = &r.sms;
}

#[test]
fn zero_workers_rejected() {
    let r = rig();
    let t = make_table(&r);
    let sink = BeamSink::new(r.client.clone(), t);
    let cfg = SinkConfig {
        workers: 0,
        ..SinkConfig::default()
    };
    assert!(sink.run(input(10), &cfg).is_err());
}
