//! The two-stage Beam sink: Append stage + Flush stage (§7.4).

use std::sync::Arc;

use vortex_client::{VortexClient, WriterOptions};
use vortex_common::error::{VortexError, VortexResult};
use vortex_common::ids::TableId;
use vortex_common::row::{Row, RowSet};
use vortex_common::rpc::{class_scope, WorkClass};
use vortex_sms::meta::StreamType;

use crate::shuffle::{partition_rows, Bundle, Shuffle};
use crate::state::PipelineState;

/// Sink configuration.
#[derive(Debug, Clone)]
pub struct SinkConfig {
    /// Number of Append-stage workers (= key-space partitions).
    pub workers: usize,
    /// Rows per bundle.
    pub bundle_size: usize,
    /// Partitions that additionally get a zombie worker replaying the
    /// same bundles ("a worker may enter a zombie state due to network
    /// partitions etc.", §7.4).
    pub zombie_partitions: Vec<usize>,
    /// Deliver every bundle twice to the legitimate worker too
    /// (retry-storm simulation).
    pub duplicate_deliveries: bool,
}

impl Default for SinkConfig {
    fn default() -> Self {
        SinkConfig {
            workers: 4,
            bundle_size: 64,
            zombie_partitions: vec![],
            duplicate_deliveries: false,
        }
    }
}

/// What happened during a sink run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkReport {
    /// Bundles committed exactly once.
    pub bundles_committed: u64,
    /// Duplicate/zombie commits rejected by the state store.
    pub commits_rejected: u64,
    /// Rows appended by zombies (durable but never flushed → invisible).
    pub zombie_rows_appended: u64,
    /// FlushStream calls performed by the Flush stage.
    pub flushes: u64,
}

/// The exactly-once Vortex sink (`BigQueryIO.writeTableRows()` in the
/// paper's Listing 7).
pub struct BeamSink {
    client: VortexClient,
    table: TableId,
}

impl BeamSink {
    /// A sink writing to `table`.
    pub fn new(client: VortexClient, table: TableId) -> Self {
        Self { client, table }
    }

    /// Runs the pipeline over `input` and returns the report. Exactly-once
    /// end to end: every input row becomes visible exactly once no matter
    /// how many duplicate deliveries or zombie workers the run injects.
    pub fn run(&self, input: Vec<Row>, cfg: &SinkConfig) -> VortexResult<SinkReport> {
        // Connector ingest is throughput-oriented batch work: it queues
        // behind interactive traffic and sheds before it under overload.
        // (Workers tag their own threads in `run_worker` — CallCtx is
        // thread-local and does not cross `thread::scope`.)
        let _batch = class_scope(WorkClass::Batch);
        if cfg.workers == 0 {
            return Err(VortexError::InvalidArgument(
                "need at least 1 worker".into(),
            ));
        }
        let bundles = partition_rows(input, cfg.workers, cfg.bundle_size);
        let state = Arc::new(PipelineState::new());
        let shuffle = Arc::new(Shuffle::new());

        // ---- Append stage ----
        // Worker w handles partition w; zombies get ids >= workers and
        // replay their partition's bundles against their OWN stream.
        let mut report = SinkReport::default();
        std::thread::scope(|s| -> VortexResult<()> {
            let mut handles = Vec::new();
            for w in 0..cfg.workers {
                let my_bundles: Vec<Bundle> = bundles
                    .iter()
                    .filter(|b| b.partition == w)
                    .cloned()
                    .collect();
                let state = Arc::clone(&state);
                let shuffle = Arc::clone(&shuffle);
                let client = &self.client;
                let table = self.table;
                let dup = cfg.duplicate_deliveries;
                handles.push(s.spawn(move || {
                    run_worker(client, table, w as u64, my_bundles, dup, &state, &shuffle)
                }));
            }
            for (zi, &zp) in cfg.zombie_partitions.iter().enumerate() {
                let my_bundles: Vec<Bundle> = bundles
                    .iter()
                    .filter(|b| b.partition == zp)
                    .cloned()
                    .collect();
                let state = Arc::clone(&state);
                let shuffle = Arc::clone(&shuffle);
                let client = &self.client;
                let table = self.table;
                let zombie_id = (cfg.workers + zi) as u64;
                handles.push(s.spawn(move || {
                    run_worker(
                        client, table, zombie_id, my_bundles, false, &state, &shuffle,
                    )
                }));
            }
            for h in handles {
                let wr = h.join().expect("worker panicked")?;
                report.bundles_committed += wr.committed;
                report.commits_rejected += wr.rejected;
                report.zombie_rows_appended += wr.orphan_rows;
            }
            Ok(())
        })?;

        // ---- Flush stage ----
        while let Some(msg) = shuffle.pop_flush() {
            self.client
                .sms()
                .flush_stream(self.table, msg.stream, msg.row_offset)?;
            report.flushes += 1;
        }
        let m = vortex_common::obs::global();
        m.counter("connector.runs").inc();
        m.counter("connector.bundles_committed")
            .add(report.bundles_committed);
        m.counter("connector.commits_rejected")
            .add(report.commits_rejected);
        m.counter("connector.flushes").add(report.flushes);
        Ok(report)
    }
}

struct WorkerReport {
    committed: u64,
    rejected: u64,
    /// Rows this worker appended for bundles it LOST (never flushed).
    orphan_rows: u64,
}

fn run_worker(
    client: &VortexClient,
    table: TableId,
    worker_id: u64,
    bundles: Vec<Bundle>,
    duplicate_deliveries: bool,
    state: &PipelineState,
    shuffle: &Shuffle,
) -> VortexResult<WorkerReport> {
    let _batch = class_scope(WorkClass::Batch);
    // "Each worker in the Append stage creates its own dedicated BUFFERED
    // stream on the table" (§7.4).
    let mut writer = client.create_writer(
        table,
        WriterOptions {
            stream_type: StreamType::Buffered,
            exactly_once: true,
            pipelined: false,
            ack_delay_us: 0,
        },
    )?;
    state.register_worker(worker_id, writer.stream_id());
    let mut report = WorkerReport {
        committed: 0,
        rejected: 0,
        orphan_rows: 0,
    };
    let deliveries: Vec<&Bundle> = if duplicate_deliveries {
        bundles.iter().chain(bundles.iter()).collect()
    } else {
        bundles.iter().collect()
    };
    for bundle in deliveries {
        // Cheap path for redeliveries: skip bundles already processed.
        // Zombies may still race past this check — the atomic commit is
        // the real guard.
        if state.is_processed(bundle.id()) {
            report.rejected += 1;
            continue;
        }
        let n = bundle.rows.len() as u64;
        // Append to the dedicated stream at the tracked offset. Durable
        // but invisible (BUFFERED) until the Flush stage runs.
        writer.append(RowSet::new(bundle.rows.clone()))?;
        // A crash here leaves the appended rows durable but the bundle
        // uncommitted: the rows sit in the worker's dedicated BUFFERED
        // stream above every offset ever sent to shuffle, so the Flush
        // stage can never expose them. A redelivery re-appends and
        // commits fresh rows — exactly-once is preserved (§7.4).
        vortex_common::crash_point!("connector.state.pre_commit");
        // The atomic triple-commit (§7.4).
        if state.commit_bundle(shuffle, worker_id, bundle.id(), n) {
            report.committed += 1;
        } else {
            // Lost the race: another worker owns this bundle, which means
            // THIS worker is the zombie. It must stop immediately — its
            // just-appended rows are a suffix of its stream above every
            // offset it ever wrote to shuffle, so they can never be
            // flushed. (Continuing would let a later win flush this
            // orphan prefix: the classic zombie double-write.)
            report.rejected += 1;
            report.orphan_rows += n;
            break;
        }
    }
    Ok(report)
}
