//! Operational observability: a live dashboard over a region under
//! load. Vortex's production deployment exports exactly this kind of
//! telemetry — streamlet lifecycle states, WOS/ROS fragment inventory,
//! clustering health, and background-loop counters (§5.4, §6.2) — so an
//! operator can watch the LSM churn as the storage optimizer keeps up
//! with ingestion.
//!
//! ```sh
//! cargo run --example monitoring
//! ```
#![allow(clippy::print_stdout)] // prints results/tables by design

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vortex::row::{Row, RowSet, Value};
use vortex::schema::{Field, FieldType, PartitionTransform, Schema};
use vortex::{
    DaemonConfig, FragmentKind, FragmentState, Region, RegionConfig, RegionDaemon, ScanOptions,
    StreamletState,
};
use vortex_common::crashpoints;

fn main() -> vortex::VortexResult<()> {
    let region = Arc::new(Region::create(RegionConfig {
        fragment_max_bytes: 32 * 1024,
        ..RegionConfig::default()
    })?);
    let client = region.client();
    let schema = Schema::new(vec![
        Field::required("shard", FieldType::Int64),
        Field::required("event_id", FieldType::Int64),
        Field::required("body", FieldType::String),
    ])
    .with_partition("shard", PartitionTransform::Identity)
    .with_clustering(&["event_id"]);
    let table = client.create_table("events", schema)?.table;

    // Background maintenance, as production runs it.
    let daemon = RegionDaemon::start(
        Arc::clone(&region),
        DaemonConfig {
            heartbeat_every: Duration::from_millis(20),
            tick_every: Duration::from_millis(40),
            optimize_every: Duration::from_millis(60),
            gc_every: Duration::from_millis(120),
            checkpoint_every: Duration::from_millis(150),
            full_state_every: 8,
        },
    );
    daemon.watch_table(table);

    // Live traffic: two writers ingesting steadily.
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..2i64 {
        let client = region.client();
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut writer = client.create_unbuffered_writer(table).unwrap();
            let mut next = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let rs = RowSet::new(
                    (0..64)
                        .map(|i| {
                            let id = next + i;
                            Row::insert(vec![
                                Value::Int64(id % 4),
                                Value::Int64(w * 10_000_000 + id),
                                Value::String(format!("event-{w}-{id}")),
                            ])
                        })
                        .collect(),
                );
                writer.append(rs).unwrap();
                next += 64;
                // lint:allow(L003, the example paces a demo writer against real time on purpose)
                std::thread::sleep(Duration::from_millis(2));
            }
            next
        }));
    }

    // The dashboard: poll and render a snapshot every 300ms.
    let engine = region.engine();
    for round in 1..=6u32 {
        // lint:allow(L003, a dashboard polls on wall-clock cadence by definition)
        std::thread::sleep(Duration::from_millis(300));
        let now = client.snapshot();
        let frags = region.sms().list_fragments(table, now);
        let (mut wos_n, mut wos_rows, mut wos_bytes) = (0u64, 0u64, 0u64);
        let (mut ros_n, mut ros_rows, mut ros_bytes) = (0u64, 0u64, 0u64);
        let mut active = 0u64;
        for f in &frags {
            if f.state == FragmentState::Active {
                active += 1;
            }
            match f.kind {
                FragmentKind::Wos => {
                    wos_n += 1;
                    wos_rows += f.row_count;
                    wos_bytes += f.committed_size;
                }
                FragmentKind::Ros => {
                    ros_n += 1;
                    ros_rows += f.row_count;
                    ros_bytes += f.committed_size;
                }
            }
        }
        let streamlets = region.sms().list_streamlets(table);
        let writable = streamlets
            .iter()
            .filter(|s| s.state == StreamletState::Writable)
            .count();
        let finalized = streamlets
            .iter()
            .filter(|s| s.state == StreamletState::Finalized)
            .count();
        let visible = engine.count(table, now, &ScanOptions::default())?;
        let ratio = region.optimizer().clustering_ratio(table)?;
        let st = daemon.stats();

        println!("── snapshot {round} ─────────────────────────────────────");
        println!("  visible rows        {visible}");
        println!(
            "  WOS fragments       {wos_n:>4}  ({wos_rows} rows, {:.1} KiB, {active} active)",
            wos_bytes as f64 / 1024.0
        );
        println!(
            "  ROS blocks          {ros_n:>4}  ({ros_rows} rows, {:.1} KiB)",
            ros_bytes as f64 / 1024.0
        );
        println!(
            "  streamlets          {:>4}  ({writable} writable, {finalized} finalized)",
            streamlets.len()
        );
        println!("  clustering ratio    {ratio:.2}:1");
        println!(
            "  daemon              {} heartbeats, {} deltas, {} idle commits, {} optimizer cycles, {} gc sweeps",
            st.heartbeats.load(Ordering::Relaxed),
            st.deltas.load(Ordering::Relaxed),
            st.idle_commits.load(Ordering::Relaxed),
            st.optimizer_cycles.load(Ordering::Relaxed),
            st.gc_sweeps.load(Ordering::Relaxed),
        );
    }

    stop.store(true, Ordering::Relaxed);
    let written: i64 = writers.into_iter().map(|t| t.join().unwrap()).sum();
    daemon.shutdown();

    // Final consistency check: everything acked is visible.
    region.run_heartbeats(true)?;
    let visible = engine.count(table, client.snapshot(), &ScanOptions::default())?;
    println!("──────────────────────────────────────────────────────");
    println!("writers acked {written} rows; query engine sees {visible}");
    assert_eq!(visible as i64, written);
    println!("ledger clean: every acknowledged row is visible exactly once");

    // Induce one crash-point fire on a host-process checkpoint so the
    // unified snapshot below shows the framework's counter moving. The
    // aborted checkpoint leaves durable state untouched.
    {
        let _cp = crashpoints::arm_nth("server.checkpoint.mid", 1);
        match region.servers()[0].checkpoint() {
            Err(vortex::VortexError::SimulatedCrash(_)) => {}
            other => panic!("armed checkpoint crash point did not fire: {other:?}"),
        }
    }

    // The unified observability snapshot (/varz): registry counters and
    // histograms, per-method RPC percentiles, cache hit rates, crash
    // point fires, and the §8 commit-to-visible freshness histogram fed
    // by the dashboard's own scans.
    let snap = region.metrics_snapshot();
    println!();
    println!("{}", snap.to_table());
    let fresh = region.freshness().histogram();
    assert!(
        fresh.count > 0,
        "freshness probe observed no rows despite live scans"
    );
    let rendered = snap.to_table();
    for needle in [
        "freshness.commit_to_visible_us",
        "scan.cache.",
        "append.client.calls",
        "rpc",
        "crash_point_fires",
    ] {
        assert!(rendered.contains(needle), "snapshot missing {needle}");
    }
    assert!(snap.crash_point_fires >= 1, "crash point fire not counted");
    println!(
        "freshness: {} rows observed, p50 {}us p99 {}us",
        region.freshness().rows_observed(),
        fresh.p50,
        fresh.p99
    );
    Ok(())
}
