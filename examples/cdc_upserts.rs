//! Change-data-capture ingestion with `_CHANGE_TYPE` (§4.2.6) plus SQL
//! DML (§7.3): UPSERT/DELETE rows against an unenforced primary key,
//! resolved at read time; then an UPDATE statement via deletion masks and
//! reinserted rows.
//!
//! ```sh
//! cargo run --example cdc_upserts
//! ```
#![allow(clippy::print_stdout)] // prints results/tables by design

use vortex::row::{Row, RowSet, Value};
use vortex::schema::{ChangeType, Field, FieldType, Schema};
use vortex::{Expr, Region, RegionConfig, ScanOptions};

fn main() -> vortex::VortexResult<()> {
    let region = Region::create(RegionConfig::default())?;
    let client = region.client();
    // An orders table with an (unenforced) primary key.
    let schema = Schema::new(vec![
        Field::required("order_id", FieldType::String),
        Field::required("status", FieldType::String),
        Field::required("total_cents", FieldType::Int64),
    ])
    .with_primary_key(&["order_id"]);
    let table = client.create_table("orders", schema)?.table;

    let mut writer = client.create_unbuffered_writer(table)?;
    let change = |id: &str, status: &str, total: i64, ct: ChangeType| {
        Row::with_change(
            vec![
                Value::String(id.into()),
                Value::String(status.into()),
                Value::Int64(total),
            ],
            ct,
        )
    };

    // Day 1: orders created.
    writer.append(RowSet::new(vec![
        change("o-1", "created", 1500, ChangeType::Upsert),
        change("o-2", "created", 2300, ChangeType::Upsert),
        change("o-3", "created", 800, ChangeType::Upsert),
    ]))?;
    // Day 2: o-1 ships, o-2 is cancelled, o-4 appears.
    writer.append(RowSet::new(vec![
        change("o-1", "shipped", 1500, ChangeType::Upsert),
        change("o-2", "", 0, ChangeType::Delete),
        change("o-4", "created", 9900, ChangeType::Upsert),
    ]))?;

    // Merge-on-read resolution: the latest change per key wins.
    let engine = region.engine();
    let resolved = engine.scan(
        table,
        client.snapshot(),
        &ScanOptions {
            resolve_changes: true,
            ..ScanOptions::default()
        },
    )?;
    println!("current state ({} orders):", resolved.rows.len());
    for (_, row) in &resolved.rows {
        println!(
            "  {} {} {}c",
            row.values[0].as_str().unwrap(),
            row.values[1].as_str().unwrap(),
            row.values[2].as_i64().unwrap()
        );
    }
    assert_eq!(resolved.rows.len(), 3); // o-1, o-3, o-4

    // The raw change log is still there (6 change records).
    let raw = engine.scan(table, client.snapshot(), &ScanOptions::default())?;
    println!("raw change log: {} records", raw.rows.len());
    assert_eq!(raw.rows.len(), 6);

    // SQL DML on top of the change log: a GDPR-style hard erasure. A CDC
    // DELETE change record is a *tombstone* — the history remains in the
    // log. `DELETE WHERE order_id = 'o-3'` physically masks every change
    // record for that key (§7.3), so not even the history survives.
    let dml = region.dml();
    let report = dml.delete_where(table, &Expr::eq("order_id", Value::String("o-3".into())))?;
    println!(
        "hard-erased {} change records for o-3 ({} fragments masked, {} tails masked)",
        report.rows_matched, report.fragments_masked, report.tails_masked
    );
    let raw = engine.scan(table, client.snapshot(), &ScanOptions::default())?;
    assert!(
        raw.rows
            .iter()
            .all(|(_, r)| r.values[0].as_str() != Some("o-3")),
        "no trace of o-3 remains in the raw log"
    );
    let resolved = engine.scan(
        table,
        client.snapshot(),
        &ScanOptions {
            resolve_changes: true,
            ..ScanOptions::default()
        },
    )?;
    println!("after erasure: {} orders remain", resolved.rows.len());
    assert_eq!(resolved.rows.len(), 2); // o-1, o-4

    // And a plain UPDATE on a physical column: reprice o-4 in place.
    dml.update_where(
        table,
        &Expr::eq("order_id", Value::String("o-4".into())),
        &[("total_cents", Value::Int64(4950))],
    )?;
    let resolved = engine.scan(
        table,
        client.snapshot(),
        &ScanOptions {
            resolve_changes: true,
            ..ScanOptions::default()
        },
    )?;
    let o4 = resolved
        .rows
        .iter()
        .find(|(_, r)| r.values[0].as_str() == Some("o-4"))
        .expect("o-4 still current");
    assert_eq!(o4.1.values[2].as_i64(), Some(4950));
    println!("o-4 repriced to 4950c — done");
    Ok(())
}
