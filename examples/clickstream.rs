//! Clickstream analytics: the paper's motivating workload (§1).
//!
//! Tens of writers stream click events into one table concurrently, each
//! on its own Stream; queries run against sub-second-fresh data while the
//! Storage Optimization Service continuously converts and reclusters in
//! the background.
//!
//! ```sh
//! cargo run --example clickstream
//! ```
#![allow(clippy::print_stdout)] // prints results/tables by design

use std::sync::Arc;

use vortex::row::{Row, RowSet, Value};
use vortex::schema::{Field, FieldType, PartitionTransform, Schema};
use vortex::{AggKind, Expr, Region, RegionConfig, ScanOptions, Timestamp};

const WRITERS: usize = 8;
const BATCHES_PER_WRITER: usize = 20;
const ROWS_PER_BATCH: usize = 50;

fn main() -> vortex::VortexResult<()> {
    let region = Arc::new(Region::create(RegionConfig {
        servers_per_cluster: 3,
        ..RegionConfig::default()
    })?);
    let client = region.client();
    let schema = Schema::new(vec![
        Field::required("ts", FieldType::Timestamp),
        Field::required("page", FieldType::String),
        Field::required("user", FieldType::String),
        Field::nullable("referrer", FieldType::String),
    ])
    .with_partition("ts", PartitionTransform::Date)
    .with_clustering(&["page"]);
    let table = client.create_table("clicks", schema)?.table;

    // Tens of thousands of clients write concurrently in production;
    // here, WRITERS threads each with a dedicated stream (§4.1).
    let day_us: u64 = 86_400_000_000;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let client = region.client();
            s.spawn(move || {
                let mut writer = client.create_unbuffered_writer(table).unwrap();
                for b in 0..BATCHES_PER_WRITER {
                    let batch = RowSet::new(
                        (0..ROWS_PER_BATCH)
                            .map(|i| {
                                let n = w * 10_000 + b * 100 + i;
                                Row::insert(vec![
                                    Value::Timestamp(Timestamp(19_631 * day_us + n as u64)),
                                    Value::String(format!("/page/{}", n % 23)),
                                    Value::String(format!("user-{}", n % 211)),
                                    if n % 3 == 0 {
                                        Value::Null
                                    } else {
                                        Value::String("search".into())
                                    },
                                ])
                            })
                            .collect(),
                    );
                    writer.append(batch).unwrap();
                }
            });
        }
    });
    let expected = WRITERS * BATCHES_PER_WRITER * ROWS_PER_BATCH;

    // Freshness: everything just written is already queryable.
    let engine = region.engine();
    let count = engine.count(table, client.snapshot(), &ScanOptions::default())?;
    println!("ingested {count} events across {WRITERS} concurrent streams");
    assert_eq!(count as usize, expected);

    // Top pages via grouped aggregation, against WOS tails.
    let groups = engine.aggregate(
        table,
        client.snapshot(),
        &ScanOptions {
            predicate: Expr::eq("page", Value::String("/page/7".into())),
            ..ScanOptions::default()
        },
        Some("page"),
        &[(AggKind::Count, None)],
    )?;
    for (page, vals) in &groups {
        println!("  {page:?}: {:?} clicks", vals[0]);
    }

    // Background machinery: heartbeats → finalize → optimize → recluster.
    region.run_heartbeats(false)?;
    for sl in region.sms().list_streamlets(table) {
        let _ = region.sms().reconcile_streamlet(table, sl.streamlet);
    }
    region.run_optimizer_cycle(table)?;
    println!(
        "clustering ratio after optimization: {:.2}",
        region.optimizer().clustering_ratio(table)?
    );

    // The same query now prunes ROS blocks via clustering-column stats.
    let res = engine.scan(
        table,
        client.snapshot(),
        &ScanOptions {
            predicate: Expr::eq("page", Value::String("/page/7".into())),
            ..ScanOptions::default()
        },
    )?;
    println!(
        "post-optimization query: {} matches, {} of {} fragments pruned, {} rows scanned",
        res.stats.rows_matched,
        res.stats.pruned_by_stats + res.stats.pruned_by_bloom,
        res.stats.fragments_total,
        res.stats.rows_scanned,
    );
    assert_eq!(
        engine.count(table, client.snapshot(), &ScanOptions::default())? as usize,
        expected,
        "optimization must not lose or duplicate events"
    );
    println!("done");
    Ok(())
}
