//! An interactive SQL shell over a live Vortex region (§3.2, §9: the
//! "expressive SQL interface" applications use). Seeds a demo table,
//! streams rows into it in the background, and reads statements from
//! stdin. Piped input works too:
//!
//! ```sh
//! echo "SELECT day, COUNT(*) FROM sales GROUP BY day;" | cargo run --example sql_shell
//! ```
#![allow(clippy::print_stdout)] // prints results/tables by design

use std::io::{BufRead, Write};
use std::sync::Arc;

use vortex::row::{Row, RowSet, Value};
use vortex::schema::{Field, FieldType, PartitionTransform, Schema};
use vortex::{Region, RegionConfig, SqlSession};

fn main() -> vortex::VortexResult<()> {
    let region = Arc::new(Region::create(RegionConfig::default())?);
    let client = region.client();
    let schema = Schema::new(vec![
        Field::required("day", FieldType::Int64),
        Field::required("customer", FieldType::String),
        Field::required("amount", FieldType::Int64),
    ])
    .with_partition("day", PartitionTransform::Identity)
    .with_clustering(&["customer"]);
    let t = client.create_table("sales", schema)?.table;

    // Seed data + background optimization.
    let mut w = client.create_unbuffered_writer(t)?;
    w.append(RowSet::new(
        (0..1_000)
            .map(|k: i64| {
                Row::insert(vec![
                    Value::Int64(k / 200),
                    Value::String(format!("cust-{:03}", k % 40)),
                    Value::Int64(k),
                ])
            })
            .collect(),
    ))?;
    region.sms().finalize_stream(t, w.stream_id())?;
    region.run_optimizer_cycle(t)?;

    let sql = SqlSession::new(client);
    println!("vortex sql shell — table `sales` seeded with 1000 rows.");
    println!("examples:");
    println!(
        "  SELECT day, COUNT(*), SUM(amount), AVG(amount) FROM sales GROUP BY day ORDER BY day;"
    );
    println!("  SELECT customer, amount FROM sales WHERE amount > 995 ORDER BY amount DESC;");
    println!("  DELETE FROM sales WHERE amount < 10;");
    println!("type \\q to quit.\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    print!("vortex> ");
    out.flush().ok();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let line = line.trim();
        if line.is_empty() {
            print!("vortex> ");
            out.flush().ok();
            continue;
        }
        if line == "\\q" || line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        match sql.execute(line) {
            Ok(res) => print!("{}", res.to_table()),
            Err(e) => println!("error: {e}"),
        }
        print!("vortex> ");
        out.flush().ok();
    }
    println!("bye");
    Ok(())
}
