//! Quickstart: create a region, define a table, stream rows in, read them
//! back with read-after-write consistency, and run a filtered query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
#![allow(clippy::print_stdout)] // prints results/tables by design

use vortex::row::{Row, RowSet, Value};
use vortex::schema::{Field, FieldType, PartitionTransform, Schema};
use vortex::{Expr, Region, RegionConfig, ScanOptions};

fn main() -> vortex::VortexResult<()> {
    // A region: 2 simulated Colossus clusters, Stream Servers, an SMS
    // control plane, a Spanner-lite metastore — all in-process.
    let region = Region::create(RegionConfig::default())?;
    let client = region.client();

    // The Sales-style table from the paper's Listing 1 (simplified).
    let schema = Schema::new(vec![
        Field::required("orderTimestamp", FieldType::Timestamp),
        Field::required("customerKey", FieldType::String),
        Field::required("totalSale", FieldType::Numeric),
    ])
    .with_partition("orderTimestamp", PartitionTransform::Date)
    .with_clustering(&["customerKey"]);
    let table = client.create_table("sales", schema)?;
    println!("created table {} ({})", table.name, table.table);

    // CreateStream + AppendStream (§4.2): an UNBUFFERED stream commits
    // and publishes rows as soon as the append is acknowledged.
    let mut writer = client.create_unbuffered_writer(table.table)?;
    let day_us: u64 = 86_400_000_000;
    let batch = RowSet::new(
        (0..1_000)
            .map(|i| {
                Row::insert(vec![
                    Value::Timestamp(vortex::Timestamp(19_631 * day_us + i * 1_000)),
                    Value::String(format!("cust-{:03}", i % 97)),
                    Value::Numeric((i as i128) * 1_990_000_000),
                ])
            })
            .collect(),
    );
    let ack = writer.append(batch)?;
    println!(
        "appended {} rows at stream offset {} (virtual latency {}us)",
        ack.row_count, ack.row_offset, ack.latency_us
    );

    // Read-after-write: the rows are visible immediately, served from the
    // write-optimized storage tail without waiting for any background
    // work (§7.1).
    let rows = client.read_rows(table.table)?;
    println!("read back {} rows", rows.rows.len());
    assert_eq!(rows.rows.len(), 1_000);

    // A filtered query through the Dremel-lite engine.
    let engine = region.engine();
    let res = engine.scan(
        table.table,
        client.snapshot(),
        &ScanOptions {
            predicate: Expr::eq("customerKey", Value::String("cust-042".into())),
            ..ScanOptions::default()
        },
    )?;
    println!(
        "query matched {} rows (scanned {}, {} fragments pruned)",
        res.stats.rows_matched,
        res.stats.rows_scanned,
        res.stats.pruned_by_stats + res.stats.pruned_by_bloom
    );

    // Kick the background machinery once: heartbeats, then WOS→ROS.
    region.run_heartbeats(false)?;
    region
        .sms()
        .finalize_stream(table.table, writer.stream_id())?;
    region.run_optimizer_cycle(table.table)?;
    println!(
        "after optimization: clustering ratio {:.2}",
        region.optimizer().clustering_ratio(table.table)?
    );
    let rows = client.read_rows(table.table)?;
    assert_eq!(rows.rows.len(), 1_000, "conversion preserves every row");
    println!("all {} rows still visible from ROS — done", rows.rows.len());
    Ok(())
}
