//! End-to-end exactly-once processing (§7.4): the Beam/Dataflow-style
//! two-stage sink under duplicate deliveries and zombie workers.
//!
//! ```sh
//! cargo run --example exactly_once_pipeline
//! ```
#![allow(clippy::print_stdout)] // prints results/tables by design

use std::collections::HashMap;

use vortex::row::{Row, Value};
use vortex::schema::{Field, FieldType, Schema};
use vortex::{BeamSink, Region, RegionConfig, SinkConfig};

fn main() -> vortex::VortexResult<()> {
    let region = Region::create(RegionConfig::default())?;
    let client = region.client();
    let schema = Schema::new(vec![
        Field::required("event_id", FieldType::Int64),
        Field::required("payload", FieldType::String),
    ]);
    let table = client.create_table("pipeline_out", schema)?.table;

    // 1000 events through a 4-worker pipeline with everything going
    // wrong: every bundle delivered twice AND zombie workers replaying
    // two partitions in parallel.
    let input: Vec<Row> = (0..1_000)
        .map(|i| Row::insert(vec![Value::Int64(i), Value::String(format!("event-{i}"))]))
        .collect();
    let sink = BeamSink::new(client.clone(), table);
    let cfg = SinkConfig {
        workers: 4,
        bundle_size: 32,
        zombie_partitions: vec![0, 3],
        duplicate_deliveries: true,
    };
    let report = sink.run(input, &cfg)?;
    println!(
        "bundles committed: {}, duplicate/zombie commits rejected: {}, \
         zombie rows appended (durable, never visible): {}, flushes: {}",
        report.bundles_committed,
        report.commits_rejected,
        report.zombie_rows_appended,
        report.flushes
    );

    // Verify exactly-once end to end.
    let rows = client.read_rows(table)?;
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for (_, row) in &rows.rows {
        *counts.entry(row.values[0].as_i64().unwrap()).or_default() += 1;
    }
    assert_eq!(rows.rows.len(), 1_000, "every event visible");
    assert!(
        counts.values().all(|&c| c == 1),
        "no event visible more than once"
    );
    println!(
        "verified: {} events visible exactly once despite {} rejected duplicate commits",
        rows.rows.len(),
        report.commits_rejected
    );
    Ok(())
}
