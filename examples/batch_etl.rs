//! Batch ETL with PENDING streams (§4.2.4, §7.5): parallel workers each
//! write a PENDING stream; a coordinator commits them atomically once all
//! workers report success — while streaming writers keep the same table
//! live.
//!
//! ```sh
//! cargo run --example batch_etl
//! ```
#![allow(clippy::print_stdout)] // prints results/tables by design

use std::sync::Arc;

use vortex::row::{Row, RowSet, Value};
use vortex::schema::{Field, FieldType, Schema};
use vortex::{Region, RegionConfig, StreamType, WriterOptions};

const BATCH_WORKERS: usize = 6;
const ROWS_PER_WORKER: usize = 500;

fn main() -> vortex::VortexResult<()> {
    let region = Arc::new(Region::create(RegionConfig::default())?);
    let client = region.client();
    let schema = Schema::new(vec![
        Field::required("record_id", FieldType::Int64),
        Field::required("source", FieldType::String),
    ]);
    let table = client.create_table("warehouse", schema)?.table;

    // A streaming writer keeps feeding the table (unified API, §7.5).
    let mut live = client.create_unbuffered_writer(table)?;
    live.append(RowSet::new(
        (0..100)
            .map(|i| Row::insert(vec![Value::Int64(i), Value::String("stream".into())]))
            .collect(),
    ))?;
    println!(
        "streaming rows visible: {}",
        client.read_rows(table)?.rows.len()
    );

    // Batch workers run in parallel, each with its own PENDING stream.
    let streams = std::thread::scope(|s| {
        let handles: Vec<_> = (0..BATCH_WORKERS)
            .map(|w| {
                let client = region.client();
                s.spawn(move || {
                    let mut writer = client
                        .create_writer(
                            table,
                            WriterOptions {
                                stream_type: StreamType::Pending,
                                ..WriterOptions::default()
                            },
                        )
                        .unwrap();
                    // Several appends per worker, e.g. one per input file.
                    for chunk in 0..5 {
                        let batch = RowSet::new(
                            (0..ROWS_PER_WORKER / 5)
                                .map(|i| {
                                    let id = 1_000_000
                                        + (w * ROWS_PER_WORKER) as i64
                                        + (chunk * ROWS_PER_WORKER / 5 + i) as i64;
                                    Row::insert(vec![
                                        Value::Int64(id),
                                        Value::String(format!("batch-worker-{w}")),
                                    ])
                                })
                                .collect(),
                        );
                        writer.append(batch).unwrap();
                    }
                    // Worker reports its stream to the coordinator.
                    writer.stream_id()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });

    // Nothing from the batch is visible yet — ACID across 3000 rows in 6
    // parallel streams.
    let visible = client.read_rows(table)?.rows.len();
    println!("before batch commit: {visible} rows visible (batch hidden)");
    assert_eq!(visible, 100);

    // The coordinator commits atomically.
    let commit_ts = client.batch_commit(table, &streams)?;
    let after = client.read_rows(table)?.rows.len();
    println!("after batch commit @ {commit_ts}: {after} rows visible");
    assert_eq!(after, 100 + BATCH_WORKERS * ROWS_PER_WORKER);

    // Time travel: a snapshot just before the commit still excludes the
    // whole batch (snapshot isolation).
    let before = client
        .read_rows_at(table, commit_ts.minus_micros(1))?
        .rows
        .len();
    println!("snapshot just before the commit: {before} rows");
    assert_eq!(before, 100);

    // Streaming continues seamlessly after the batch.
    live.append(RowSet::new(vec![Row::insert(vec![
        Value::Int64(100),
        Value::String("stream".into()),
    ])]))?;
    println!(
        "final count: {} — batch and streaming unified on one table",
        client.read_rows(table)?.rows.len()
    );
    Ok(())
}
